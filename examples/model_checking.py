#!/usr/bin/env python
"""Exhaustive verification, live: watch the checker prove — and disprove.

Runs the model checker over a tiny instance three times:

1. the paper's protocol (corrected R5): every reachable configuration is
   safe, every terminal configuration delivered everything;
2. the *printed* R5 (no ``q != p``): the checker finds the erratum's
   counterexample — a concrete execution losing a valid message;
3. colors disabled: the checker finds the losses the color flag prevents.

Run:  python examples/model_checking.py        (about a second)
"""

from repro.app.higher_layer import HigherLayer
from repro.core.ledger import DeliveryLedger
from repro.core.protocol import SSMFP
from repro.network.topologies import line_network
from repro.routing.static import StaticRouting
from repro.verify import ModelChecker


def make_instance(**options):
    def factory():
        net = line_network(3)
        proto = SSMFP(
            net, StaticRouting(net), HigherLayer(net.n), DeliveryLedger(),
            **options,
        )
        proto.hl.submit(0, "dup", 2)
        proto.hl.submit(0, "dup", 2)
        return proto

    return factory


def main() -> None:
    cases = [
        ("paper protocol (corrected R5)", {}),
        ("printed R5 (erratum)", {"r5_literal": True}),
        ("colors disabled (ablation A1)", {"enable_colors": False}),
    ]
    print("instance: 3-processor line, two same-payload messages 0 -> 2\n")
    for name, options in cases:
        result = ModelChecker(
            make_instance(**options), max_selection_width=4000
        ).run()
        print(f"{name}:")
        print(
            f"  explored {result.states} configurations, "
            f"{result.transitions} transitions, "
            f"{result.terminal_states} terminal"
        )
        if result.ok:
            print("  SAFE in every reachable configuration (exhaustive)")
        else:
            print(f"  counterexamples found: {len(result.violations)}")
            print(f"  first: {result.violations[0]}")
        print()


if __name__ == "__main__":
    main()
