#!/usr/bin/env python
"""Replay the paper's Figure 3 step by step.

Prints the thirteen-plus configurations of the worked example: corrupted
routing cycle between ``a`` and ``c``, an invalid message already sitting
at ``b``, two valid messages (the second carrying the *same payload* as the
invalid one), the color mechanism keeping them apart, and the final drain
delivering all three.

Run:  python examples/figure3_replay.py
"""

from repro.experiments.fig3 import main as replay


def main() -> None:
    print(replay())


if __name__ == "__main__":
    main()
