#!/usr/bin/env python
"""Watch the system heal: routing repair and forwarding, live.

Starts a grid network with worst-case corrupted routing tables and a
stream of messages, then prints a periodic dashboard while the
self-stabilizing routing protocol repairs the tables *underneath live
forwarding traffic* — the scenario snap-stabilization is for.  Messages
submitted before the tables are correct are still delivered exactly once.

Run:  python examples/corrupted_routing_recovery.py
"""

from repro import build_simulation, delivered_and_drained
from repro.app import uniform_workload
from repro.network import grid_network
from repro.routing.analysis import routing_errors


def main() -> None:
    net = grid_network(3, 4)
    workload = uniform_workload(net.n, count=30, seed=7, spread_steps=40)
    sim = build_simulation(
        net,
        workload=workload,
        routing_corruption={"kind": "worst", "seed": 7},
        garbage={"fraction": 0.3, "seed": 7},
        seed=7,
    )

    print(f"{'step':>6} {'round':>6} {'table errors':>13} {'in flight':>10} "
          f"{'generated':>10} {'delivered':>10}")
    stabilized_at = None
    for tick in range(100_000):
        if delivered_and_drained(sim):
            break
        if tick % 20 == 0:
            errors = len(routing_errors(net, sim.routing))
            if errors == 0 and stabilized_at is None:
                stabilized_at = sim.sim.round_count
            print(
                f"{sim.sim.step_count:>6} {sim.sim.round_count:>6} "
                f"{errors:>13} {sim.forwarding.bufs.total_occupied():>10} "
                f"{sim.ledger.generated_count:>10} "
                f"{sim.ledger.valid_delivered_count:>10}"
            )
        report = sim.step()
        if report.terminal and not sim._fast_forward_workload():
            break

    assert sim.ledger.all_valid_delivered()
    print()
    print(f"tables stabilized around round {stabilized_at}")
    print(f"all {sim.ledger.valid_delivered_count} messages delivered exactly once, "
          f"including those submitted while tables were wrong")


if __name__ == "__main__":
    main()
