#!/usr/bin/env python
"""Reproduce the paper's complexity landscape in one run.

Sweeps the (Δ, D) plane with the Proposition-5/7 harnesses and prints the
two headline tables:

* per-message worst case — probe delivery rounds against the
  max(R_A, Δ^D) envelope (Proposition 5);
* amortized — rounds per delivered message growing with D, orders of
  magnitude below Δ^D (Proposition 7).

Run:  python examples/complexity_sweep.py        (takes a few seconds)
"""

from repro.experiments.prop5 import main as prop5_main
from repro.experiments.prop7 import main as prop7_main


def main() -> None:
    print(prop5_main(seeds=(1, 2)))
    print()
    print(prop7_main(seeds=(1,), sizes=(6, 10, 14)))


if __name__ == "__main__":
    main()
