#!/usr/bin/env python
"""Why SSMFP: the classical scheme breaks when ported to shared memory.

Runs the same workload through three protocols and prints the scoreboard:

* SSMFP — the paper's protocol, exactly-once always;
* ms-atomic — the fault-free Merlin-Schweitzer scheme in its native
  network-move model (correct here, but exactly-once rests on atomic
  cross-processor moves the state model does not have);
* ms-split — the naive shared-memory port of the same scheme, whose
  (source, 2-value-flag) identity cannot sequence the copy/erase handshake
  and therefore duplicates messages even with correct routing tables.

Run:  python examples/baseline_comparison.py
"""

from repro.experiments.comparison import run_comparison
from repro.sim.reporting import format_table


def main() -> None:
    rows = run_comparison(seeds=(1, 2, 3, 4, 5))
    print(
        format_table(
            rows,
            columns=[
                "protocol", "tables", "generated", "delivered_once",
                "duplications", "losses", "undelivered", "violations",
            ],
            title="exactly-once scoreboard (totals over 5 seeded runs)",
        )
    )
    ssmfp = [r for r in rows if r["protocol"] == "ssmfp"]
    split = [r for r in rows if r["protocol"] == "ms-split"]
    assert all(r["violations"] == 0 for r in ssmfp)
    assert any(r["duplications"] > 0 for r in split)
    print("\nSSMFP: zero violations in every regime; the naive port duplicates.")


if __name__ == "__main__":
    main()
