#!/usr/bin/env python
"""A tour of the paper's §4 conclusion, made executable.

Three stops:

1. **The open problem** (X1): how many buffers per processor could a
   snap-stabilizing protocol hope to use?  The fault-free
   acyclic-orientation-cover scheme needs only 2 on trees and 3 on rings
   (vs SSMFP's 2n) — the gap the open problem asks about.
2. **Faster worst case** (X2): changing ``choice_p(d)`` from FIFO to
   age-priority — the paper's suggested direction — measurably cuts the
   worst-case probe latency under contention.
3. **The message-passing model** (X3): the forwarding scheme ported to
   explicit OFFER/ACCEPT/RELEASE handshakes works perfectly from clean
   starts, and a single piece of channel garbage wedges it — why the
   snap-stabilizing port is still open.

Run:  python examples/open_problems_tour.py     (a few seconds)
"""

from repro.experiments.fast_choice import main as x2_main
from repro.experiments.message_passing import main as x3_main
from repro.experiments.open_problem import main as x1_main


def main() -> None:
    print(x1_main())
    print()
    print(x2_main(sizes=(8,), loads=(4,), seeds=(1, 2)))
    print()
    print(x3_main(seeds=(1,)))


if __name__ == "__main__":
    main()
