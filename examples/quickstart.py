#!/usr/bin/env python
"""Quickstart: exactly-once message forwarding from a corrupted start.

Builds the paper's full stack — a network, the self-stabilizing routing
protocol ``A`` (composed with priority), the SSMFP forwarding core, and a
higher layer — starts it from an adversarial initial configuration
(fully corrupted routing tables, garbage in half the buffers, scrambled
fairness queues), submits a workload, and shows that every message is
delivered exactly once while the system repairs itself underneath.

Run:  python examples/quickstart.py
"""

from repro import build_simulation, delivered_and_drained
from repro.app import uniform_workload
from repro.network import ring_network
from repro.routing.analysis import next_hop_cycles


def main() -> None:
    net = ring_network(8)
    workload = uniform_workload(net.n, count=24, seed=42)

    sim = build_simulation(
        net,
        workload=workload,
        routing_corruption={"kind": "random", "fraction": 1.0, "seed": 42},
        garbage={"fraction": 0.5, "seed": 42},
        scramble_choice_queues=True,
        seed=42,
    )

    cycles = [
        cycle
        for d in net.processors()
        for cycle in next_hop_cycles(net, sim.routing, d)
    ]
    print(f"network: ring of {net.n} processors")
    print(f"initial routing state: corrupted, {len(cycles)} routing cycles")
    print(f"initial buffers: {sim.forwarding.bufs.total_occupied()} filled with garbage")
    print(f"workload: {workload.size} messages")
    print()

    result = sim.run(200_000, halt=delivered_and_drained)

    ledger = sim.ledger
    print(f"finished after {result.steps} steps / {result.rounds} rounds")
    print(f"generated:            {ledger.generated_count}")
    print(f"delivered once:       {ledger.valid_delivered_count}")
    print(f"duplications/losses:  0 (a strict ledger would have raised)")
    print(f"invalid garbage also delivered: {ledger.invalid_delivery_count}")
    print(f"routing tables now correct: {sim.routing.is_correct()}")
    assert ledger.all_valid_delivered()
    print("\nOK: snap-stabilizing exactly-once delivery from a corrupted start")


if __name__ == "__main__":
    main()
