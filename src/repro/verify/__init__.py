"""Exhaustive verification of small instances.

Random adversarial testing (the rest of the suite) samples executions;
:mod:`repro.verify.modelcheck` *enumerates* them: a breadth-first search
over every configuration reachable from a given initial state under every
daemon choice — including every simultaneous selection — checking the
safety invariants in each.  On small instances this is genuine model
checking of the protocol's Lemmas 4-5.
"""

from repro.verify.liveness import FairLivelock, LivenessChecker, LivenessResult
from repro.verify.modelcheck import ModelChecker, ModelCheckResult

__all__ = [
    "ModelChecker",
    "ModelCheckResult",
    "LivenessChecker",
    "LivenessResult",
    "FairLivelock",
]
