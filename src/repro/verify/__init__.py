"""Exhaustive verification of small instances.

Random adversarial testing (the rest of the suite) samples executions;
:mod:`repro.verify.modelcheck` *enumerates* them: a breadth-first search
over every configuration reachable from a given initial state under every
daemon choice — including every simultaneous selection — checking the
safety invariants in each.  On small instances this is genuine model
checking of the protocol's Lemmas 4-5.

The search scales through three composable layers (see ``docs/verify.md``):
partial-order reduction and processor-permutation symmetry quotienting
(:mod:`repro.verify.reduction`) shrink the explored space soundly, and the
``"parallel"`` engine (:mod:`repro.verify.parallel`) shards the BFS
frontier across forked worker processes.
"""

from repro.verify.liveness import FairLivelock, LivenessChecker, LivenessResult
from repro.verify.modelcheck import (
    ENGINES,
    REDUCTIONS,
    ModelChecker,
    ModelCheckResult,
    ProgressMeter,
    default_workers,
)
from repro.verify.reduction import (
    IndependenceOracle,
    SymmetryReducer,
    validate_symmetry,
)

__all__ = [
    "ENGINES",
    "REDUCTIONS",
    "ModelChecker",
    "ModelCheckResult",
    "ProgressMeter",
    "default_workers",
    "LivenessChecker",
    "LivenessResult",
    "FairLivelock",
    "IndependenceOracle",
    "SymmetryReducer",
    "validate_symmetry",
]
