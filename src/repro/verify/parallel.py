"""Frontier-parallel exhaustive exploration across forked workers.

The BFS frontier is sharded by canon hash: worker ``w`` owns every canon
``c`` with ``crc32(repr(c)) % workers == w`` and holds that shard of the
seen-set.  Exploration proceeds in batched per-level rounds — the parent
sends each worker its intake (the frontier states it owns), the worker
dedups against its shard, expands the fresh ones through the same
:func:`repro.verify.modelcheck.expand_state` the serial engine uses, and
returns the successors bucketed by owner; the parent merges the buckets
into the next round's intake and aggregates counts, violation witnesses
and (for liveness) the graph edges **in worker-index order**, so the
totals are deterministic for a given worker count.

Two properties make the result comparable to the serial engines:

* the rounds are *level-synchronous* — every intake item of round ``r``
  sits at BFS depth ``r`` — so dedup keeps the minimal-depth copy of each
  canon exactly as serial BFS does, and the expanded state set (hence
  states, transitions, terminal count, violations and skipped-selection
  totals) is identical to the serial snapshot engine's;
* shard routing hashes ``repr(canon)`` with :func:`zlib.crc32`, not the
  builtin ``hash`` — canons are pure nested builtins, so their ``repr``
  is deterministic across processes, while ``hash`` is salted per
  process (``PYTHONHASHSEED``) and would scatter a canon across shards.

Workers are started with the ``fork`` method so they inherit the
checker's ``make_system`` factory (arbitrary closures — never pickled);
state vectors and canons do cross the pipes and are plain picklable
tuples.  On platforms without ``fork`` the caller degrades to the
in-process engine (:func:`fork_available`).
"""

from __future__ import annotations

import multiprocessing
import zlib
from typing import Dict, List, Optional, Tuple

from repro.errors import SelectionOverflow
from repro.verify.modelcheck import ModelCheckResult, expand_state


def fork_available() -> bool:
    """True iff the ``fork`` start method exists (Linux/macOS; not
    Windows) — the parallel engine's hard requirement."""
    return "fork" in multiprocessing.get_all_start_methods()


def shard_of(key, workers: int) -> int:
    """Owner worker of a canon — crc32 of the deterministic ``repr``."""
    return zlib.crc32(repr(key).encode()) % workers


def _start_workers(target, checker, workers: int):
    """Fork ``workers`` processes running ``target(checker, windex,
    workers, conn)``; returns (parent connections, processes)."""
    ctx = multiprocessing.get_context("fork")
    conns, procs = [], []
    for windex in range(workers):
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=target, args=(checker, windex, workers, child_conn)
        )
        proc.daemon = True
        proc.start()
        child_conn.close()
        conns.append(parent_conn)
        procs.append(proc)
    return conns, procs


def _shutdown(conns, procs) -> None:
    for conn in conns:
        try:
            conn.close()
        except OSError:
            pass
    for proc in procs:
        proc.join(timeout=10)
        if proc.is_alive():  # pragma: no cover - hang safety valve
            proc.terminate()
            proc.join(timeout=5)


def _recv(conn):
    kind, payload = conn.recv()
    if kind == "error":
        raise RuntimeError(f"parallel verify worker failed: {payload}")
    return payload


# -- safety (ModelChecker) -----------------------------------------------------


def _safety_worker(checker, windex: int, workers: int, conn) -> None:
    try:
        system = checker._fresh()
        system.advance_env()
        scratch = ModelCheckResult(
            states=0, transitions=0, terminal_states=0,
            max_frontier=0, truncated=False,
        )
        # Same deterministic construction as the parent's: every worker
        # re-derives the identical reducer/oracle pair from the root.
        reducer, oracle = checker._setup_reduction(system, scratch)
        stack = system.stack()
        n = system.proto.net.n
        seen = set()
        while True:
            msg = conn.recv()
            if msg[0] == "finish":
                conn.send(("seen", seen if msg[1] else None))
                return
            items = msg[1]
            res = ModelCheckResult(
                states=0, transitions=0, terminal_states=0,
                max_frontier=0, truncated=False,
            )
            dedup = 0
            outs: Dict[int, List] = {}
            for vec, key, depth in items:
                if key in seen:
                    dedup += 1
                    continue
                seen.add(key)
                res.states += 1
                children = expand_state(
                    system, stack, n, vec, depth,
                    checker._max_width, oracle, reducer, res,
                )
                if children is None:
                    break  # SelectionOverflow: res.truncated/note are set
                for child_vec, child_key, child_depth in children:
                    outs.setdefault(shard_of(child_key, workers), []).append(
                        (child_vec, child_key, child_depth)
                    )
            conn.send(("round", {
                "states": res.states,
                "transitions": res.transitions,
                "terminal": res.terminal_states,
                "skipped": res.skipped_selections,
                "dedup": dedup,
                "violations": res.violations,
                "truncated": res.truncated,
                "note": res.note,
                "outs": outs,
            }))
    except Exception as exc:  # pragma: no cover - surfaced in the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass


def run_safety(checker, result: ModelCheckResult, workers: int) -> ModelCheckResult:
    """Parallel counterpart of ``ModelChecker._run_snapshot``.

    The parent owns no shard: it validates the reductions (for the
    result's notes), injects the root into its owner's intake, then
    orchestrates rounds until every intake bucket is empty.  The state
    cap is checked between rounds, so a truncated parallel run may
    overshoot the cap by up to one round's expansion (the note says so).
    """
    meter = checker._meter()
    system = checker._fresh()
    system.advance_env()
    reducer, _oracle = checker._setup_reduction(system, result)
    root_vec = system.snapshot()
    root_key = system.canon(root_vec)
    if reducer is not None:
        root_key = reducer.representative(root_key)

    conns, procs = _start_workers(_safety_worker, checker, workers)
    pending: Dict[int, List] = {w: [] for w in range(workers)}
    pending[shard_of(root_key, workers)].append((root_vec, root_key, 0))
    try:
        while any(pending.values()):
            result.max_frontier = max(
                result.max_frontier, sum(len(b) for b in pending.values())
            )
            if result.states >= checker._max_states:
                result.truncated = True
                result.note = (
                    f"state cap {checker._max_states} reached "
                    "(parallel rounds may overshoot by one level)"
                )
                break
            batches, pending = pending, {w: [] for w in range(workers)}
            for w, conn in enumerate(conns):
                conn.send(("work", batches[w]))
            stop = False
            for conn in conns:  # worker-index order: deterministic totals
                payload = _recv(conn)
                result.states += payload["states"]
                result.transitions += payload["transitions"]
                result.terminal_states += payload["terminal"]
                result.skipped_selections += payload["skipped"]
                result.dedup_hits += payload["dedup"]
                result.violations.extend(payload["violations"])
                if payload["truncated"]:
                    result.truncated = True
                    result.note = payload["note"]
                    stop = True
                for owner, items in payload["outs"].items():
                    pending[owner].extend(items)
            meter.tick(
                result.states,
                sum(len(b) for b in pending.values()),
                result.dedup_hits,
            )
            if stop:
                break
        canons = set() if checker._collect_canons else None
        for conn in conns:
            conn.send(("finish", checker._collect_canons))
        for conn in conns:
            shard_seen = _recv(conn)
            if canons is not None and shard_seen is not None:
                canons.update(shard_seen)
        if canons is not None:
            result.canons = frozenset(canons)
    finally:
        _shutdown(conns, procs)
    meter.finish(result.states, result.transitions, result.dedup_hits)
    return result


# -- liveness graph construction -----------------------------------------------


def _liveness_worker(checker, windex: int, workers: int, conn) -> None:
    try:
        system = checker._fresh()
        system.advance_env()
        stack = system.stack()
        n_procs = system.proto.net.n
        while True:
            msg = conn.recv()
            if msg[0] == "finish":
                return
            entries = []
            for vec in msg[1]:
                try:
                    entries.append(
                        checker._expand_node(system, stack, n_procs, vec)
                    )
                except SelectionOverflow as exc:
                    # Serial exploration stops at the first overflowing
                    # node in id order; nodes after it stay unexplored.
                    entries.append(("overflow", str(exc)))
                    break
            conn.send(("round", entries))
    except Exception as exc:  # pragma: no cover - surfaced in the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass


def run_liveness(checker, workers: int):
    """Parallel counterpart of ``LivenessChecker._explore_snapshot``:
    build the bit-identical reachable graph with forked workers.

    Unlike the safety search, liveness needs globally dense node ids (the
    SCC pass runs on the parent), so the parent keeps the whole
    ``canon -> id`` map and the workers are stateless expanders: each
    round the current BFS level is split into contiguous chunks (ids
    ascending), each worker expands its chunk, and the parent assigns
    child ids by scanning the replies in id order — exactly the discovery
    order of the serial index-scan, so ids, edges, metadata and the
    truncation point all match the serial engine bit for bit.
    """
    system = checker._fresh()
    system.advance_env()
    root_vec = system.snapshot()
    keys: Dict[Tuple, int] = {system.canon(root_vec): 0}
    vecs: List[Optional[Tuple]] = [root_vec]
    outstanding: List = []
    enabled_pids: List = []
    edges: List[List] = []
    truncated = False
    note: Optional[str] = None
    meter = checker._meter()

    conns, procs = _start_workers(_liveness_worker, checker, workers)
    try:
        level_start = 0
        while level_start < len(vecs) and not truncated:
            level_end = len(vecs)
            if level_end > checker._max_states:
                # Serial stops once the scan index hits the cap: nodes
                # beyond it are discovered but never explored.
                level_end = max(level_start, checker._max_states)
                truncated = True
                note = f"state cap {checker._max_states} reached"
                if level_end == level_start:
                    break
            level = [vecs[i] for i in range(level_start, level_end)]
            chunks = _split_chunks(level, workers)
            for conn, chunk in zip(conns, chunks):
                conn.send(("work", chunk))
            replies = [_recv(conn) for conn in conns]
            overflowed = False
            index = level_start
            for reply in replies:
                for entry in reply:
                    if entry[0] == "overflow":
                        truncated = True
                        note = f"node {index}: {entry[1]}"
                        overflowed = True
                        break
                    meta, enabled_fs, children = entry
                    outstanding.append(meta)
                    enabled_pids.append(enabled_fs)
                    edges.append([])
                    for child_vec, child_key, pids in children:
                        target = keys.get(child_key)
                        if target is None:
                            target = len(vecs)
                            keys[child_key] = target
                            vecs.append(child_vec)
                        edges[index].append((target, pids))
                    vecs[index] = None  # free memory; metadata kept
                    index += 1
                if overflowed:
                    break
            meter.tick(index, len(vecs) - index, 0)
            if overflowed:
                break
            level_start = level_end
        for conn in conns:
            conn.send(("finish",))
    finally:
        _shutdown(conns, procs)
    explored = len(edges)
    for lst in edges:
        lst[:] = [(t, pids) for t, pids in lst if t < explored]
    meter.finish(explored, sum(len(e) for e in edges), 0)
    return outstanding, enabled_pids, edges, truncated, note


def _split_chunks(items: List, workers: int) -> List[List]:
    """Split ``items`` into ``workers`` contiguous chunks (sizes differing
    by at most one, earlier chunks larger)."""
    base, extra = divmod(len(items), workers)
    chunks, start = [], 0
    for w in range(workers):
        size = base + (1 if w < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks
