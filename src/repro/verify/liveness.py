"""Fairness-aware livelock detection on the reachable state graph.

Safety model checking (:mod:`repro.verify.modelcheck`) asks "is any bad
configuration reachable?".  Liveness asks "can the adversary keep a valid
message undelivered *forever*?"  Under a weakly fair daemon the adversary
must eventually select every continuously enabled processor, so an
infinite starving execution corresponds to a cycle in the reachable state
graph in which

* some valid message is outstanding in **every** state of the cycle, and
* every processor that is enabled in **every** state of the cycle
  executes in at least one transition of the cycle (otherwise the cycle
  is not weakly fair — the daemon would be ignoring a continuously
  enabled processor, which weak fairness forbids).

:class:`LivenessChecker` builds the full reachable graph of a small
instance (with a replenishing workload so adversarial traffic can recur),
finds its strongly connected components, and reports any SCC satisfying
both conditions — a *fair livelock*, i.e. a genuine starvation
counterexample.  The paper's FIFO ``choice`` makes SSMFP free of them;
the ``"fixed"`` ablation policy is not (the A2 starvation, now found
exhaustively).

Like the safety checker, the graph can be built by several engines: the
default ``"snapshot"`` engine restores state vectors into one reused
system (keeping the incremental guard caches engaged), the ``"parallel"``
engine fans the per-level expansions out to forked workers while the
parent keeps the global node-id map (:func:`repro.verify.parallel.
run_liveness` — bit-identical graph by construction), and the legacy
``"deepcopy"`` engine clones the system per transition and serves as the
differential oracle.  All produce the bit-identical graph.

A selection fan-out overflow marks the result ``truncated`` with an
explanatory :attr:`LivenessResult.note` — the same convention as
:meth:`ModelChecker.run`.  A truncated graph cannot prove
starvation-freedom (``ok`` stays False), but the partial result still
reports any livelock already found instead of discarding the search.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import SelectionOverflow
from repro.verify.modelcheck import (
    _System,
    ENGINES,
    ProgressMeter,
    default_workers,
    enumerate_selections,
)


@dataclass
class FairLivelock:
    """One starvation counterexample: an SCC of the reachable graph."""

    states: int
    starved_uids: Tuple[int, ...]
    sample_cycle_length: int


@dataclass
class LivenessResult:
    """Outcome of a liveness exploration."""

    states: int
    transitions: int
    sccs: int
    truncated: bool
    livelocks: List[FairLivelock] = field(default_factory=list)
    #: Why a truncated search stopped early (state cap, selection
    #: fan-out) or how the engine degraded; None for clean runs.
    note: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True iff exploration completed and no fair livelock exists."""
        return not self.livelocks and not self.truncated


class LivenessChecker:
    """Exhaustive fair-livelock search (small instances only)."""

    def __init__(
        self,
        make_system,
        max_states: int = 30_000,
        max_selection_width: int = 1024,
        ignore_pending: Optional[Set[int]] = None,
        engine: str = "snapshot",
        workers: Optional[int] = None,
        log_every: int = 0,
        on_progress=None,
        obs=None,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; want one of {ENGINES}")
        self._make_system = make_system
        self._max_states = max_states
        self._max_width = max_selection_width
        #: Processors whose pending submissions do not count as starvation
        #: (deliberately infinite pressure sources of the test harness).
        self._ignore_pending = frozenset(ignore_pending or ())
        self._engine = engine
        self._workers = workers
        self._log_every = log_every
        self._on_progress = on_progress
        self._obs = obs
        #: Engine-degradation note, merged into the result by run().
        self._engine_note: Optional[str] = None

    def _meter(self) -> ProgressMeter:
        return ProgressMeter(
            log_every=self._log_every,
            on_progress=self._on_progress,
            obs=self._obs,
            engine=f"liveness-{self._engine}",
        )

    def _fresh(self) -> _System:
        made = self._make_system()
        if isinstance(made, tuple):
            proto, extra = made
            return _System(proto, extra)
        return _System(made)

    def _selections(self, enabled: Dict[int, List]) -> List[Dict[int, int]]:
        return enumerate_selections(enabled, self._max_width)

    # -- graph construction -------------------------------------------------------

    def _node_metadata(self, system: _System) -> FrozenSet[int]:
        """Starvation targets of the *current* configuration:
        generated-but-undelivered uids, plus *pending submissions* that
        were never even generated — encoded as ``-(p+1)`` markers (rule R1
        starvation, the A2 mode)."""
        hl = system.proto.hl
        pending_markers = frozenset(
            -(p + 1)
            for p in range(system.proto.net.n)
            if p not in self._ignore_pending and hl.pending_count(p) > 0
        )
        return frozenset(system.proto.ledger.outstanding_uids()) | pending_markers

    def _expand_node(self, system: _System, stack, n_procs: int, vec):
        """Expand one configuration of the reachable graph: restore it,
        read the starvation metadata, enumerate and execute every daemon
        selection.  Returns ``(metadata, enabled-pid frozenset,
        [(child_vec, child_key, executing-pid frozenset), ...])``; raises
        :class:`SelectionOverflow` before any execution when the fan-out
        exceeds the width cap.  Shared with the parallel workers
        (:func:`repro.verify.parallel.run_liveness`)."""
        system.restore(vec)
        meta = self._node_metadata(system)
        # Drain the dirty channel so only the components touched since
        # the previously evaluated configuration are re-evaluated.
        stack.dirty_after({})
        enabled = {pid: stack.enabled_actions(pid) for pid in range(n_procs)}
        enabled = {pid: a for pid, a in enabled.items() if a}
        enabled_fs = frozenset(enabled)
        children = []
        for selection in self._selections(enabled):
            # Back to the parent configuration; the parent's bound
            # actions can be re-executed per selection (see modelcheck's
            # snapshot engine).
            system.restore(vec)
            for pid, idx in selection.items():
                enabled[pid][idx].execute()
            system.step += 1
            system.advance_env()
            child_vec = system.snapshot()
            children.append(
                (child_vec, system.canon(child_vec), frozenset(selection))
            )
        return meta, enabled_fs, children

    def _explore(self):
        """Build the reachable graph.  Returns (metadata, enabled pids,
        edges, truncated, note)."""
        if self._engine == "deepcopy":
            return self._explore_deepcopy()
        if self._engine == "parallel":
            from repro.verify import parallel as _parallel

            workers = self._workers or default_workers()
            if workers >= 2 and _parallel.fork_available():
                return _parallel.run_liveness(self, workers)
            self._engine_note = (
                f"parallel engine degraded to in-process search "
                f"(workers={workers}, fork "
                f"{'available' if _parallel.fork_available() else 'unavailable'})"
            )
        return self._explore_snapshot()

    def _explore_snapshot(self):
        system = self._fresh()
        system.advance_env()
        stack = system.stack()
        n_procs = system.proto.net.n
        root_vec = system.snapshot()
        keys: Dict[Tuple, int] = {system.canon(root_vec): 0}
        vecs: List[Optional[Tuple]] = [root_vec]
        # Per node: outstanding uid set, set of enabled pids.
        outstanding: List[FrozenSet[int]] = []
        enabled_pids: List[FrozenSet[int]] = []
        # Edges annotated with the executing pid set.
        edges: List[List[Tuple[int, FrozenSet[int]]]] = []
        truncated = False
        note: Optional[str] = None
        meter = self._meter()

        index = 0
        while index < len(vecs):
            if index >= self._max_states:
                truncated = True
                note = f"state cap {self._max_states} reached"
                break
            vec = vecs[index]
            try:
                meta, enabled_fs, children = self._expand_node(
                    system, stack, n_procs, vec
                )
            except SelectionOverflow as exc:
                truncated = True
                note = f"node {index}: {exc}"
                break
            outstanding.append(meta)
            enabled_pids.append(enabled_fs)
            edges.append([])
            for child_vec, key, pids in children:
                target = keys.get(key)
                if target is None:
                    target = len(vecs)
                    keys[key] = target
                    vecs.append(child_vec)
                edges[index].append((target, pids))
            vecs[index] = None  # free memory; only metadata needed now
            index += 1
            meter.tick(index, len(vecs) - index, 0)
        # Nodes appended beyond the cap have no metadata; trim edges to
        # explored nodes only.
        explored = len(edges)
        for lst in edges:
            lst[:] = [(t, pids) for t, pids in lst if t < explored]
        meter.finish(explored, sum(len(e) for e in edges), 0)
        return outstanding, enabled_pids, edges, truncated, note

    def _explore_deepcopy(self):
        root = self._fresh()
        root.advance_env()
        keys: Dict[Tuple, int] = {root.canon(): 0}
        systems: List[Optional[_System]] = [root]
        outstanding: List[FrozenSet[int]] = []
        enabled_pids: List[FrozenSet[int]] = []
        edges: List[List[Tuple[int, FrozenSet[int]]]] = []
        truncated = False
        note: Optional[str] = None

        index = 0
        while index < len(systems):
            if index >= self._max_states:
                truncated = True
                note = f"state cap {self._max_states} reached"
                break
            system = systems[index]
            enabled = {
                pid: system.stack().enabled_actions(pid)
                for pid in range(system.proto.net.n)
            }
            enabled = {pid: a for pid, a in enabled.items() if a}
            try:
                selections = self._selections(enabled)
            except SelectionOverflow as exc:
                truncated = True
                note = f"node {index}: {exc}"
                break
            outstanding.append(self._node_metadata(system))
            enabled_pids.append(frozenset(enabled))
            edges.append([])
            for selection in selections:
                child = copy.deepcopy(system)
                child_enabled = {
                    pid: child.stack().enabled_actions(pid) for pid in selection
                }
                for pid, idx in selection.items():
                    child_enabled[pid][idx].execute()
                child.step += 1
                child.advance_env()
                key = child.canon()
                if key in keys:
                    target = keys[key]
                else:
                    target = len(systems)
                    keys[key] = target
                    systems.append(child)
                edges[index].append((target, frozenset(selection)))
            systems[index] = None  # free memory; only metadata needed now
            index += 1
        explored = len(edges)
        for lst in edges:
            lst[:] = [(t, pids) for t, pids in lst if t < explored]
        return outstanding, enabled_pids, edges, truncated, note

    # -- SCC + fairness filtering --------------------------------------------------

    @staticmethod
    def _sccs(n: int, edges) -> List[List[int]]:
        """Tarjan (iterative)."""
        index_counter = [0]
        stack: List[int] = []
        lowlink = [0] * n
        number = [-1] * n
        on_stack = [False] * n
        result: List[List[int]] = []

        for root in range(n):
            if number[root] != -1:
                continue
            work = [(root, 0)]
            while work:
                node, pi = work[-1]
                if pi == 0:
                    number[node] = lowlink[node] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(node)
                    on_stack[node] = True
                recurse = False
                successors = edges[node]
                while pi < len(successors):
                    succ = successors[pi][0]
                    pi += 1
                    if number[succ] == -1:
                        work[-1] = (node, pi)
                        work.append((succ, 0))
                        recurse = True
                        break
                    if on_stack[succ]:
                        lowlink[node] = min(lowlink[node], number[succ])
                if recurse:
                    continue
                if pi >= len(successors):
                    if lowlink[node] == number[node]:
                        comp = []
                        while True:
                            w = stack.pop()
                            on_stack[w] = False
                            comp.append(w)
                            if w == node:
                                break
                        result.append(comp)
                    work.pop()
                    if work:
                        parent = work[-1][0]
                        lowlink[parent] = min(lowlink[parent], lowlink[node])
        return result

    def run(self) -> LivenessResult:
        """Explore and report fair livelocks.  Never raises on fan-out
        overflow: the result comes back ``truncated`` with a ``note``."""
        self._engine_note = None
        outstanding, enabled_pids, edges, truncated, note = self._explore()
        if self._engine_note:
            note = f"{note}; {self._engine_note}" if note else self._engine_note
        n = len(edges)
        sccs = self._sccs(n, edges)
        livelocks: List[FairLivelock] = []
        for comp in sccs:
            comp_set = set(comp)
            internal = [
                (u, t, pids)
                for u in comp
                for t, pids in edges[u]
                if t in comp_set
            ]
            if not internal:
                continue  # trivial SCC without a self-transition
            starved = frozenset.intersection(*(outstanding[u] for u in comp))
            # Positive uids: generated valid messages; negative markers:
            # submissions whose generation (R1) starves.  Invalid garbage
            # never appears (only valid uids and markers are tracked).
            if not starved:
                continue
            # Weak fairness: every processor enabled in EVERY state of the
            # cycle must execute in some internal transition.
            always_enabled = frozenset.intersection(
                *(enabled_pids[u] for u in comp)
            )
            executed = set()
            for _, _, pids in internal:
                executed |= pids
            if always_enabled.issubset(executed):
                livelocks.append(
                    FairLivelock(
                        states=len(comp),
                        starved_uids=tuple(sorted(starved)),
                        sample_cycle_length=len(internal),
                    )
                )
        return LivenessResult(
            states=n,
            transitions=sum(len(e) for e in edges),
            sccs=len(sccs),
            truncated=truncated,
            livelocks=livelocks,
            note=note,
        )
