"""State-space reduction for the exhaustive verifiers.

Two sound reductions over the canonical forms produced by
``_System.canon`` (see ``repro/verify/modelcheck.py``):

**Symmetry reduction** quotients the seen-set by processor-permutation
orbits.  A candidate permutation must survive three validations against
the concrete instance before it is used (:func:`validate_symmetry`):

1. it is a graph automorphism of the topology
   (:func:`repro.network.properties.automorphisms`);
2. the routing service is *equivariant* under it —
   ``next_hop(pi(q), pi(d)) == pi(next_hop(q, d))`` for every pair — which
   filters out automorphisms broken by deterministic tie-breaks (e.g. the
   smallest-id next hop on even rings);
3. the *initial configuration* is invariant under it (modulo uid
   relabeling), so every reachable orbit has a reachable representative.

The surviving set is a subgroup (all three properties are closed under
composition and inverse).  The orbit representative of a canon is the
minimum over the group of the permuted canon after **canonical uid
relabeling** (:func:`relabel_uids`): message uids are minted by a global
counter, so two symmetric executions label "the same" message differently;
relabeling by first occurrence in the canon's deterministic traversal
makes the representative label-free.  Relabeling by a sign-preserving
bijection is sound because nothing in the invariant checker or the canon
compares uid *values* across configurations — the ledger accounts are
sets and counts, and the protocol never orders uids.

**Partial-order reduction** drops daemon selections that decompose into
independent parts: a selection whose conflict graph is disconnected is
equivalent to running its connected components in separate consecutive
steps, and every component is itself a selection the checker explores —
so pruning the composite preserves the reachable canon set *exactly*
(state count included; only transition edges are dropped).  Two selected
actions conflict when

* both are generations (rule R1) — they race the global uid counter;
* either touches an unknown footprint (no ``dest`` tag — the safety
  fallback: such an action conflicts with everything); or
* either comes from a higher-priority stack layer and their closed
  neighborhoods intersect (a higher-layer write can flip the priority
  mask of any neighbor, for any destination); or
* they address intersecting destination sets *and* their closed
  neighborhoods intersect (guards at ``p`` for destination ``d`` read
  only component ``d`` of ``N_p ∪ {p}`` — the PR 3 component-dirty
  geometry).  A generation's destination set also includes the *next*
  queued destination of its outbox, because consuming the request
  re-raises it for that destination in the following environment phase.

The environment phase must be idempotent for the decomposition argument
(running it once after the composite step must equal running it after
each component).  That holds for every choice policy except
``aged_fair``, whose per-step full reconciliation ages waiting counters
once per environment phase — callers disable POR there
(:class:`repro.verify.modelcheck.ModelChecker` does, with a note).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.network.properties import automorphisms

Canon = Tuple
Perm = Tuple[int, ...]


# -- canon permutation and uid relabeling ------------------------------------


def _buffer_sort_key(entry: Tuple) -> Tuple:
    """Replicates ``ForwardingBuffers.iter_messages`` order: destination
    ascending, processor ascending, R before E."""
    d, p, kind = entry[0], entry[1], entry[2]
    return (d, p, 0 if kind == "R" else 1)


def permute_canon(canon: Canon, perm: Perm) -> Canon:
    """Apply a processor permutation to every processor-indexed field of a
    canon.  Only valid for canons with empty higher-layer extras (the
    validation in :func:`validate_symmetry` guarantees it)."""
    buffers, queues, app, extras, accounts = canon
    if any(extra != () for extra in extras):
        raise ValueError("cannot permute a canon with non-empty extras")
    new_buffers = tuple(sorted(
        (
            (perm[d], perm[p], kind, payload, perm[last], color, uid)
            for d, p, kind, payload, last, color, uid in buffers
        ),
        key=_buffer_sort_key,
    ))
    new_queues = tuple(sorted(
        (
            perm[d],
            perm[p],
            (
                tuple(perm[q] for q in order),
                tuple(sorted((perm[q], age) for q, age in waits)),
            ),
        )
        for d, p, (order, waits) in queues
    ))
    outboxes, raised = app
    new_app = (
        tuple(sorted(
            (perm[p], tuple((payload, perm[dest]) for payload, dest in items))
            for p, items in outboxes
        )),
        tuple(sorted(perm[p] for p in raised)),
    )
    return (new_buffers, new_queues, new_app, extras, accounts)


def relabel_uids(canon: Canon) -> Canon:
    """Renumber uids canonically: valid uids become ``1, 2, ...`` and
    invalid uids ``-1, -2, ...`` in first-occurrence order over the
    canon's deterministic traversal (buffers in storage order, then the
    outstanding account ascending).  A sign-preserving uid bijection is a
    bisimulation of the instance (see module docstring), so members of
    one orbit relabel identically."""
    buffers, queues, app, extras, accounts = canon
    outstanding, generated, delivered, invalid = accounts
    mapping: Dict[int, int] = {}
    next_valid, next_invalid = 1, -1
    for entry in buffers:
        uid = entry[6]
        if uid not in mapping:
            if uid > 0:
                mapping[uid] = next_valid
                next_valid += 1
            else:
                mapping[uid] = next_invalid
                next_invalid -= 1
    for uid in outstanding:
        if uid not in mapping:
            if uid > 0:
                mapping[uid] = next_valid
                next_valid += 1
            else:
                mapping[uid] = next_invalid
                next_invalid -= 1
    new_buffers = tuple(
        entry[:6] + (mapping[entry[6]],) for entry in buffers
    )
    new_accounts = (
        tuple(sorted(mapping[uid] for uid in outstanding)),
        generated, delivered, invalid,
    )
    return (new_buffers, queues, app, extras, new_accounts)


def canon_order_key(canon: Canon) -> str:
    """A total, process-stable order over canons.  ``repr`` of a canon is
    deterministic (canons are pure nested builtins) and — unlike raw tuple
    comparison — never hits cross-type comparisons on heterogeneous
    payloads.  Used to pick orbit minima and to shard canons by hash."""
    return repr(canon)


class SymmetryReducer:
    """Maps canons to orbit representatives under a validated group."""

    __slots__ = ("perms",)

    def __init__(self, perms: Sequence[Perm]) -> None:
        if not perms:
            raise ValueError("need at least the identity permutation")
        self.perms: Tuple[Perm, ...] = tuple(tuple(p) for p in perms)

    @property
    def group_size(self) -> int:
        return len(self.perms)

    def representative(self, canon: Canon) -> Canon:
        """The orbit minimum of ``relabel_uids(permute_canon(canon, pi))``
        over the group — stable under permutation of the input, so two
        symmetric configurations dedup to the same seen-set entry."""
        best: Optional[Canon] = None
        best_key: Optional[str] = None
        for perm in self.perms:
            cand = relabel_uids(permute_canon(canon, perm))
            key = canon_order_key(cand)
            if best_key is None or key < best_key:
                best, best_key = cand, key
        return best


def _routing_equivariant(proto, perm: Perm) -> bool:
    n = proto.net.n
    routing = proto.routing
    for q in range(n):
        for d in range(n):
            if q == d:
                continue
            if perm[routing.next_hop(q, d)] != routing.next_hop(perm[q], perm[d]):
                return False
    return True


def validate_symmetry(proto, root_canon: Canon):
    """Build a :class:`SymmetryReducer` for an instance, or explain why
    symmetry reduction does not apply.

    Returns ``(reducer, note)``.  ``reducer`` is None when the instance
    disqualifies itself entirely (non-empty higher-layer state — those
    vectors use identity-dependent sparse encodings that are not
    permutation-equivariant); otherwise the reducer holds every candidate
    automorphism that is routing-equivariant and fixes the initial canon
    modulo uid relabeling (always at least the identity, whose
    "reduction" is the uid-relabel quotient alone).  ``note`` reports the
    group size or the disqualification reason.
    """
    extras = root_canon[3]
    if any(extra != () for extra in extras):
        return None, (
            "symmetry off: higher-priority layer state is non-empty "
            "(sparse fixpoint-relative vectors are not permutation-"
            "equivariant)"
        )
    root_rep = relabel_uids(root_canon)
    valid: List[Perm] = []
    for perm in automorphisms(proto.net):
        if not _routing_equivariant(proto, perm):
            continue
        if relabel_uids(permute_canon(root_canon, perm)) != root_rep:
            continue
        valid.append(perm)
    reducer = SymmetryReducer(valid)
    return reducer, f"symmetry group size {reducer.group_size}"


# -- partial-order reduction --------------------------------------------------


class IndependenceOracle:
    """Per-instance footprint/conflict analysis for daemon selections.

    Built once per exploration; :meth:`admissible` is called per parent
    state with the enabled-action table *while the system is in the
    parent configuration* (generation footprints peek at the outbox)."""

    __slots__ = ("_closed", "_proto_name", "_generation_rule", "_hl")

    def __init__(self, proto) -> None:
        net = proto.net
        self._closed: List[FrozenSet[int]] = [
            frozenset((p,) + tuple(net.neighbors(p)))
            for p in net.processors()
        ]
        self._proto_name = proto.name
        # The family's declared generation (starting) rule — generations
        # race the global uid counter, so the oracle treats them specially.
        self._generation_rule = getattr(proto, "generation_rule", "R1")
        self._hl = proto.hl

    def _features(self, pid: int, action):
        dest = action.info.get("dest")
        generation = action.rule == self._generation_rule
        upper = action.protocol != self._proto_name
        dests: Optional[Set[int]]
        if dest is None:
            dests = None  # unknown footprint: conflicts with everything
        else:
            dests = {dest}
            if generation:
                queued = self._hl.queued_destinations(pid)
                if len(queued) > 1:
                    # Consuming the request re-raises it for the next
                    # queued destination in the following env phase.
                    dests.add(queued[1])
        return (self._closed[pid], dests, generation, upper)

    @staticmethod
    def _conflict(a, b) -> bool:
        closed_a, dests_a, gen_a, upper_a = a
        closed_b, dests_b, gen_b, upper_b = b
        if gen_a and gen_b:
            return True  # generations race the global uid counter
        if dests_a is None or dests_b is None:
            return True  # unknown footprint: safety fallback
        if upper_a or upper_b:
            # A higher-layer write can flip the priority mask of any
            # neighbor for any destination.
            return bool(closed_a & closed_b)
        return bool(dests_a & dests_b) and bool(closed_a & closed_b)

    def admissible(
        self,
        selection: Dict[int, int],
        enabled,
        footprints: Optional[Dict[Tuple[int, int], Optional[FrozenSet]]] = None,
    ) -> bool:
        """True iff the selection's conflict graph is connected — i.e. it
        does *not* decompose into independent parts already covered by
        smaller selections.

        ``footprints``, when given, maps ``(pid, action_index)`` of each
        singleton to its *measured* dirty-component trail — the set of
        ``(processor, destination)`` components the action's execution
        (plus the following environment phase) marked through the PR 3
        notifier sinks, or ``None`` for an unmeasurable wildcard.  With a
        trail available for both sides of a pair, the static same-
        destination/neighborhood test sharpens to exact component
        interference: ``a`` and ``b`` conflict iff either's home component
        ``(pid, dest)`` lies in the other's trail.  That is sound by the
        PR 3 invalidation contract — a mutation that does not mark
        ``(q, d)`` cannot change any guard or bound action of component
        ``(q, d)`` — and it is strictly sharper than the static rule
        (e.g. same-destination actions two hops apart stop conflicting).
        The uid-counter and priority-mask special cases stay static: two
        generations race the global counter regardless of components, and
        a higher-layer action's mask effect is not visible in the forwarding
        dirty channel."""
        if len(selection) == 1:
            return True
        pids = list(selection)
        feats = [self._features(pid, enabled[pid][selection[pid]]) for pid in pids]
        trails: Optional[List] = None
        if footprints is not None:
            trails = [footprints.get((pid, selection[pid])) for pid in pids]
        k = len(feats)
        # Connectivity via BFS over pairwise conflicts.
        seen = {0}
        stack = [0]
        while stack:
            i = stack.pop()
            for j in range(k):
                if j in seen:
                    continue
                if self._conflict(feats[i], feats[j]):
                    if trails is not None and self._measured_independent(
                        pids[i], feats[i], trails[i],
                        pids[j], feats[j], trails[j],
                    ):
                        continue
                    seen.add(j)
                    stack.append(j)
        return len(seen) == k

    @staticmethod
    def _measured_independent(pid_a, feat_a, trail_a, pid_b, feat_b, trail_b):
        """Overrule a static conflict when both measured trails prove the
        pair cannot interfere.  Only applies to plain forwarding-layer pairs with
        known destinations; the static special cases are final."""
        closed_a, dests_a, gen_a, upper_a = feat_a
        closed_b, dests_b, gen_b, upper_b = feat_b
        if (gen_a and gen_b) or upper_a or upper_b:
            return False
        if dests_a is None or dests_b is None:
            return False
        if trail_a is None or trail_b is None or None in trail_a or None in trail_b:
            return False
        home_a = {(pid_a, d) for d in dests_a}
        home_b = {(pid_b, d) for d in dests_b}
        return not (home_b & trail_a) and not (home_a & trail_b)

    def filter(self, selections, enabled, footprints=None):
        """Split selections into (kept, skipped-count)."""
        kept = [s for s in selections if self.admissible(s, enabled, footprints)]
        return kept, len(selections) - len(kept)
