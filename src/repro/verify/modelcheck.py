"""Exhaustive state-space exploration of small SSMFP instances.

The checker performs BFS over *every* reachable configuration: from each
configuration it enumerates every daemon choice the model allows — every
nonempty subset of enabled processors, every choice of enabled action per
selected processor, i.e. the full distributed-daemon semantics including
simultaneity.  In every visited configuration the safety invariants
(Lemmas 4-5 plus well-formedness) are checked, the strict ledger arms the
exactly-once specification, and every *terminal* configuration is required
to have delivered all generated messages.

This is genuine model checking (bounded only by the instance size), not
sampling: on a 3-processor line with two same-payload messages it visits
every configuration the paper's adversary could ever produce.

Exploration engines
-------------------
The default ``"snapshot"`` engine explores **one** reused system through
the explicit snapshot/restore layer (:mod:`repro.statemodel.snapshot`):
each transition restores the parent's state vector (a diffing write that
touches only the cells that differ), executes the selected actions —
reusing the parent's already-bound :class:`~repro.statemodel.action.Action`
objects, which is sound because restore reinstates the exact configuration
they were evaluated against — and snapshots the child.  Because every
restore write flows through the ordinary change notifiers, the
component-granular incremental engine of the simulator stays engaged: a
popped state re-evaluates only the ``(processor, destination)`` components
touched since the previously evaluated configuration.  The canonical form
is a projection of the same state vector, so canonicalization and
restoration can never diverge.

The legacy ``"deepcopy"`` engine clones the whole system per transition
with :func:`copy.deepcopy`.  It is kept as the differential oracle: the
equivalence suite and the X-SNAP benchmark pin that both engines visit the
bit-identical state set, transition count and violations (see
``docs/verify.md``).
"""

from __future__ import annotations

import copy
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.invariants import InvariantChecker
from repro.core.protocol import SSMFP
from repro.errors import ReproError, SelectionOverflow
from repro.statemodel.composition import PriorityStack
from repro.statemodel.snapshot import StateVector

#: The exploration engines accepted by the verifiers.
ENGINES = ("snapshot", "deepcopy")


@dataclass
class ModelCheckResult:
    """Outcome of an exhaustive exploration."""

    states: int
    transitions: int
    terminal_states: int
    max_frontier: int
    truncated: bool
    #: Human-readable invariant/spec failures with their depth (empty ==
    #: the instance is exhaustively safe).
    violations: List[str] = field(default_factory=list)
    #: Why a truncated search stopped early (state cap, selection fan-out);
    #: None for complete searches.
    note: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True iff no violation was found and the search completed."""
        return not self.violations and not self.truncated


def enumerate_selections(
    enabled: Dict[int, List], max_width: int
) -> List[Dict[int, int]]:
    """Every daemon choice: nonempty subset of enabled pids x one enabled
    action index each.  Raises :class:`SelectionOverflow` when the fan-out
    exceeds ``max_width`` (the per-state safety valve)."""
    pids = sorted(enabled)
    selections: List[Dict[int, int]] = []
    for r in range(1, len(pids) + 1):
        for subset in itertools.combinations(pids, r):
            index_ranges = [range(len(enabled[pid])) for pid in subset]
            for choice in itertools.product(*index_ranges):
                selections.append(dict(zip(subset, choice)))
                if len(selections) > max_width:
                    raise SelectionOverflow(
                        f"selection fan-out exceeds {max_width}; "
                        "use a smaller instance or raise max_selection_width"
                    )
    return selections


class _System:
    """The explorable bundle: the protocol stack plus the step counter,
    with snapshot/restore and snapshot-derived canonicalization."""

    def __init__(self, proto: SSMFP, extra_protocols=()) -> None:
        self.proto = proto
        self.protocols = list(extra_protocols) + [proto]
        #: Built once and reused for every guard evaluation (the
        #: pre-snapshot checker rebuilt a fresh stack per call, discarding
        #: the composition's caches each time).
        self._stack = PriorityStack(self.protocols)
        self.step = 0

    def stack(self) -> PriorityStack:
        return self._stack

    def advance_env(self) -> None:
        """The environment phase (requests + queue sync), deterministic."""
        self._stack.before_step(self.step)

    # -- snapshot/restore ----------------------------------------------------

    def snapshot(self) -> StateVector:
        """Full state vector: every layer's vector plus the step counter."""
        return (self._stack.snapshot(), self.step)

    def restore(self, vec: StateVector) -> None:
        """Reinstate a previously captured :meth:`snapshot` (diffing —
        only cells that differ are written, through the layers' ordinary
        mutators and change notifiers)."""
        stack_vec, step = vec
        self._stack.restore(stack_vec)
        self.step = step

    def canon(self, vec: Optional[StateVector] = None) -> Tuple:
        """A hashable canonical form of the full configuration, **derived
        from the state vector** — the same value :meth:`restore` consumes,
        so canonicalization and restoration cannot diverge.

        The projection drops state that never influences future protocol
        behavior distinguishably: the step counter, message birth stamps,
        the uid counters (determined by the generation count), the
        delivery/violation logs and the ledger's per-record details.
        """
        if vec is None:
            vec = self.snapshot()
        stack_vec, _step = vec
        bufs_vec, queues_vec, hl_vec, ledger_vec, _factory, _pstep = stack_vec[-1]
        buffers = tuple(
            (d, p, kind, msg.payload, msg.last, msg.color, msg.uid)
            for d, p, kind, msg in bufs_vec
        )
        app = (hl_vec[0], hl_vec[1])
        generated, delivered, invalid, _lost, _violations = ledger_vec
        delivered_uids = {uid for uid, _ in delivered}
        accounts = (
            tuple(sorted(uid for uid, _ in generated if uid not in delivered_uids)),
            len(generated),
            len(delivered),
            len(invalid),
        )
        #: Higher-priority layers (e.g. the routing protocol ``A``) are
        #: canonical in full — their vectors are already compact tables.
        extras = stack_vec[:-1]
        return (buffers, queues_vec, app, extras, accounts)


class ModelChecker:
    """Breadth-first exhaustive exploration.

    Parameters
    ----------
    make_system:
        Zero-argument factory building the *initial* configuration: returns
        an :class:`SSMFP` instance (with its higher layer already loaded
        and any corruption applied) or a tuple ``(ssmfp, [higher-priority
        protocols])``.
    max_states:
        Exploration cap; exceeding it marks the result ``truncated``.
    max_selection_width:
        Safety valve on the per-state fan-out (number of daemon choices).
        Exceeding it also marks the result ``truncated`` (with
        :attr:`ModelCheckResult.note` explaining why) — ``run()`` never
        raises.
    engine:
        ``"snapshot"`` (default) explores one reused system through the
        snapshot/restore layer; ``"deepcopy"`` clones the system per
        transition (the legacy engine, kept as the differential oracle).
    """

    def __init__(
        self,
        make_system,
        max_states: int = 50_000,
        max_selection_width: int = 512,
        engine: str = "snapshot",
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; want one of {ENGINES}")
        self._make_system = make_system
        self._max_states = max_states
        self._max_width = max_selection_width
        self._engine = engine

    def _fresh(self) -> _System:
        made = self._make_system()
        if isinstance(made, tuple):
            proto, extra = made
            return _System(proto, extra)
        return _System(made)

    def _selections(self, enabled: Dict[int, List]) -> List[Dict[int, int]]:
        return enumerate_selections(enabled, self._max_width)

    def run(self) -> ModelCheckResult:
        """Explore exhaustively; never raises on protocol violations or
        fan-out overflow — violations are collected into the result and an
        overflow truncates it (see :attr:`ModelCheckResult.note`)."""
        result = ModelCheckResult(
            states=0, transitions=0, terminal_states=0,
            max_frontier=0, truncated=False,
        )
        if self._engine == "deepcopy":
            return self._run_deepcopy(result)
        return self._run_snapshot(result)

    # -- snapshot engine -----------------------------------------------------

    def _run_snapshot(self, result: ModelCheckResult) -> ModelCheckResult:
        system = self._fresh()
        system.advance_env()
        stack = system.stack()
        n = system.proto.net.n
        root_vec = system.snapshot()
        seen = {system.canon(root_vec)}
        frontier: deque = deque([(root_vec, 0)])

        while frontier:
            result.max_frontier = max(result.max_frontier, len(frontier))
            if result.states >= self._max_states:
                result.truncated = True
                result.note = f"state cap {self._max_states} reached"
                break
            vec, depth = frontier.popleft()
            system.restore(vec)
            result.states += 1

            try:
                InvariantChecker(system.proto).check()
            except ReproError as exc:
                result.violations.append(f"depth {depth}: {exc}")
                continue

            # Drain the dirty channel so the component caches stay engaged:
            # only components touched since the previously evaluated
            # configuration (by execution, environment moves, or restore
            # diffs) are re-evaluated inside enabled_actions.
            stack.dirty_after({})
            enabled = {pid: stack.enabled_actions(pid) for pid in range(n)}
            enabled = {pid: acts for pid, acts in enabled.items() if acts}
            if not enabled:
                result.terminal_states += 1
                ledger = system.proto.ledger
                if not ledger.all_valid_delivered():
                    result.violations.append(
                        f"depth {depth}: terminal configuration with "
                        f"undelivered uids {sorted(ledger.outstanding_uids())}"
                    )
                if system.proto.hl.total_pending():
                    result.violations.append(
                        f"depth {depth}: terminal configuration with "
                        f"pending submissions"
                    )
                continue

            try:
                selections = self._selections(enabled)
            except SelectionOverflow as exc:
                result.truncated = True
                result.note = f"depth {depth}: {exc}"
                break

            for selection in selections:
                # Back to the parent configuration: the enabled actions
                # were bound against exactly this state, so they can be
                # re-executed per selection without re-deriving them.
                system.restore(vec)
                try:
                    for pid, action_index in selection.items():
                        enabled[pid][action_index].execute()
                except ReproError as exc:
                    result.violations.append(f"depth {depth + 1}: {exc}")
                    continue
                result.transitions += 1
                system.step += 1
                system.advance_env()
                child_vec = system.snapshot()
                key = system.canon(child_vec)
                if key not in seen:
                    seen.add(key)
                    frontier.append((child_vec, depth + 1))
        return result

    # -- legacy deepcopy engine ----------------------------------------------

    def _run_deepcopy(self, result: ModelCheckResult) -> ModelCheckResult:
        root = self._fresh()
        root.advance_env()
        seen = {root.canon()}
        frontier: deque = deque([(root, 0)])

        while frontier:
            result.max_frontier = max(result.max_frontier, len(frontier))
            if result.states >= self._max_states:
                result.truncated = True
                result.note = f"state cap {self._max_states} reached"
                break
            system, depth = frontier.popleft()
            result.states += 1

            try:
                InvariantChecker(system.proto).check()
            except ReproError as exc:
                result.violations.append(f"depth {depth}: {exc}")
                continue

            enabled = {
                pid: system.stack().enabled_actions(pid)
                for pid in range(system.proto.net.n)
            }
            enabled = {pid: acts for pid, acts in enabled.items() if acts}
            if not enabled:
                result.terminal_states += 1
                ledger = system.proto.ledger
                if not ledger.all_valid_delivered():
                    result.violations.append(
                        f"depth {depth}: terminal configuration with "
                        f"undelivered uids {sorted(ledger.outstanding_uids())}"
                    )
                if system.proto.hl.total_pending():
                    result.violations.append(
                        f"depth {depth}: terminal configuration with "
                        f"pending submissions"
                    )
                continue

            try:
                selections = self._selections(enabled)
            except SelectionOverflow as exc:
                result.truncated = True
                result.note = f"depth {depth}: {exc}"
                break

            for selection in selections:
                child = copy.deepcopy(system)
                child_enabled = {
                    pid: child.stack().enabled_actions(pid)
                    for pid in selection
                }
                try:
                    for pid, action_index in selection.items():
                        child_enabled[pid][action_index].execute()
                except ReproError as exc:
                    result.violations.append(f"depth {depth + 1}: {exc}")
                    continue
                result.transitions += 1
                child.step += 1
                child.advance_env()
                key = child.canon()
                if key not in seen:
                    seen.add(key)
                    frontier.append((child, depth + 1))
        return result
