"""Exhaustive state-space exploration of small forwarding-protocol instances.

The checker performs BFS over *every* reachable configuration: from each
configuration it enumerates every daemon choice the model allows — every
nonempty subset of enabled processors, every choice of enabled action per
selected processor, i.e. the full distributed-daemon semantics including
simultaneity.  In every visited configuration the safety invariants
(Lemmas 4-5 plus well-formedness) are checked, the strict ledger arms the
exactly-once specification, and every *terminal* configuration is required
to have delivered all generated messages.

This is genuine model checking (bounded only by the instance size), not
sampling: on a 3-processor line with two same-payload messages it visits
every configuration the paper's adversary could ever produce.

Exploration engines
-------------------
The default ``"snapshot"`` engine explores **one** reused system through
the explicit snapshot/restore layer (:mod:`repro.statemodel.snapshot`):
each transition restores the parent's state vector (a diffing write that
touches only the cells that differ), executes the selected actions —
reusing the parent's already-bound :class:`~repro.statemodel.action.Action`
objects, which is sound because restore reinstates the exact configuration
they were evaluated against — and snapshots the child.  Because every
restore write flows through the ordinary change notifiers, the
component-granular incremental engine of the simulator stays engaged: a
popped state re-evaluates only the ``(processor, destination)`` components
touched since the previously evaluated configuration.  The canonical form
is a projection of the same state vector, so canonicalization and
restoration can never diverge.

The ``"parallel"`` engine (:mod:`repro.verify.parallel`) shards the BFS
frontier across forked worker processes by canon hash, each worker
holding its shard of the seen-set; cross-shard successors are exchanged
in batched per-level rounds and the parent aggregates counts and
violation witnesses deterministically.

Both snapshot-based engines accept the state-space *reductions* of
:mod:`repro.verify.reduction` — canonical-form symmetry quotienting and
partial-order reduction of decomposable daemon selections.

The legacy ``"deepcopy"`` engine clones the whole system per transition
with :func:`copy.deepcopy`.  It is kept as the unreduced differential
oracle: the equivalence suite and the X-SNAP benchmark pin that both
serial engines visit the bit-identical state set, transition count and
violations, and the reduction oracle in ``tests/test_verify_reduction.py``
pins that every reduced/parallel configuration reaches the same canon set
and verdict (see ``docs/verify.md``).
"""

from __future__ import annotations

import copy
import itertools
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.invariants import InvariantChecker
from repro.core.family import ForwardingProtocol
from repro.errors import ReproError, SelectionOverflow
from repro.statemodel.composition import PriorityStack
from repro.statemodel.snapshot import StateVector
from repro.verify.reduction import IndependenceOracle, validate_symmetry

#: The exploration engines accepted by the verifiers.
ENGINES = ("snapshot", "deepcopy", "parallel")

#: The state-space reductions accepted by the snapshot-based engines.
REDUCTIONS = ("none", "por", "symmetry", "full")


@dataclass
class ModelCheckResult:
    """Outcome of an exhaustive exploration."""

    states: int
    transitions: int
    terminal_states: int
    max_frontier: int
    truncated: bool
    #: Human-readable invariant/spec failures with their depth (empty ==
    #: the instance is exhaustively safe).
    violations: List[str] = field(default_factory=list)
    #: Why a truncated search stopped early (state cap, selection fan-out);
    #: None for complete searches.
    note: Optional[str] = None
    #: Children that deduplicated against an already-seen canon.
    dedup_hits: int = 0
    #: Daemon selections pruned by partial-order reduction.
    skipped_selections: int = 0
    #: The reduction configuration the run used.
    reduction: str = "none"
    #: Size of the validated symmetry group (1 == identity only).
    group_size: int = 1
    #: How the reductions were applied or why they were disabled.
    reduction_note: Optional[str] = None
    #: The reachable canon set (orbit representatives under symmetry);
    #: populated only when ``collect_canons=True``.
    canons: Optional[FrozenSet] = None

    @property
    def ok(self) -> bool:
        """True iff no violation was found and the search completed."""
        return not self.violations and not self.truncated


class ProgressMeter:
    """Rate-limited progress reporting for long exhaustive runs.

    Emits a row ``{states, frontier, states_per_s, dedup_hits,
    elapsed_s}`` to the ``on_progress`` callback every ``log_every``
    expanded states, mirrors the rate into a ``repro.obs`` registry
    (``verify_states_per_s`` histogram), and exports the final
    ``verify_states_total`` / ``verify_transitions_total`` counters and
    the ``verify_dedup_ratio`` gauge on :meth:`finish`."""

    def __init__(self, log_every=0, on_progress=None, obs=None,
                 engine="snapshot"):
        self._log_every = max(0, int(log_every or 0))
        self._cb = on_progress
        self._obs = obs
        self._engine = engine
        self._t0 = time.perf_counter()
        self._next = self._log_every

    def tick(self, states: int, frontier: int, dedup_hits: int) -> None:
        if not self._log_every or states < self._next:
            return
        while self._next <= states:
            self._next += self._log_every
        elapsed = max(time.perf_counter() - self._t0, 1e-9)
        row = {
            "states": states,
            "frontier": frontier,
            "states_per_s": round(states / elapsed, 1),
            "dedup_hits": dedup_hits,
            "elapsed_s": round(elapsed, 3),
        }
        if self._cb is not None:
            self._cb(row)
        if self._obs is not None:
            self._obs.observe(
                "verify_states_per_s", row["states_per_s"], engine=self._engine
            )

    def finish(self, states: int, transitions: int, dedup_hits: int) -> None:
        if self._obs is None:
            return
        self._obs.counter("verify_states_total", engine=self._engine).inc(states)
        self._obs.counter(
            "verify_transitions_total", engine=self._engine
        ).inc(transitions)
        self._obs.gauge("verify_dedup_ratio", engine=self._engine).set(
            round(dedup_hits / max(transitions, 1), 6)
        )


def enumerate_selections(
    enabled: Dict[int, List], max_width: int
) -> List[Dict[int, int]]:
    """Every daemon choice: nonempty subset of enabled pids x one enabled
    action index each.  Raises :class:`SelectionOverflow` when the fan-out
    exceeds ``max_width`` (the per-state safety valve)."""
    pids = sorted(enabled)
    selections: List[Dict[int, int]] = []
    for r in range(1, len(pids) + 1):
        for subset in itertools.combinations(pids, r):
            index_ranges = [range(len(enabled[pid])) for pid in subset]
            for choice in itertools.product(*index_ranges):
                selections.append(dict(zip(subset, choice)))
                if len(selections) > max_width:
                    raise SelectionOverflow(
                        f"selection fan-out exceeds {max_width}; "
                        "use a smaller instance or raise max_selection_width"
                    )
    return selections


class _System:
    """The explorable bundle: the protocol stack plus the step counter,
    with snapshot/restore and snapshot-derived canonicalization."""

    def __init__(self, proto: ForwardingProtocol, extra_protocols=()) -> None:
        self.proto = proto
        self.protocols = list(extra_protocols) + [proto]
        #: Built once and reused for every guard evaluation (the
        #: pre-snapshot checker rebuilt a fresh stack per call, discarding
        #: the composition's caches each time).
        self._stack = PriorityStack(self.protocols)
        self.step = 0

    def stack(self) -> PriorityStack:
        return self._stack

    def advance_env(self) -> None:
        """The environment phase (requests + queue sync), deterministic."""
        self._stack.before_step(self.step)

    # -- snapshot/restore ----------------------------------------------------

    def snapshot(self) -> StateVector:
        """Full state vector: every layer's vector plus the step counter."""
        return (self._stack.snapshot(), self.step)

    def restore(self, vec: StateVector) -> None:
        """Reinstate a previously captured :meth:`snapshot` (diffing —
        only cells that differ are written, through the layers' ordinary
        mutators and change notifiers)."""
        stack_vec, step = vec
        self._stack.restore(stack_vec)
        self.step = step

    def canon(self, vec: Optional[StateVector] = None) -> Tuple:
        """A hashable canonical form of the full configuration, **derived
        from the state vector** — the same value :meth:`restore` consumes,
        so canonicalization and restoration cannot diverge.

        The projection drops state that never influences future protocol
        behavior distinguishably: the step counter, message birth stamps,
        the uid counters (determined by the generation count), the
        delivery/violation logs and the ledger's per-record details.

        Every processor-indexed field is stored in a deterministic,
        identity-sorted order (buffers by ``(d, p, kind)``, queues and
        outboxes ascending) — the *orbit-stable* ordering contract that
        lets :mod:`repro.verify.reduction` permute a canon and re-sort it
        into the same normal form (see ``statemodel/snapshot.py``).
        """
        if vec is None:
            vec = self.snapshot()
        stack_vec, _step = vec
        bufs_vec, queues_vec, hl_vec, ledger_vec, _factory, _pstep = stack_vec[-1]
        buffers = tuple(
            (d, p, kind, msg.payload, msg.last, msg.color, msg.uid)
            for d, p, kind, msg in bufs_vec
        )
        app = (hl_vec[0], hl_vec[1])
        generated, delivered, invalid, _lost, _violations = ledger_vec
        delivered_uids = {uid for uid, _ in delivered}
        accounts = (
            tuple(sorted(uid for uid, _ in generated if uid not in delivered_uids)),
            len(generated),
            len(delivered),
            len(invalid),
        )
        #: Higher-priority layers (e.g. the routing protocol ``A``) are
        #: canonical in full — their vectors are already compact tables.
        extras = stack_vec[:-1]
        return (buffers, queues_vec, app, extras, accounts)


def expand_state(system, stack, n, vec, depth, max_width, oracle, reducer, result):
    """Expand one configuration: restore it, run the invariant and
    terminal checks, enumerate the daemon selections (POR-filtered when
    ``oracle`` is given), execute each and canonicalize the children.

    Shared by the serial snapshot engine and the parallel workers
    (:mod:`repro.verify.parallel`) so the two expansions cannot drift.
    Updates ``result``'s transitions / terminal / violations / skipped
    counters; ``states`` and ``dedup_hits`` stay with the caller, which
    owns the seen-set.  Returns the children as ``[(child_vec, key,
    depth + 1), ...]`` — possibly with repeated keys; dedup is the
    caller's job — or ``None`` when a :class:`SelectionOverflow` truncated
    the search (``result.note`` set).

    POR runs in two passes over one selection list: singletons come first
    in :func:`enumerate_selections` order and their executions are
    measured through ``proto.footprint_log`` (the PR 3 notifier sinks
    record the dirtied ``(processor, destination)`` components); composite
    selections then consult those measured trails in
    :meth:`IndependenceOracle.admissible`, which sharpens the static
    neighborhood test to exact component interference.  Instances without
    the incremental engine (non-notifying routing providers) skip the
    measurement — the sinks never fire there, so an empty trail would be
    a false proof of independence — and fall back to the static rules.
    """
    system.restore(vec)
    try:
        InvariantChecker(system.proto).check()
    except ReproError as exc:
        result.violations.append(f"depth {depth}: {exc}")
        return []

    # Drain the dirty channel so the component caches stay engaged: only
    # components touched since the previously evaluated configuration (by
    # execution, environment moves, or restore diffs) are re-evaluated
    # inside enabled_actions.
    stack.dirty_after({})
    enabled = {pid: stack.enabled_actions(pid) for pid in range(n)}
    enabled = {pid: acts for pid, acts in enabled.items() if acts}
    if not enabled:
        result.terminal_states += 1
        ledger = system.proto.ledger
        if not ledger.all_valid_delivered():
            result.violations.append(
                f"depth {depth}: terminal configuration with "
                f"undelivered uids {sorted(ledger.outstanding_uids())}"
            )
        if system.proto.hl.total_pending():
            result.violations.append(
                f"depth {depth}: terminal configuration with "
                f"pending submissions"
            )
        return []

    try:
        selections = enumerate_selections(enabled, max_width)
    except SelectionOverflow as exc:
        result.truncated = True
        result.note = f"depth {depth}: {exc}"
        return None

    proto = system.proto
    measure = oracle is not None and getattr(proto, "_incremental", False)
    footprints = {} if measure else None
    children = []
    for selection in selections:
        if oracle is not None and len(selection) > 1:
            if not oracle.admissible(selection, enabled, footprints):
                result.skipped_selections += 1
                continue
        # Back to the parent configuration: the enabled actions were bound
        # against exactly this state, so they can be re-executed per
        # selection without re-deriving them.
        system.restore(vec)
        log = None
        if measure and len(selection) == 1:
            log = set()
            proto.footprint_log = log
        try:
            for pid, action_index in selection.items():
                enabled[pid][action_index].execute()
        except ReproError as exc:
            if log is not None:
                proto.footprint_log = None
                ((pid, idx),) = selection.items()
                footprints[(pid, idx)] = None  # unmeasurable: wildcard
            result.violations.append(f"depth {depth + 1}: {exc}")
            continue
        result.transitions += 1
        system.step += 1
        system.advance_env()
        if log is not None:
            # The trail spans execution *and* the following environment
            # phase — request re-raises and queue re-syncs are part of the
            # action's observable footprint.
            proto.footprint_log = None
            ((pid, idx),) = selection.items()
            footprints[(pid, idx)] = None if None in log else frozenset(log)
        child_vec = system.snapshot()
        key = system.canon(child_vec)
        if reducer is not None:
            key = reducer.representative(key)
        children.append((child_vec, key, depth + 1))
    return children


def default_workers() -> int:
    """Worker-count default for the parallel engine: the machine's CPUs,
    capped (frontier exchange saturates quickly past 8 shards)."""
    return max(1, min(8, os.cpu_count() or 1))


class ModelChecker:
    """Breadth-first exhaustive exploration.

    Parameters
    ----------
    make_system:
        Zero-argument factory building the *initial* configuration: returns
        a :class:`ForwardingProtocol` instance (with its higher layer already loaded
        and any corruption applied) or a tuple ``(ssmfp, [higher-priority
        protocols])``.
    max_states:
        Exploration cap; exceeding it marks the result ``truncated``.
    max_selection_width:
        Safety valve on the per-state fan-out (number of daemon choices).
        Exceeding it also marks the result ``truncated`` (with
        :attr:`ModelCheckResult.note` explaining why) — ``run()`` never
        raises.
    engine:
        ``"snapshot"`` (default) explores one reused system through the
        snapshot/restore layer; ``"parallel"`` shards the frontier across
        forked worker processes; ``"deepcopy"`` clones the system per
        transition (the legacy engine, kept as the unreduced differential
        oracle — it rejects reductions).
    reduction:
        ``"none"`` (default), ``"por"`` (partial-order reduction of
        decomposable selections — preserves the reachable state set,
        prunes transitions), ``"symmetry"`` (orbit quotient under the
        validated processor-permutation group) or ``"full"`` (both).
        Reductions that do not apply to the instance are disabled with an
        explanatory :attr:`ModelCheckResult.reduction_note`, never
        silently wrong.
    workers:
        Worker processes for the parallel engine (default:
        :func:`default_workers`).  With fewer than two effective workers
        the parallel engine degrades to the in-process snapshot search.
    log_every / on_progress / obs:
        Progress reporting: every ``log_every`` expanded states a row is
        passed to ``on_progress`` and mirrored into the ``obs`` metrics
        registry; final totals are exported as ``verify_states_total`` /
        ``verify_dedup_ratio`` (see :class:`ProgressMeter`).
    collect_canons:
        Populate :attr:`ModelCheckResult.canons` with the reachable canon
        set (orbit representatives under symmetry) — the differential
        oracle's raw material.
    """

    def __init__(
        self,
        make_system,
        max_states: int = 50_000,
        max_selection_width: int = 512,
        engine: str = "snapshot",
        reduction: str = "none",
        workers: Optional[int] = None,
        log_every: int = 0,
        on_progress=None,
        obs=None,
        collect_canons: bool = False,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; want one of {ENGINES}")
        if reduction not in REDUCTIONS:
            raise ValueError(
                f"unknown reduction {reduction!r}; want one of {REDUCTIONS}"
            )
        if engine == "deepcopy" and reduction != "none":
            raise ValueError(
                "the deepcopy engine is the unreduced differential oracle; "
                "reductions apply to the snapshot/parallel engines only"
            )
        self._make_system = make_system
        self._max_states = max_states
        self._max_width = max_selection_width
        self._engine = engine
        self._reduction = reduction
        self._workers = workers
        self._log_every = log_every
        self._on_progress = on_progress
        self._obs = obs
        self._collect_canons = collect_canons

    def _fresh(self) -> _System:
        made = self._make_system()
        if isinstance(made, tuple):
            proto, extra = made
            return _System(proto, extra)
        return _System(made)

    def _selections(self, enabled: Dict[int, List]) -> List[Dict[int, int]]:
        return enumerate_selections(enabled, self._max_width)

    def _setup_reduction(self, system: _System, result: ModelCheckResult):
        """Validate the requested reductions against the instance (the
        system must be in its root configuration).  Returns ``(symmetry
        reducer or None, independence oracle or None)`` and records the
        group size / fallback notes on the result."""
        reducer = oracle = None
        notes: List[str] = []
        if self._reduction in ("symmetry", "full"):
            reducer, note = validate_symmetry(system.proto, system.canon())
            notes.append(note)
            if reducer is not None:
                result.group_size = reducer.group_size
        if self._reduction in ("por", "full"):
            if getattr(system.proto, "_sync_every_step", False):
                notes.append(
                    "por off: aged_fair per-step reconciliation is not "
                    "idempotent across decomposed selections"
                )
            else:
                oracle = IndependenceOracle(system.proto)
                notes.append("por on")
        if notes:
            result.reduction_note = "; ".join(notes)
        return reducer, oracle

    def _meter(self) -> ProgressMeter:
        return ProgressMeter(
            log_every=self._log_every,
            on_progress=self._on_progress,
            obs=self._obs,
            engine=self._engine,
        )

    def run(self) -> ModelCheckResult:
        """Explore exhaustively; never raises on protocol violations or
        fan-out overflow — violations are collected into the result and an
        overflow truncates it (see :attr:`ModelCheckResult.note`)."""
        result = ModelCheckResult(
            states=0, transitions=0, terminal_states=0,
            max_frontier=0, truncated=False, reduction=self._reduction,
        )
        if self._engine == "deepcopy":
            return self._run_deepcopy(result)
        if self._engine == "parallel":
            from repro.verify import parallel as _parallel

            workers = self._workers or default_workers()
            if workers >= 2 and _parallel.fork_available():
                return _parallel.run_safety(self, result, workers)
            fallback = (
                f"parallel engine degraded to in-process search "
                f"(workers={workers}, fork "
                f"{'available' if _parallel.fork_available() else 'unavailable'})"
            )
            out = self._run_snapshot(result)
            out.reduction_note = (
                f"{out.reduction_note}; {fallback}"
                if out.reduction_note else fallback
            )
            return out
        return self._run_snapshot(result)

    # -- snapshot engine -----------------------------------------------------

    def _run_snapshot(self, result: ModelCheckResult) -> ModelCheckResult:
        system = self._fresh()
        system.advance_env()
        reducer, oracle = self._setup_reduction(system, result)
        meter = self._meter()
        stack = system.stack()
        n = system.proto.net.n
        root_vec = system.snapshot()
        root_key = system.canon(root_vec)
        if reducer is not None:
            root_key = reducer.representative(root_key)
        seen = {root_key}
        frontier: deque = deque([(root_vec, 0)])

        while frontier:
            result.max_frontier = max(result.max_frontier, len(frontier))
            if result.states >= self._max_states:
                result.truncated = True
                result.note = f"state cap {self._max_states} reached"
                break
            vec, depth = frontier.popleft()
            result.states += 1
            meter.tick(result.states, len(frontier), result.dedup_hits)
            children = expand_state(
                system, stack, n, vec, depth,
                self._max_width, oracle, reducer, result,
            )
            if children is None:
                break
            for child_vec, key, child_depth in children:
                if key in seen:
                    result.dedup_hits += 1
                else:
                    seen.add(key)
                    frontier.append((child_vec, child_depth))
        if self._collect_canons:
            result.canons = frozenset(seen)
        meter.finish(result.states, result.transitions, result.dedup_hits)
        return result

    # -- legacy deepcopy engine ----------------------------------------------

    def _run_deepcopy(self, result: ModelCheckResult) -> ModelCheckResult:
        root = self._fresh()
        root.advance_env()
        seen = {root.canon()}
        frontier: deque = deque([(root, 0)])

        while frontier:
            result.max_frontier = max(result.max_frontier, len(frontier))
            if result.states >= self._max_states:
                result.truncated = True
                result.note = f"state cap {self._max_states} reached"
                break
            system, depth = frontier.popleft()
            result.states += 1

            try:
                InvariantChecker(system.proto).check()
            except ReproError as exc:
                result.violations.append(f"depth {depth}: {exc}")
                continue

            enabled = {
                pid: system.stack().enabled_actions(pid)
                for pid in range(system.proto.net.n)
            }
            enabled = {pid: acts for pid, acts in enabled.items() if acts}
            if not enabled:
                result.terminal_states += 1
                ledger = system.proto.ledger
                if not ledger.all_valid_delivered():
                    result.violations.append(
                        f"depth {depth}: terminal configuration with "
                        f"undelivered uids {sorted(ledger.outstanding_uids())}"
                    )
                if system.proto.hl.total_pending():
                    result.violations.append(
                        f"depth {depth}: terminal configuration with "
                        f"pending submissions"
                    )
                continue

            try:
                selections = self._selections(enabled)
            except SelectionOverflow as exc:
                result.truncated = True
                result.note = f"depth {depth}: {exc}"
                break

            for selection in selections:
                child = copy.deepcopy(system)
                child_enabled = {
                    pid: child.stack().enabled_actions(pid)
                    for pid in selection
                }
                try:
                    for pid, action_index in selection.items():
                        child_enabled[pid][action_index].execute()
                except ReproError as exc:
                    result.violations.append(f"depth {depth + 1}: {exc}")
                    continue
                result.transitions += 1
                child.step += 1
                child.advance_env()
                key = child.canon()
                if key in seen:
                    result.dedup_hits += 1
                else:
                    seen.add(key)
                    frontier.append((child, depth + 1))
        if self._collect_canons:
            result.canons = frozenset(seen)
        return result
