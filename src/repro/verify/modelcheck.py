"""Exhaustive state-space exploration of small SSMFP instances.

The checker performs BFS over *every* reachable configuration: from each
configuration it enumerates every daemon choice the model allows — every
nonempty subset of enabled processors, every choice of enabled action per
selected processor, i.e. the full distributed-daemon semantics including
simultaneity — and applies it to a deep copy of the system.  In every
visited configuration the safety invariants (Lemmas 4-5 plus
well-formedness) are checked, the strict ledger arms the exactly-once
specification, and every *terminal* configuration is required to have
delivered all generated messages.

This is genuine model checking (bounded only by the instance size), not
sampling: on a 3-processor line with two same-payload messages it visits
every configuration the paper's adversary could ever produce.
"""

from __future__ import annotations

import copy
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.invariants import InvariantChecker
from repro.core.protocol import SSMFP
from repro.errors import ReproError
from repro.statemodel.composition import PriorityStack


@dataclass
class ModelCheckResult:
    """Outcome of an exhaustive exploration."""

    states: int
    transitions: int
    terminal_states: int
    max_frontier: int
    truncated: bool
    #: Human-readable invariant/spec failures with their depth (empty ==
    #: the instance is exhaustively safe).
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff no violation was found and the search completed."""
        return not self.violations and not self.truncated


class _System:
    """The deep-copyable bundle the checker explores."""

    def __init__(self, proto: SSMFP, extra_protocols=()) -> None:
        self.proto = proto
        self.protocols = list(extra_protocols) + [proto]
        self.step = 0

    def stack(self) -> PriorityStack:
        return PriorityStack(self.protocols)

    def advance_env(self) -> None:
        """The environment phase (requests + queue sync), deterministic."""
        self.stack().before_step(self.step)

    def canon(self) -> Tuple:
        """A hashable canonical form of the full configuration."""
        proto = self.proto
        buffers = tuple(
            (d, p, kind, msg.payload, msg.last, msg.color, msg.uid)
            for d, p, kind, msg in proto.bufs.iter_messages()
        )
        queues = tuple(
            (d, p, proto.queues[d][p].state())
            for d in proto.net.processors()
            for p in proto.net.processors()
            if proto.queues[d][p].state() != ((), ())
        )
        hl = proto.hl
        app = (
            tuple(tuple(box) for box in hl._outbox),
            tuple(hl.request),
        )
        routing_state: Tuple = ()
        if hasattr(proto.routing, "dist"):
            routing_state = (
                tuple(tuple(row) for row in proto.routing.dist),
                tuple(tuple(row) for row in proto.routing.hop),
            )
        ledger = proto.ledger
        accounts = (
            tuple(sorted(ledger.outstanding_uids())),
            ledger.generated_count,
            ledger.valid_delivered_count,
            ledger.invalid_delivery_count,
        )
        return (buffers, queues, app, routing_state, accounts)


class ModelChecker:
    """Breadth-first exhaustive exploration.

    Parameters
    ----------
    make_system:
        Zero-argument factory building the *initial* configuration: returns
        an :class:`SSMFP` instance (with its higher layer already loaded
        and any corruption applied) or a tuple ``(ssmfp, [higher-priority
        protocols])``.
    max_states:
        Exploration cap; exceeding it marks the result ``truncated``.
    max_selection_width:
        Safety valve on the per-state fan-out (number of daemon choices).
    """

    def __init__(
        self,
        make_system,
        max_states: int = 50_000,
        max_selection_width: int = 512,
    ) -> None:
        self._make_system = make_system
        self._max_states = max_states
        self._max_width = max_selection_width

    def _fresh(self) -> _System:
        made = self._make_system()
        if isinstance(made, tuple):
            proto, extra = made
            return _System(proto, extra)
        return _System(made)

    def _selections(self, enabled: Dict[int, List]) -> List[Dict[int, int]]:
        """Every daemon choice: nonempty subset of enabled pids x one
        enabled action index each."""
        pids = sorted(enabled)
        selections: List[Dict[int, int]] = []
        for r in range(1, len(pids) + 1):
            for subset in itertools.combinations(pids, r):
                index_ranges = [range(len(enabled[pid])) for pid in subset]
                for choice in itertools.product(*index_ranges):
                    selections.append(dict(zip(subset, choice)))
                    if len(selections) > self._max_width:
                        raise ReproError(
                            f"selection fan-out exceeds {self._max_width}; "
                            "use a smaller instance"
                        )
        return selections

    def run(self) -> ModelCheckResult:
        """Explore exhaustively; never raises on protocol violations —
        they are collected into the result."""
        result = ModelCheckResult(
            states=0, transitions=0, terminal_states=0,
            max_frontier=0, truncated=False,
        )
        root = self._fresh()
        root.advance_env()
        seen = {root.canon()}
        frontier: deque = deque([(root, 0)])

        while frontier:
            result.max_frontier = max(result.max_frontier, len(frontier))
            if result.states >= self._max_states:
                result.truncated = True
                break
            system, depth = frontier.popleft()
            result.states += 1

            try:
                InvariantChecker(system.proto).check()
            except ReproError as exc:
                result.violations.append(f"depth {depth}: {exc}")
                continue

            enabled = {
                pid: system.stack().enabled_actions(pid)
                for pid in range(system.proto.net.n)
            }
            enabled = {pid: acts for pid, acts in enabled.items() if acts}
            if not enabled:
                result.terminal_states += 1
                ledger = system.proto.ledger
                if not ledger.all_valid_delivered():
                    result.violations.append(
                        f"depth {depth}: terminal configuration with "
                        f"undelivered uids {sorted(ledger.outstanding_uids())}"
                    )
                if system.proto.hl.total_pending():
                    result.violations.append(
                        f"depth {depth}: terminal configuration with "
                        f"pending submissions"
                    )
                continue

            for selection in self._selections(enabled):
                child = copy.deepcopy(system)
                child_enabled = {
                    pid: child.stack().enabled_actions(pid)
                    for pid in selection
                }
                try:
                    for pid, action_index in selection.items():
                        child_enabled[pid][action_index].execute()
                except ReproError as exc:
                    result.violations.append(f"depth {depth + 1}: {exc}")
                    continue
                result.transitions += 1
                child.step += 1
                child.advance_env()
                key = child.canon()
                if key not in seen:
                    seen.add(key)
                    frontier.append((child, depth + 1))
        return result
