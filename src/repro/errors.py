"""Exception hierarchy for the SSMFP reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by :mod:`repro`."""


class TopologyError(ReproError):
    """Raised when a network description is malformed (disconnected graph,
    self-loop, duplicate edge, identity out of range, ...)."""


class ConfigurationError(ReproError):
    """Raised when a simulation is assembled from inconsistent pieces
    (e.g. routing table sized for a different network)."""


class InvariantViolation(ReproError):
    """Raised by strict-mode invariant checking when an execution reaches a
    configuration the protocol's proofs forbid.

    A raised :class:`InvariantViolation` is always a bug — either in the
    reproduction or in the paper's argument — never an expected outcome.
    """


class SpecificationViolation(ReproError):
    """Raised by the delivery ledger when the external specification SP is
    violated: a valid message lost, duplicated, or delivered to the wrong
    processor."""


class SelectionOverflow(ReproError):
    """Raised while enumerating daemon choices when the per-state fan-out
    exceeds the verifier's safety valve.  :class:`~repro.verify.ModelChecker`
    converts it into a ``truncated`` result (its ``run()`` never raises);
    the liveness explorer propagates it, since a partially built reachable
    graph cannot prove starvation-freedom."""


class ScheduleError(ReproError):
    """Raised when a daemon produces an illegal selection (empty selection
    while processors are enabled, selecting a disabled processor, ...)."""


class SimulationLimitExceeded(ReproError):
    """Raised when an execution exceeds its step budget without reaching the
    requested halting condition.  Carries diagnostic context to make
    non-terminating runs debuggable."""

    def __init__(self, message: str, *, steps: int, rounds: int) -> None:
        super().__init__(message)
        self.steps = steps
        self.rounds = rounds
