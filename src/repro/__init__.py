"""repro — a reproduction of "A snap-stabilizing point-to-point
communication protocol in message-switched networks" (Cournier, Dubois,
Villain; IPPS 2009).

The package implements the paper's SSMFP protocol and every substrate it
depends on — the locally shared memory state model with adversarial
daemons, a self-stabilizing silent routing protocol composed with priority,
buffer graphs and deadlock-free controllers, the classical fault-free
baseline, and an experiment harness regenerating each of the paper's
figures and propositions.

Quickstart::

    from repro import build_simulation, delivered_and_drained
    from repro.network import ring_network
    from repro.app import uniform_workload

    net = ring_network(8)
    sim = build_simulation(
        net,
        workload=uniform_workload(net.n, count=20, seed=1),
        routing_corruption={"kind": "random", "fraction": 1.0},
        garbage={"fraction": 0.4},
        seed=7,
    )
    sim.run(200_000, halt=delivered_and_drained)
    assert sim.ledger.all_valid_delivered()   # exactly once, per message
"""

from repro.app import HigherLayer, uniform_workload
from repro.core import SSMFP, DeliveryLedger, InvariantChecker
from repro.errors import (
    ConfigurationError,
    InvariantViolation,
    ReproError,
    ScheduleError,
    SimulationLimitExceeded,
    SpecificationViolation,
    TopologyError,
)
from repro.network import Network
from repro.routing import SelfStabilizingBFSRouting, StaticRouting
from repro.sim import (
    Simulation,
    build_baseline_simulation,
    build_simulation,
    delivered_and_drained,
)
from repro.statemodel import (
    Daemon,
    DistributedRandomDaemon,
    Message,
    RoundRobinDaemon,
    Simulator,
    SynchronousDaemon,
)

__version__ = "1.0.0"

__all__ = [
    "SSMFP",
    "DeliveryLedger",
    "InvariantChecker",
    "HigherLayer",
    "uniform_workload",
    "Network",
    "SelfStabilizingBFSRouting",
    "StaticRouting",
    "Simulation",
    "build_simulation",
    "build_baseline_simulation",
    "delivered_and_drained",
    "Daemon",
    "DistributedRandomDaemon",
    "RoundRobinDaemon",
    "SynchronousDaemon",
    "Simulator",
    "Message",
    "ReproError",
    "TopologyError",
    "ConfigurationError",
    "InvariantViolation",
    "SpecificationViolation",
    "ScheduleError",
    "SimulationLimitExceeded",
    "__version__",
]
