"""Scenario outcomes: one shape for both targets.

A :class:`ScenarioResult` carries the verdict (pass criteria evaluated
against the run's metrics), the fault-event timeline, and the prebuilt
``repro.obs/v1`` rows — so the campaign driver and the CLI never care
which compiler produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


def evaluate_pass(
    criteria: Dict[str, Any], metrics: Dict[str, Any]
) -> List[str]:
    """Evaluate pass criteria against run metrics; returns the list of
    violated criteria (empty == PASS).  A ceiling of 0 means "no ceiling"
    so TOML specs can spell the default explicitly."""
    failures: List[str] = []
    if criteria.get("deliver_all", True):
        generated = metrics.get("generated", 0)
        delivered = metrics.get("delivered", 0)
        expected = metrics.get("expected", generated)
        if generated < expected:
            failures.append(
                f"deliver_all: only {generated}/{expected} messages generated"
            )
        if delivered < generated:
            failures.append(
                f"deliver_all: {delivered}/{generated} generated messages delivered"
            )
    max_dup = int(criteria.get("max_duplicates", 0))
    if metrics.get("duplicates", 0) > max_dup:
        failures.append(
            f"max_duplicates: {metrics['duplicates']} > {max_dup}"
        )
    for key, metric in (
        ("max_steps", "steps"),
        ("max_rounds", "rounds"),
        ("max_wall_s", "elapsed_s"),
        ("max_latency_p99_s", "latency_p99_s"),
    ):
        ceiling = criteria.get(key, 0)
        if ceiling and metrics.get(metric) is not None:
            if metrics[metric] > ceiling:
                failures.append(f"{key}: {metrics[metric]} > {ceiling}")
    return failures


@dataclass
class ScenarioResult:
    """Outcome of one scenario run on one target."""

    name: str
    target: str
    protocol: str
    ok: bool
    failures: List[str] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: The fault timeline: step-stamped (simulate) or mono-stamped
    #: (runtime) transition dicts, in injection order.
    fault_events: List[Dict[str, Any]] = field(default_factory=list)
    #: Prebuilt ``repro.obs/v1`` rows (metrics + traces + fault events).
    obs_rows: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        return "PASS" if self.ok else "FAIL"

    def row(self) -> Dict[str, Any]:
        """One flat campaign-summary row."""
        row: Dict[str, Any] = {
            "scenario": self.name,
            "target": self.target,
            "protocol": self.protocol,
            "verdict": self.verdict,
            "faults_injected": len(self.fault_events),
        }
        for key in ("generated", "delivered", "duplicates", "steps",
                    "rounds", "elapsed_s", "latency_p99_s"):
            if self.metrics.get(key) is not None:
                row[key] = self.metrics[key]
        if self.failures:
            row["failures"] = "; ".join(self.failures)
        return row

    def summary(self) -> str:
        """Human-readable run summary (printed by the CLI)."""
        metric_bits = " ".join(
            f"{key}={self.metrics[key]}"
            for key in ("generated", "delivered", "duplicates", "steps",
                        "rounds", "elapsed_s")
            if self.metrics.get(key) is not None
        )
        lines = [
            f"scenario [{self.verdict}] {self.name} target={self.target} "
            f"protocol={self.protocol} faults={len(self.fault_events)}",
        ]
        if metric_bits:
            lines.append(f"  {metric_bits}")
        for failure in self.failures:
            lines.append(f"  FAIL {failure}")
        return "\n".join(lines)
