"""The chaos action vocabulary of scenario schedules.

A schedule is a list of timed events; every event names an *action* from
the registry below plus action-specific kwargs.  ``at``/``until`` are in
abstract **time units** — the two compilers lower units onto the
simulator step clock (``clock.sim_steps_per_unit``) or the runtime wall
clock (``clock.runtime_s_per_unit``), so one spec file drives both
targets.

Validation is strict and total: unknown actions, unknown kwargs, events
outside the topology (a flood from a node that does not exist, a
partition cutting a non-edge), missing/forbidden ``until`` windows and
two windowed events fighting over the same resource (the same edge, the
same node, the routing tables, the netem knobs) in overlapping windows
are all :class:`~repro.errors.ConfigurationError`\\ s — a chaos campaign
that silently does less than its spec says would be vacuously green.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.network.graph import Network
from repro.types import normalized_edge

#: Keys every schedule event understands besides action kwargs.
RESERVED_EVENT_KEYS = ("at", "until", "action")

#: Netem knobs a ``netem`` event may change mid-run (edge state is owned
#: by ``link_flap``/``partition``; flap scheduling by ``link_flap``).
NETEM_EVENT_KEYS = ("loss", "dup", "reorder", "reorder_extra", "latency")


@dataclass(frozen=True)
class ActionDef:
    """Static description of one chaos action."""

    name: str
    #: Spec targets the action can lower to ({"simulate", "runtime"}).
    targets: FrozenSet[str]
    #: Window discipline: "required" (until must be given), "optional"
    #: (one-shot without, windowed with) or "forbidden" (one-shot only).
    windowed: str
    #: Allowed kwargs with their defaults (None = no default, optional).
    keys: Tuple[str, ...]
    doc: str


ACTIONS: Dict[str, ActionDef] = {
    action.name: action
    for action in (
        ActionDef(
            "corrupt_routing",
            frozenset({"simulate"}),
            "optional",
            ("fraction", "period"),
            "re-corrupt a fraction of live routing tables (burst, or "
            "periodic bursts every `period` units while windowed)",
        ),
        ActionDef(
            "garbage",
            frozenset({"simulate"}),
            "forbidden",
            ("fraction",),
            "plant invalid messages into currently-empty buffers "
            "(mid-run arbitrary garbage; in-flight valid traffic is "
            "never overwritten — the paper's fault model)",
        ),
        ActionDef(
            "link_flap",
            frozenset({"simulate", "runtime"}),
            "required",
            ("period", "down", "edges"),
            "every `period` units one random edge (from `edges`, default "
            "all) goes down for `down` units",
        ),
        ActionDef(
            "partition",
            frozenset({"simulate", "runtime"}),
            "required",
            ("groups", "edges"),
            "silence the cut between `groups` (or the explicit `edges`) "
            "for the window, then heal",
        ),
        ActionDef(
            "crash",
            frozenset({"simulate", "runtime"}),
            "required",
            ("node",),
            "fail-pause one node for the window, then restart it",
        ),
        ActionDef(
            "flood",
            frozenset({"simulate", "runtime"}),
            "forbidden",
            ("source", "dest", "count", "payload"),
            "inject `count` same-payload messages source->dest (the "
            "adversarial duplicate-payload workload, mid-run)",
        ),
        ActionDef(
            "netem",
            frozenset({"runtime"}),
            "optional",
            NETEM_EVENT_KEYS,
            "change transport fault knobs for the window (reverted at "
            "`until`; permanent without one)",
        ),
    )
}


@dataclass(frozen=True)
class ScheduleEvent:
    """One validated, normalized schedule entry."""

    index: int
    at: float
    until: Optional[float]
    action: str
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical (flattened) spec form."""
        out: Dict[str, Any] = {"at": self.at, "action": self.action}
        if self.until is not None:
            out["until"] = self.until
        for key in sorted(self.kwargs):
            out[key] = self.kwargs[key]
        return out


def _err(index: int, message: str) -> ConfigurationError:
    return ConfigurationError(f"schedule[{index}]: {message}")


def _check_node(index: int, net: Network, value: Any, what: str) -> int:
    try:
        node = int(value)
    except (TypeError, ValueError):
        raise _err(index, f"{what} must be a processor id, got {value!r}") from None
    if not 0 <= node < net.n:
        raise _err(index, f"{what} {node} outside topology (n={net.n})")
    return node


def _check_edge(index: int, net: Network, value: Any) -> Tuple[int, int]:
    try:
        u, v = value
    except (TypeError, ValueError):
        raise _err(index, f"edge must be a [u, v] pair, got {value!r}") from None
    u = _check_node(index, net, u, "edge endpoint")
    v = _check_node(index, net, v, "edge endpoint")
    if not net.are_neighbors(u, v):
        raise _err(index, f"({u}, {v}) is not an edge of the topology")
    return normalized_edge(u, v)


def _check_fraction(index: int, value: Any, key: str) -> float:
    try:
        fraction = float(value)
    except (TypeError, ValueError):
        raise _err(index, f"{key} must be a number, got {value!r}") from None
    if not 0.0 <= fraction <= 1.0:
        raise _err(index, f"{key} must be in [0, 1], got {fraction}")
    return fraction


def _partition_edges(
    index: int, net: Network, kwargs: Dict[str, Any]
) -> List[Tuple[int, int]]:
    """The cut edges of a partition event — explicit, or derived from two
    disjoint node groups."""
    if ("groups" in kwargs) == ("edges" in kwargs):
        raise _err(index, "partition needs exactly one of 'groups' or 'edges'")
    if "edges" in kwargs:
        edges = [_check_edge(index, net, e) for e in kwargs["edges"]]
        if not edges:
            raise _err(index, "partition 'edges' must not be empty")
        return sorted(set(edges))
    groups = kwargs["groups"]
    if len(groups) != 2:
        raise _err(index, f"partition 'groups' must be 2 lists, got {len(groups)}")
    sides = [
        {_check_node(index, net, p, "group member") for p in group}
        for group in groups
    ]
    if not sides[0] or not sides[1]:
        raise _err(index, "partition groups must be non-empty")
    if sides[0] & sides[1]:
        raise _err(index, f"partition groups overlap: {sorted(sides[0] & sides[1])}")
    cut = sorted(
        edge
        for edge in net.edges
        if (edge[0] in sides[0]) != (edge[1] in sides[0])
        and (edge[0] in sides[0] | sides[1])
        and (edge[1] in sides[0] | sides[1])
    )
    if not cut:
        raise _err(index, "partition groups share no edges to cut")
    return cut


def validate_event(
    index: int, raw: Dict[str, Any], net: Network
) -> ScheduleEvent:
    """Validate and normalize one raw schedule entry."""
    if not isinstance(raw, dict):
        raise _err(index, f"event must be an object, got {type(raw).__name__}")
    if "action" not in raw:
        raise _err(index, "event needs an 'action'")
    action = raw["action"]
    definition = ACTIONS.get(action)
    if definition is None:
        raise _err(
            index, f"unknown action {action!r}; known: {sorted(ACTIONS)}"
        )
    unknown = sorted(set(raw) - set(RESERVED_EVENT_KEYS) - set(definition.keys))
    if unknown:
        raise _err(
            index,
            f"unknown key(s) {unknown} for action {action!r}; "
            f"valid keys: {sorted(set(RESERVED_EVENT_KEYS) | set(definition.keys))}",
        )
    if "at" not in raw:
        raise _err(index, "event needs an 'at' time")
    try:
        at = float(raw["at"])
    except (TypeError, ValueError):
        raise _err(index, f"'at' must be a number, got {raw['at']!r}") from None
    if at < 0:
        raise _err(index, f"'at' must be >= 0, got {at}")
    until: Optional[float] = None
    if raw.get("until") is not None:
        try:
            until = float(raw["until"])
        except (TypeError, ValueError):
            raise _err(
                index, f"'until' must be a number, got {raw['until']!r}"
            ) from None
        if until <= at:
            raise _err(index, f"'until' ({until}) must be > 'at' ({at})")
    if definition.windowed == "required" and until is None:
        raise _err(index, f"action {action!r} needs an 'until' window")
    if definition.windowed == "forbidden" and until is not None:
        raise _err(index, f"action {action!r} is a one-shot; drop 'until'")

    kwargs = {k: raw[k] for k in raw if k not in RESERVED_EVENT_KEYS}
    if action == "corrupt_routing":
        if "fraction" in kwargs:
            kwargs["fraction"] = _check_fraction(index, kwargs["fraction"], "fraction")
        kwargs.setdefault("fraction", 0.5)
        period = float(kwargs.get("period", 1.0))
        if period <= 0:
            raise _err(index, f"period must be positive, got {period}")
        kwargs["period"] = period
    elif action == "garbage":
        if "fraction" in kwargs:
            kwargs["fraction"] = _check_fraction(index, kwargs["fraction"], "fraction")
        kwargs.setdefault("fraction", 0.3)
    elif action == "link_flap":
        period = float(kwargs.get("period", 1.0))
        down = float(kwargs.get("down", 0.4))
        if period <= 0:
            raise _err(index, f"period must be positive, got {period}")
        if not 0 < down <= period:
            raise _err(index, f"down must be in (0, period], got {down}")
        kwargs["period"], kwargs["down"] = period, down
        if kwargs.get("edges") is not None:
            edges = [_check_edge(index, net, e) for e in kwargs["edges"]]
            if not edges:
                raise _err(index, "link_flap 'edges' must not be empty")
            kwargs["edges"] = [list(e) for e in sorted(set(edges))]
        else:
            kwargs.pop("edges", None)
    elif action == "partition":
        cut = _partition_edges(index, net, kwargs)
        if set(cut) == set(net.edges):
            raise _err(index, "partition would cut every edge of the topology")
        kwargs = {"edges": [list(e) for e in cut]}
    elif action == "crash":
        if "node" not in kwargs:
            raise _err(index, "crash needs a 'node'")
        kwargs["node"] = _check_node(index, net, kwargs["node"], "node")
    elif action == "flood":
        for key in ("source", "dest"):
            if key not in kwargs:
                raise _err(index, f"flood needs a '{key}'")
            kwargs[key] = _check_node(index, net, kwargs[key], key)
        if kwargs["source"] == kwargs["dest"]:
            raise _err(index, "flood source and dest must differ")
        count = int(kwargs.get("count", 8))
        if count < 1:
            raise _err(index, f"flood count must be >= 1, got {count}")
        kwargs["count"] = count
        kwargs.setdefault("payload", "flood")
    elif action == "netem":
        if not kwargs:
            raise _err(index, "netem event changes nothing; set a knob")
        for key in ("loss", "dup", "reorder"):
            if key in kwargs:
                kwargs[key] = _check_fraction(index, kwargs[key], key)
        if "latency" in kwargs:
            try:
                lo, hi = kwargs["latency"]
                kwargs["latency"] = [float(lo), float(hi)]
            except (TypeError, ValueError):
                raise _err(
                    index,
                    f"latency must be a [lo, hi] pair, got {kwargs['latency']!r}",
                ) from None
    return ScheduleEvent(index=index, at=at, until=until, action=action, kwargs=kwargs)


def _resources(event: ScheduleEvent, net: Network) -> List[Tuple[str, Any]]:
    """The exclusive resources a *windowed* event occupies (one-shots
    never conflict)."""
    if event.until is None:
        return []
    if event.action == "corrupt_routing":
        return [("routing", None)]
    if event.action == "netem":
        return [("netem", None)]
    if event.action == "crash":
        return [("node", event.kwargs["node"])]
    if event.action == "partition":
        return [("edge", tuple(e)) for e in event.kwargs["edges"]]
    if event.action == "link_flap":
        edges = event.kwargs.get("edges")
        if edges is None:
            return [("edge", tuple(e)) for e in net.edges]
        return [("edge", tuple(e)) for e in edges]
    return []


def validate_schedule(
    raw_schedule: Any, net: Network
) -> List[ScheduleEvent]:
    """Validate a whole schedule: per-event checks plus the overlap audit.

    Two windowed events claiming the same resource in overlapping windows
    (two partitions fighting over one edge, two crashes of one node, two
    corruption regimes at once) make the spec ambiguous — which one "wins"
    would depend on task scheduling — so they are rejected outright.
    """
    if not isinstance(raw_schedule, (list, tuple)):
        raise ConfigurationError(
            f"'schedule' must be a list of events, "
            f"got {type(raw_schedule).__name__}"
        )
    events = [
        validate_event(index, raw, net) for index, raw in enumerate(raw_schedule)
    ]
    claims: Dict[Tuple[str, Any], List[ScheduleEvent]] = {}
    for event in events:
        for resource in _resources(event, net):
            for other in claims.get(resource, []):
                if event.at < other.until and other.at < event.until:  # type: ignore[operator]
                    raise ConfigurationError(
                        f"schedule[{other.index}] ({other.action}) and "
                        f"schedule[{event.index}] ({event.action}) overlap "
                        f"on {resource[0]}"
                        + (f" {resource[1]}" if resource[1] is not None else "")
                        + f" during [{max(event.at, other.at)}, "
                        f"{min(event.until, other.until)})"  # type: ignore[arg-type]
                    )
            claims.setdefault(resource, []).append(event)
    return events
