"""Declarative chaos scenarios and campaign driving.

One scenario spec (TOML or JSON) = one workload + one timed fault
schedule + budgets + pass criteria, compilable onto **either** execution
target: the simulator's step clock (:mod:`repro.scenario.simdriver`) or
the live runtime's wall clock (:mod:`repro.scenario.runtimedriver`).
The campaign driver (:mod:`repro.scenario.campaign`) expands a spec's
``matrix`` axes, fans runs out over the existing sweep process pool, and
leaves diffable ``repro.obs/v1`` artifacts behind.
"""

from repro.scenario.actions import ACTIONS, ScheduleEvent, validate_schedule
from repro.scenario.campaign import (
    CampaignResult,
    expand_matrix,
    run_campaign,
    run_one_scenario,
)
from repro.scenario.result import ScenarioResult, evaluate_pass
from repro.scenario.runtimedriver import run_runtime_scenario
from repro.scenario.simdriver import run_sim_scenario
from repro.scenario.spec import ScenarioSpec, load_scenario_file

__all__ = [
    "ACTIONS",
    "CampaignResult",
    "ScenarioResult",
    "ScenarioSpec",
    "ScheduleEvent",
    "evaluate_pass",
    "expand_matrix",
    "load_scenario_file",
    "run_campaign",
    "run_one_scenario",
    "run_runtime_scenario",
    "run_sim_scenario",
    "validate_schedule",
]
