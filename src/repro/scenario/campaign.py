"""Chaos campaigns: matrix expansion × repetition × parallel execution.

A campaign takes one scenario spec and runs the whole family it denotes:
the cartesian product of its ``matrix`` axes (dotted paths into the spec,
e.g. ``"topology.kwargs.n" = [6, 10]``), each combination repeated
``repeat`` times with per-run seed offsets.  Runs fan out over the
existing :func:`repro.sim.campaign.run_sweep` process pool, every run
writes its own ``repro.obs/v1`` artifact (fault timeline included), and
the summary JSONL is diffable with ``repro obs diff``.
"""

from __future__ import annotations

import copy
import re
from dataclasses import dataclass, field
from itertools import product
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.scenario.result import ScenarioResult
from repro.scenario.spec import ScenarioSpec
from repro.sim.campaign import run_sweep

#: Runner-config keys that ``run_sweep`` echoes into rows but that are
#: bookkeeping, not row identity ("label" and "target" stay: the former
#: *is* identity, the latter comes from the result, not the config).
_BOOKKEEPING_KEYS = ("spec_data", "smoke", "artifact_dir")


def _set_path(data: Dict[str, Any], path: str, value: Any) -> None:
    parts = path.split(".")
    cursor = data
    for part in parts[:-1]:
        nxt = cursor.get(part)
        if not isinstance(nxt, dict):
            nxt = {}
            cursor[part] = nxt
        cursor = nxt
    cursor[parts[-1]] = value


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", text).strip("_") or "run"


def expand_matrix(data: Dict[str, Any]) -> List[Tuple[str, Dict[str, Any]]]:
    """All (label, spec-dict) runs a campaign spec denotes.

    Axes apply in sorted-path order, repetitions innermost with the seed
    offset by the repetition index (matching ``run_sweep`` semantics);
    every expanded dict is re-validated so an axis value that breaks the
    spec fails at expansion time with a readable error naming the combo.
    """
    base_spec = ScenarioSpec.from_dict(data)  # validates the base shape
    matrix = base_spec.matrix
    repeat = base_spec.repeat
    template = base_spec.to_dict()
    template.pop("matrix", None)
    template["repeat"] = 1

    axes = sorted(matrix)
    combos = list(product(*(matrix[axis] for axis in axes))) if axes else [()]
    runs: List[Tuple[str, Dict[str, Any]]] = []
    for combo in combos:
        data_combo = copy.deepcopy(template)
        parts: List[str] = []
        for axis, value in zip(axes, combo):
            _set_path(data_combo, axis, value)
            parts.append(f"{axis.split('.')[-1]}={value}")
        for rep in range(repeat):
            run_data = copy.deepcopy(data_combo)
            run_data["seed"] = int(run_data.get("seed", 0)) + rep
            label_parts = list(parts)
            if repeat > 1:
                label_parts.append(f"rep={rep}")
            label = (
                f"{base_spec.name}[{','.join(label_parts)}]"
                if label_parts
                else base_spec.name
            )
            try:
                ScenarioSpec.from_dict(run_data)
            except ConfigurationError as exc:
                raise ConfigurationError(f"{label}: {exc}") from None
            runs.append((label, run_data))
    return runs


def run_one_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Dispatch one validated scenario to its target's compiler."""
    if spec.target == "runtime":
        from repro.scenario.runtimedriver import run_runtime_scenario

        return run_runtime_scenario(spec)
    from repro.scenario.simdriver import run_sim_scenario

    return run_sim_scenario(spec)


def _scenario_row(
    *,
    spec_data: Dict[str, Any],
    label: str,
    target: Optional[str] = None,
    smoke: bool = False,
    artifact_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """One campaign run → one summary row.  Module-level (not a closure)
    so :func:`run_sweep` can ship it to worker processes."""
    data = dict(spec_data)
    if target is not None:
        data["target"] = target
    spec = ScenarioSpec.from_dict(data)
    if smoke:
        spec = spec.smoked()
    result = run_one_scenario(spec)
    row = result.row()
    row["label"] = label
    if artifact_dir is not None:
        from pathlib import Path

        from repro.obs.export import write_jsonl

        path = Path(artifact_dir) / f"{_slug(label)}.jsonl"
        write_jsonl(
            path,
            result.obs_rows,
            kind="metric",
            name=label,
            meta={
                "scenario": spec.name,
                "target": spec.target,
                "protocol": spec.protocol,
                "verdict": result.verdict,
            },
        )
        row["artifact"] = str(path)
    return row


@dataclass
class CampaignResult:
    """Outcome of a whole campaign."""

    name: str
    rows: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.rows) and all(
            row.get("verdict") == "PASS" and "error" not in row
            for row in self.rows
        )

    @property
    def passed(self) -> int:
        return sum(1 for row in self.rows if row.get("verdict") == "PASS")

    def summary(self) -> str:
        from repro.sim.reporting import format_table

        columns = ["label", "target", "protocol", "verdict", "generated",
                   "delivered", "faults_injected", "elapsed_s"]
        extra = [
            row for row in self.rows
            if row.get("failures") or row.get("error")
        ]
        lines = [
            format_table(
                self.rows, columns=columns,
                title=f"[campaign] {self.name}: "
                      f"{self.passed}/{len(self.rows)} PASS",
            )
        ]
        for row in extra:
            reason = row.get("failures") or row.get("error")
            lines.append(f"  {row.get('label', '?')}: {reason}")
        return "\n".join(lines)


def run_campaign(
    data: Dict[str, Any],
    *,
    target: Optional[str] = None,
    smoke: bool = False,
    workers: Optional[int] = None,
    artifact_dir: Optional[str] = None,
    jsonl_path: Optional[str] = None,
) -> CampaignResult:
    """Expand and run a whole campaign.

    Spec/axis errors raise :class:`ConfigurationError` (CLI exit 2);
    individual run failures are captured as rows (campaign ``ok`` False,
    CLI exit 1) so one diverging combo never hides the rest.
    """
    if target is not None:
        data = {**data, "target": target}
    runs = expand_matrix(data)
    configs: List[Dict[str, Any]] = [
        {
            "spec_data": run_data,
            "label": label,
            "smoke": smoke,
            "artifact_dir": artifact_dir,
        }
        for label, run_data in runs
    ]
    rows = run_sweep(configs, _scenario_row, fail_fast=False, workers=workers)
    for row in rows:
        for key in _BOOKKEEPING_KEYS:
            row.pop(key, None)
    campaign = CampaignResult(name=str(data.get("name", "campaign")), rows=rows)
    if jsonl_path is not None:
        from repro.obs.export import write_jsonl

        # The per-run artifact path is machine-local bookkeeping; keeping
        # it out of the summary rows lets `repro obs diff` align the same
        # campaign across checkouts and artifact directories.
        write_jsonl(
            jsonl_path,
            [{k: v for k, v in row.items() if k != "artifact"} for row in rows],
            kind="scenario_row",
            name=campaign.name,
            meta={
                "runs": len(rows),
                "passed": campaign.passed,
                "smoke": smoke,
                "target": target or "spec",
            },
        )
    return campaign
