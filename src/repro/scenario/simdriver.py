"""Lowering a scenario onto the simulator step clock.

The schedule's abstract time units become step numbers
(``clock.sim_steps_per_unit``); every event turns into point
*applications* on the step axis plus, for ``crash``, a masking interval
on the daemon:

* ``corrupt_routing`` — :func:`~repro.routing.corruption.corrupt_random`
  at the burst steps (one burst, or every ``period`` units in a window);
* ``garbage`` — invalid messages planted into **currently empty** buffer
  slots (the paper's fault model corrupts state, it never destroys
  in-flight valid traffic — overwriting an occupied slot would);
* ``link_flap`` / ``partition`` — the routing entries that *use* the
  affected edges are re-pointed at other neighbors (a severed link in
  the state model is sustained misrouting: there are no channels to cut,
  so traffic that would cross the edge is sent the wrong way until the
  self-stabilizing routing protocol repairs around it, exactly the
  composition the paper proves against);  partitions re-apply the sever
  on every unit boundary of their window, then stop (heal) and let the
  routing protocol re-converge;
* ``crash`` — a fail-pause: the daemon is wrapped to never select the
  crashed processor while its window is open.  One documented wart: the
  central-daemon axiom requires selecting *some* enabled processor each
  step, so if **only** crashed processors are enabled the mask yields
  (the run would otherwise be illegal); scenario specs that crash every
  live participant get weaker crash semantics rather than an error;
* ``flood`` — same-payload submissions handed straight to the higher
  layer at the scheduled step.

With an **empty schedule** the drive loop reduces exactly to
:meth:`repro.sim.runner.Simulation.run` under the
``delivered_and_drained`` halt — the differential test pins that the
fingerprint (steps, rounds, rule counts, delivery counts) is
bit-identical to :func:`repro.sim.recording.record_run`.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.corruption import plant_invalid_message
from repro.errors import ConfigurationError
from repro.obs import MessageTracer, MetricsRegistry
from repro.routing.corruption import corrupt_random
from repro.routing.selfstab_bfs import SelfStabilizingBFSRouting
from repro.scenario.result import ScenarioResult, evaluate_pass
from repro.scenario.spec import ScenarioSpec
from repro.sim.runner import Simulation, delivered_and_drained
from repro.sim.spec import simulation_from_spec
from repro.statemodel.daemon import Daemon


class _CrashMaskDaemon(Daemon):
    """Wraps the configured daemon, hiding crashed processors from it."""

    name = "crash-mask"

    def __init__(
        self, base: Daemon, intervals: List[Tuple[int, int, int]]
    ) -> None:
        self._base = base
        self._intervals = intervals

    def select(self, enabled, step):
        crashed = {
            node
            for start, end, node in self._intervals
            if start <= step < end
        }
        if crashed:
            filtered = {
                p: actions for p, actions in enabled.items() if p not in crashed
            }
            if filtered:
                return self._base.select(filtered, step)
            # Only crashed processors are enabled: the daemon must still
            # select someone (documented wart — see module docstring).
        return self._base.select(enabled, step)


def _sever_edges(
    routing: SelfStabilizingBFSRouting,
    edges: List[Tuple[int, int]],
    rng: random.Random,
) -> int:
    """Re-point every routing entry that crosses ``edges`` at some other
    neighbor (with a corrupted distance) — the state-model analog of the
    link going down.  Returns entries hit."""
    net = routing.network
    hits = 0
    for u, v in edges:
        for a, b in ((u, v), (v, u)):
            alternatives = [q for q in net.neighbors(a) if q != b]
            if not alternatives:
                continue  # degree-1 node: nowhere else to point
            for d in net.processors():
                if d == a:
                    continue
                if routing.hop[d][a] == b:
                    routing.hop[d][a] = rng.choice(alternatives)
                    routing.dist[d][a] = rng.randrange(net.n)
                    hits += 1
    if hits:
        routing.invalidate()
    return hits


def _plant_mid_run_garbage(
    forwarding, rng: random.Random, fraction: float
) -> int:
    """Plant invalid messages into *empty* slots only: unlike the initial
    configuration (where everything is fair game), a mid-run fault that
    overwrote an occupied buffer would destroy in-flight valid traffic —
    outside the paper's fault model, and a strict-ledger violation."""
    net = forwarding.net
    planted = 0
    for d in net.processors():
        for p in net.processors():
            for kind in forwarding.buffer_kinds:
                if rng.random() >= fraction:
                    continue
                row = forwarding.bufs.R[d] if kind == "R" else forwarding.bufs.E[d]
                if row[p] is not None:
                    continue
                last = rng.choice([p] + list(net.neighbors(p)))
                color = rng.randrange(forwarding.delta + 1)
                plant_invalid_message(
                    forwarding, d, p, kind, f"g{rng.randrange(3)}", last, color
                )
                planted += 1
    return planted


def _lower_schedule(
    spec: ScenarioSpec, simulation: Simulation
) -> Tuple[Dict[int, List[Callable[[], Dict[str, Any]]]], List[Tuple[int, int, int]]]:
    """Turn the validated schedule into step-indexed application thunks
    plus crash-mask intervals.  Each thunk applies one fault and returns
    the detail dict for the fault-event row."""
    applications: Dict[int, List[Callable[[], Dict[str, Any]]]] = {}
    crash_intervals: List[Tuple[int, int, int]] = []
    routing = simulation.routing
    needs_selfstab = {"corrupt_routing", "link_flap", "partition"}

    def add(step: int, thunk: Callable[[], Dict[str, Any]]) -> None:
        applications.setdefault(step, []).append(thunk)

    for event in spec.schedule:
        if event.action in needs_selfstab and not isinstance(
            routing, SelfStabilizingBFSRouting
        ):
            raise ConfigurationError(
                f"schedule[{event.index}]: action {event.action!r} needs "
                f"routing mode 'selfstab' (static tables cannot be faulted)"
            )
        rng = random.Random(spec.seed * 1_000_003 + event.index)
        start = spec.steps_at(event.at)
        end = spec.steps_at(event.until) if event.until is not None else None

        if event.action == "corrupt_routing":
            fraction = float(event.kwargs["fraction"])
            pulse_steps = [start]
            if end is not None:
                stride = max(1, spec.steps_at(event.kwargs["period"]))
                pulse_steps = list(range(start, end, stride))
            for step in pulse_steps:
                def _corrupt(fraction=fraction, rng=rng):
                    hit = corrupt_random(
                        routing, seed=rng.randrange(1 << 30), fraction=fraction
                    )
                    return {"action": "corrupt_routing",
                            "fraction": fraction, "entries_hit": hit}
                add(step, _corrupt)
        elif event.action == "garbage":
            fraction = float(event.kwargs["fraction"])

            def _garbage(fraction=fraction, rng=rng):
                planted = _plant_mid_run_garbage(
                    simulation.forwarding, rng, fraction
                )
                return {"action": "garbage",
                        "fraction": fraction, "planted": planted}
            add(start, _garbage)
        elif event.action == "link_flap":
            stride = max(1, spec.steps_at(event.kwargs["period"]))
            edges = [tuple(e) for e in event.kwargs.get("edges") or []]
            pool = edges or list(simulation.net.edges)
            for step in range(start, end, stride):  # type: ignore[arg-type]
                def _flap(pool=pool, rng=rng):
                    edge = pool[rng.randrange(len(pool))]
                    hit = _sever_edges(routing, [edge], rng)
                    return {"action": "link_flap",
                            "edge": list(edge), "entries_hit": hit}
                add(step, _flap)
        elif event.action == "partition":
            cut = [tuple(e) for e in event.kwargs["edges"]]
            stride = max(1, spec.sim_steps_per_unit)
            for step in range(start, end, stride):  # type: ignore[arg-type]
                def _partition(cut=cut, rng=rng):
                    hit = _sever_edges(routing, cut, rng)
                    return {"action": "partition",
                            "edges": [list(e) for e in cut],
                            "entries_hit": hit}
                add(step, _partition)
        elif event.action == "crash":
            crash_intervals.append((start, end, event.kwargs["node"]))  # type: ignore[arg-type]

            def _crash(node=event.kwargs["node"], start=start, end=end):
                return {"action": "crash", "node": node,
                        "until_step": end}
            add(start, _crash)
        elif event.action == "flood":
            source = event.kwargs["source"]
            dest = event.kwargs["dest"]
            count = event.kwargs["count"]
            payload = event.kwargs["payload"]

            def _flood(source=source, dest=dest, count=count, payload=payload):
                for _ in range(count):
                    simulation.hl.submit(
                        source, payload, dest, step=simulation.sim.step_count
                    )
                return {"action": "flood", "source": source,
                        "dest": dest, "count": count}
            add(start, _flood)
        else:  # pragma: no cover - spec validation rejects these
            raise ConfigurationError(
                f"action {event.action!r} cannot lower to the simulator"
            )
    return applications, crash_intervals


def run_sim_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Compile and run one scenario on the simulator."""
    started = time.perf_counter()
    registry = MetricsRegistry()
    tracer = MessageTracer()
    simulation = simulation_from_spec(spec.sim_spec(), obs=registry, tracer=tracer)
    applications, crash_intervals = _lower_schedule(spec, simulation)
    if crash_intervals:
        simulation.sim.daemon = _CrashMaskDaemon(
            simulation.sim.daemon, crash_intervals
        )
    due_steps = sorted(applications)
    fault_events: List[Dict[str, Any]] = []
    next_due = 0  # index into due_steps

    def apply_batch(step_key: int) -> None:
        for thunk in applications[step_key]:
            detail = thunk()
            action = detail.pop("action")
            event_row = {"step": simulation.sim.step_count, **detail}
            fault_events.append({"action": action, **event_row})
            registry.counter("faults_injected_total", action=action).inc()
            tracer.record_fault(action, detail, step=simulation.sim.step_count)

    max_steps = int(spec.budgets["max_steps"])
    halted = False
    for _ in range(max_steps):
        if delivered_and_drained(simulation) and next_due >= len(due_steps):
            halted = True
            break
        while next_due < len(due_steps) and due_steps[next_due] <= simulation.sim.step_count:
            apply_batch(due_steps[next_due])
            next_due += 1
        report = simulation.step()
        if report.terminal:
            if simulation._fast_forward_workload():
                continue
            if next_due < len(due_steps):
                # The network idled before the next scheduled fault: skip
                # the dead time (the step clock cannot advance through a
                # terminal configuration) and fire the earliest batch now
                # — the chaos twin of ``_fast_forward_workload``.
                apply_batch(due_steps[next_due])
                next_due += 1
                continue
            break
    else:
        if delivered_and_drained(simulation) and next_due >= len(due_steps):
            halted = True

    elapsed = round(time.perf_counter() - started, 3)
    ledger = simulation.ledger
    metrics: Dict[str, Any] = {
        "steps": simulation.sim.step_count,
        "rounds": simulation.sim.round_count,
        "generated": ledger.generated_count,
        "delivered": ledger.valid_delivered_count,
        "invalid_delivered": ledger.invalid_delivery_count,
        "routing_correct": bool(simulation.routing.is_correct()),
        "duplicates": 0,  # a strict ledger raises on duplicate delivery
        "expected": spec.messages() + spec.flood_total(),
        "elapsed_s": elapsed,
        "faults_injected": len(fault_events),
    }
    failures = evaluate_pass(spec.pass_criteria, metrics)
    if not halted and failures:
        failures.append(
            f"budget: halt condition not reached within "
            f"{max_steps} steps"
        )
    obs_rows = registry.rows() + tracer.to_rows()
    return ScenarioResult(
        name=spec.name,
        target="simulate",
        protocol=spec.protocol,
        ok=not failures,
        failures=failures,
        metrics=metrics,
        fault_events=fault_events,
        obs_rows=obs_rows,
    )
