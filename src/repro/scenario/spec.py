"""Declarative scenario specs: one file, two targets.

A scenario spec extends the :mod:`repro.sim.spec` vocabulary with a timed
chaos schedule, a target selector, budgets and pass criteria.  It loads
from JSON or TOML (stdlib :mod:`tomllib`), validates strictly (unknown
keys anywhere are :class:`~repro.errors.ConfigurationError`), and
compiles to either a simulator run (:mod:`repro.scenario.simdriver`) or a
live cluster run (:mod:`repro.scenario.runtimedriver`).

Schema (TOML spelling; JSON is isomorphic)::

    name = "flapping-ring-soak"
    target = "simulate"            # or "runtime"; CLI --target overrides
    protocol = "ssmfp"             # registry name
    seed = 7
    repeat = 1                     # campaign repetitions (per-run seeds)

    [topology]
    name = "ring"
    kwargs = {n = 8}

    [workload]                     # shared vocabulary for both targets
    name = "uniform"               # uniform | hotspot (runtime) + the
    kwargs = {count = 60}          # sim-only: permutation | burst | ...

    [clock]                        # abstract units -> concrete clocks
    sim_steps_per_unit = 50
    runtime_s_per_unit = 0.25

    [[schedule]]                   # the chaos timeline (abstract units)
    at = 1.0
    until = 5.0
    action = "link_flap"
    period = 0.5
    down = 0.2

    [budgets]
    max_steps = 200000             # simulate
    wall_s = 30.0                  # runtime deadline / campaign guard

    [pass]
    deliver_all = true             # delivered == generated, none lost
    max_rounds = 0                 # 0 = no ceiling (simulate)
    max_wall_s = 0.0               # 0 = no ceiling

    [sim]                          # simulate-only extras (sim.spec keys)
    routing = {mode = "selfstab"}
    daemon = {name = "distributed"}

    [runtime]                      # runtime-only extras (ClusterSpec keys)
    transport = "local"
    netem = {loss = 0.05}

    [matrix]                       # campaign axes: dotted path -> values
    "protocol" = ["ssmfp", "ssmfp2"]
    "topology.kwargs.n" = [6, 10]
"""

from __future__ import annotations

import copy
import json
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.registry import resolve
from repro.errors import ConfigurationError
from repro.network.graph import Network
from repro.network.topologies import topology_by_name
from repro.scenario.actions import ACTIONS, ScheduleEvent, validate_schedule

_TOP_KEYS = frozenset(
    {
        "name", "label", "target", "protocol", "seed", "repeat",
        "topology", "workload", "clock", "schedule", "budgets", "pass",
        "sim", "runtime", "matrix",
    }
)
_TOPOLOGY_KEYS = frozenset({"name", "kwargs"})
_WORKLOAD_KEYS = frozenset({"name", "kwargs"})
_CLOCK_KEYS = frozenset({"sim_steps_per_unit", "runtime_s_per_unit"})
_BUDGET_KEYS = frozenset({"max_steps", "wall_s", "messages"})
_PASS_KEYS = frozenset(
    {"deliver_all", "max_duplicates", "max_steps", "max_rounds",
     "max_wall_s", "max_latency_p99_s"}
)
#: Simulate-only extras, passed through to :func:`repro.sim.spec`.
_SIM_KEYS = frozenset(
    {"routing", "garbage", "scramble_choice_queues", "daemon",
     "protocol_options", "ledger_strict"}
)
#: Runtime-only extras, passed through to :class:`ClusterSpec`.
_RUNTIME_KEYS = frozenset(
    {"transport", "procs", "window", "max_batch", "wire_version", "netem",
     "drain_grace", "tick", "port_base"}
)
#: Workloads with a shared meaning on both targets (the simulator accepts
#: more — validated per-target at compile time).
_SHARED_WORKLOADS = frozenset({"uniform", "hotspot"})
_SIM_ONLY_WORKLOADS = frozenset({"permutation", "burst", "single", "same_payload"})

TARGETS = ("simulate", "runtime")


def _reject_unknown(section: str, mapping: Any, allowed: frozenset) -> None:
    if not isinstance(mapping, dict):
        raise ConfigurationError(
            f"scenario section {section!r} must be an object, "
            f"got {type(mapping).__name__}"
        )
    unknown = sorted(set(mapping) - allowed)
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) {unknown} in scenario section {section!r}; "
            f"valid keys: {sorted(allowed)}"
        )


def load_scenario_file(path) -> Dict[str, Any]:
    """Read a scenario file (``.toml`` via :mod:`tomllib`, anything else
    as JSON) into a raw dict; readable errors, never a stack trace."""
    target = Path(path)
    if not target.exists():
        raise ConfigurationError(f"scenario file not found: {target}")
    try:
        if target.suffix.lower() == ".toml":
            with target.open("rb") as fh:
                return tomllib.load(fh)
        return json.loads(target.read_text(encoding="utf-8"))
    except tomllib.TOMLDecodeError as exc:
        raise ConfigurationError(f"{target}: invalid TOML: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{target}: invalid JSON: {exc}") from None


@dataclass
class ScenarioSpec:
    """One validated scenario: everything both compilers need."""

    name: str
    target: str
    protocol: str
    seed: int
    repeat: int
    topology: Dict[str, Any]
    workload: Dict[str, Any]
    sim_extras: Dict[str, Any]
    runtime_extras: Dict[str, Any]
    sim_steps_per_unit: int
    runtime_s_per_unit: float
    schedule: List[ScheduleEvent]
    budgets: Dict[str, Any]
    pass_criteria: Dict[str, Any]
    matrix: Dict[str, List[Any]] = field(default_factory=dict)
    label: Optional[str] = None

    # -- construction --------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        """Validate a raw spec dict into a :class:`ScenarioSpec`."""
        _reject_unknown("<top level>", data, _TOP_KEYS)

        target = str(data.get("target", "simulate"))
        if target not in TARGETS:
            raise ConfigurationError(
                f"target must be one of {list(TARGETS)}, got {target!r}"
            )
        protocol = str(data.get("protocol", "ssmfp"))
        resolve(protocol)  # unknown protocol names fail here, readably

        if "topology" not in data:
            raise ConfigurationError("scenario needs a 'topology' section")
        topology = data["topology"]
        _reject_unknown("topology", topology, _TOPOLOGY_KEYS)
        if "name" not in topology:
            raise ConfigurationError("scenario section 'topology' needs a 'name'")
        try:
            net = topology_by_name(
                topology["name"], **topology.get("kwargs", {})
            )
        except TypeError as exc:
            raise ConfigurationError(
                f"bad topology kwargs for {topology['name']!r}: {exc}"
            ) from None

        workload = data.get("workload", {"name": "uniform", "kwargs": {"count": 50}})
        _reject_unknown("workload", workload, _WORKLOAD_KEYS)
        wl_name = workload.get("name")
        if wl_name not in _SHARED_WORKLOADS | _SIM_ONLY_WORKLOADS:
            raise ConfigurationError(
                f"unknown workload {wl_name!r}; known: "
                f"{sorted(_SHARED_WORKLOADS | _SIM_ONLY_WORKLOADS)}"
            )
        wl_kwargs = dict(workload.get("kwargs", {}))
        if "seed" in wl_kwargs:
            raise ConfigurationError(
                "workload kwargs must not set 'seed' — the scenario 'seed' "
                "governs both targets (campaign repeats offset it per run)"
            )
        if target == "runtime":
            if wl_name not in _SHARED_WORKLOADS:
                raise ConfigurationError(
                    f"workload {wl_name!r} is simulate-only; the runtime "
                    f"target supports {sorted(_SHARED_WORKLOADS)}"
                )
            if wl_name == "hotspot" and int(wl_kwargs.get("dest", 0)) != 0:
                raise ConfigurationError(
                    "the runtime hotspot workload targets dest=0"
                )

        clock = data.get("clock", {})
        _reject_unknown("clock", clock, _CLOCK_KEYS)
        sim_spu = int(clock.get("sim_steps_per_unit", 50))
        runtime_spu = float(clock.get("runtime_s_per_unit", 0.25))
        if sim_spu < 1:
            raise ConfigurationError(
                f"sim_steps_per_unit must be >= 1, got {sim_spu}"
            )
        if runtime_spu <= 0:
            raise ConfigurationError(
                f"runtime_s_per_unit must be positive, got {runtime_spu}"
            )

        schedule = validate_schedule(data.get("schedule", []), net)
        for event in schedule:
            if target not in ACTIONS[event.action].targets:
                raise ConfigurationError(
                    f"schedule[{event.index}]: action {event.action!r} "
                    f"cannot lower to target {target!r} (supports "
                    f"{sorted(ACTIONS[event.action].targets)})"
                )

        budgets = dict(data.get("budgets", {}))
        _reject_unknown("budgets", budgets, _BUDGET_KEYS)
        budgets.setdefault("max_steps", 200_000)
        budgets.setdefault("wall_s", 30.0)
        if int(budgets["max_steps"]) < 1:
            raise ConfigurationError("budgets.max_steps must be >= 1")
        if float(budgets["wall_s"]) <= 0:
            raise ConfigurationError("budgets.wall_s must be positive")

        pass_criteria = dict(data.get("pass", {}))
        _reject_unknown("pass", pass_criteria, _PASS_KEYS)
        pass_criteria.setdefault("deliver_all", True)

        sim_extras = dict(data.get("sim", {}))
        _reject_unknown("sim", sim_extras, _SIM_KEYS)
        runtime_extras = dict(data.get("runtime", {}))
        _reject_unknown("runtime", runtime_extras, _RUNTIME_KEYS)
        if "netem" in runtime_extras and runtime_extras["netem"] is not None:
            # Validate eagerly: a typo'd netem knob must fail at parse
            # time, not 30 s into a soak.
            from repro.runtime.netem import NetemConfig

            NetemConfig.from_spec(runtime_extras["netem"])

        matrix = data.get("matrix", {})
        if not isinstance(matrix, dict):
            raise ConfigurationError("'matrix' must map axis paths to lists")
        for path, values in matrix.items():
            if not isinstance(values, list) or not values:
                raise ConfigurationError(
                    f"matrix axis {path!r} must be a non-empty list"
                )

        repeat = int(data.get("repeat", 1))
        if repeat < 1:
            raise ConfigurationError(f"repeat must be >= 1, got {repeat}")

        return cls(
            name=str(data.get("name", "scenario")),
            target=target,
            protocol=protocol,
            seed=int(data.get("seed", 0)),
            repeat=repeat,
            topology={
                "name": topology["name"],
                "kwargs": dict(topology.get("kwargs", {})),
            },
            workload={"name": wl_name, "kwargs": wl_kwargs},
            sim_extras=sim_extras,
            runtime_extras=runtime_extras,
            sim_steps_per_unit=sim_spu,
            runtime_s_per_unit=runtime_spu,
            schedule=schedule,
            budgets=budgets,
            pass_criteria=pass_criteria,
            matrix={str(k): list(v) for k, v in matrix.items()},
            label=data.get("label"),
        )

    @classmethod
    def from_file(cls, path, target: Optional[str] = None) -> "ScenarioSpec":
        """Load + validate a scenario file; ``target`` overrides the
        spec's own (the acceptance path: one file, both targets)."""
        data = load_scenario_file(path)
        if target is not None:
            if not isinstance(data, dict):
                raise ConfigurationError(
                    f"{path}: scenario file must contain an object"
                )
            data = {**data, "target": target}
        if not isinstance(data, dict):
            raise ConfigurationError(f"{path}: scenario file must contain an object")
        return cls.from_dict(data)

    # -- canonical form ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical spec dict: parsing it again is a fixpoint (the
        round-trip property the tests pin)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "target": self.target,
            "protocol": self.protocol,
            "seed": self.seed,
            "repeat": self.repeat,
            "topology": copy.deepcopy(self.topology),
            "workload": copy.deepcopy(self.workload),
            "clock": {
                "sim_steps_per_unit": self.sim_steps_per_unit,
                "runtime_s_per_unit": self.runtime_s_per_unit,
            },
            "schedule": [event.to_dict() for event in self.schedule],
            "budgets": copy.deepcopy(self.budgets),
            "pass": copy.deepcopy(self.pass_criteria),
            "sim": copy.deepcopy(self.sim_extras),
            "runtime": copy.deepcopy(self.runtime_extras),
        }
        if self.matrix:
            out["matrix"] = copy.deepcopy(self.matrix)
        if self.label is not None:
            out["label"] = self.label
        return out

    # -- derived views -------------------------------------------------------

    def build_network(self) -> Network:
        return topology_by_name(
            self.topology["name"], **self.topology.get("kwargs", {})
        )

    def messages(self) -> int:
        """Workload size on either target (floods counted separately)."""
        net = self.build_network()
        name = self.workload["name"]
        kwargs = self.workload["kwargs"]
        if name == "uniform":
            return int(kwargs.get("count", 50))
        if name == "hotspot":
            return int(kwargs.get("per_source", 2)) * max(net.n - 1, 1)
        if name == "permutation":
            return net.n
        if name == "burst":
            return int(kwargs.get("bursts", 3)) * int(kwargs.get("burst_size", 5))
        if name == "single":
            return 1
        if name == "same_payload":
            return int(kwargs.get("count", 10))
        raise ConfigurationError(f"unknown workload {name!r}")

    def steps_at(self, units: float) -> int:
        """Lower an abstract time to the simulator step clock."""
        return max(0, round(units * self.sim_steps_per_unit))

    def seconds_at(self, units: float) -> float:
        """Lower an abstract time to runtime seconds from start."""
        return max(0.0, units * self.runtime_s_per_unit)

    def sim_spec(self) -> Dict[str, Any]:
        """The :mod:`repro.sim.spec` dict this scenario's base system
        corresponds to (no schedule — the driver applies that live)."""
        spec: Dict[str, Any] = {
            "topology": copy.deepcopy(self.topology),
            "workload": {
                "name": self.workload["name"],
                "kwargs": dict(self.workload["kwargs"]),
            },
            "protocol": self.protocol,
            "seed": self.seed,
        }
        for key in ("routing", "garbage", "scramble_choice_queues",
                    "daemon", "protocol_options", "ledger_strict"):
            if key in self.sim_extras:
                spec[key] = copy.deepcopy(self.sim_extras[key])
        return spec

    def flood_total(self) -> int:
        """Messages scheduled ``flood`` events add on top of the workload."""
        return sum(
            int(event.kwargs["count"])
            for event in self.schedule
            if event.action == "flood"
        )

    def smoked(self) -> "ScenarioSpec":
        """A budget-capped copy for CI smoke runs: fewer messages, tight
        step/wall budgets, single repetition, small floods.  The schedule
        and its timing are untouched — smoke mode shrinks cost, not
        chaos."""
        data = self.to_dict()
        wl = data["workload"]
        if wl["name"] == "uniform":
            wl["kwargs"]["count"] = min(int(wl["kwargs"].get("count", 50)), 24)
        elif wl["name"] == "hotspot":
            wl["kwargs"]["per_source"] = min(
                int(wl["kwargs"].get("per_source", 2)), 2
            )
        data["budgets"]["max_steps"] = min(
            int(data["budgets"]["max_steps"]), 60_000
        )
        data["budgets"]["wall_s"] = min(float(data["budgets"]["wall_s"]), 10.0)
        data["repeat"] = 1
        for event in data["schedule"]:
            if event["action"] == "flood":
                event["count"] = min(int(event["count"]), 6)
        return ScenarioSpec.from_dict(data)
