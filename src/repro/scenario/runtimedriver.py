"""Lowering a scenario onto the live-runtime wall clock.

The schedule's abstract time units become seconds from run start
(``clock.runtime_s_per_unit``); each event becomes one chaos dict on
:attr:`~repro.runtime.cluster.ClusterSpec.chaos`, driven by a per-event
asyncio task inside the cluster (:mod:`repro.runtime.cluster`):

* ``link_flap`` / ``partition`` — :class:`NetemTransport` edges forced
  down and back up (the transport logs every transition, mono-stamped);
* ``crash`` — :meth:`RuntimeNode.pause`/``resume`` (fail-pause: lane
  state survives, peers retransmit into the frozen inbox);
* ``flood`` — live ``submit`` calls on the source node (counted into the
  conformance oracle's expected-generated total);
* ``netem`` — :meth:`NetemTransport.reconfigure` for the window.

The conformance oracle then re-verifies exactly-once + per-pair FIFO
delivery over the whole faulted run — that verdict *is* the scenario's
primary pass criterion.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.scenario.result import ScenarioResult, evaluate_pass
from repro.scenario.spec import ScenarioSpec


def lower_runtime_schedule(spec: ScenarioSpec) -> List[Dict[str, Any]]:
    """The schedule as wall-clock chaos dicts for ``ClusterSpec.chaos``."""
    chaos: List[Dict[str, Any]] = []
    for event in spec.schedule:
        lowered: Dict[str, Any] = {
            "action": event.action,
            "t0": round(spec.seconds_at(event.at), 6),
        }
        if event.until is not None:
            lowered["t1"] = round(spec.seconds_at(event.until), 6)
        if event.action == "link_flap":
            lowered["period"] = spec.seconds_at(event.kwargs["period"])
            lowered["down"] = spec.seconds_at(event.kwargs["down"])
            if event.kwargs.get("edges") is not None:
                lowered["edges"] = [list(e) for e in event.kwargs["edges"]]
            lowered["seed"] = spec.seed * 1_000_003 + event.index
        elif event.action == "partition":
            lowered["edges"] = [list(e) for e in event.kwargs["edges"]]
        elif event.action == "crash":
            lowered["node"] = event.kwargs["node"]
        elif event.action == "flood":
            lowered.update(
                source=event.kwargs["source"],
                dest=event.kwargs["dest"],
                count=event.kwargs["count"],
                payload=event.kwargs["payload"],
            )
        elif event.action == "netem":
            lowered["config"] = dict(event.kwargs)
        else:  # pragma: no cover - spec validation rejects these
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"action {event.action!r} cannot lower to the runtime"
            )
        chaos.append(lowered)
    return chaos


def build_cluster_spec(spec: ScenarioSpec):
    """The :class:`~repro.runtime.cluster.ClusterSpec` for this scenario."""
    from repro.runtime.cluster import ClusterSpec

    extras = spec.runtime_extras
    return ClusterSpec(
        topology=dict(spec.topology),
        messages=spec.messages(),
        seed=spec.seed,
        protocol=spec.protocol,
        transport=str(extras.get("transport", "local")),
        procs=int(extras.get("procs", 1)),
        workload=spec.workload["name"],
        netem=extras.get("netem"),
        deadline=float(spec.budgets["wall_s"]),
        drain_grace=float(extras.get("drain_grace", 1.0)),
        port_base=int(extras.get("port_base", 0)),
        tick=float(extras.get("tick", 0.005)),
        window=int(extras.get("window", 32)),
        max_batch=int(extras.get("max_batch", 64)),
        wire_version=int(extras.get("wire_version", 2)),
        chaos=lower_runtime_schedule(spec),
    )


def run_runtime_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Compile and run one scenario on the live runtime."""
    from repro.runtime.cluster import run_cluster

    cluster_spec = build_cluster_spec(spec)
    result = run_cluster(cluster_spec)
    report = result.report

    latencies = sorted(
        _message_latencies(result.events)
    )
    p99 = (
        latencies[min(len(latencies) - 1, int(0.99 * len(latencies)))]
        if latencies
        else None
    )
    metrics: Dict[str, Any] = {
        "generated": report.generated,
        "delivered": report.delivered,
        "duplicates": report.duplicates,
        "expected": spec.messages() + spec.flood_total(),
        "elapsed_s": round(result.elapsed_s, 3),
        "faults_injected": len(result.fault_events),
    }
    if p99 is not None:
        metrics["latency_p99_s"] = round(p99, 4)
    failures = evaluate_pass(spec.pass_criteria, metrics)
    for violation in report.violations + report.sequence_violations:
        failures.append(f"conformance: {violation}")
    for error in result.errors:
        failures.append(f"runtime: {error}")
    if result.interrupted:
        failures.append("runtime: interrupted")
    return ScenarioResult(
        name=spec.name,
        target="runtime",
        protocol=spec.protocol,
        ok=not failures,
        failures=failures,
        metrics=metrics,
        fault_events=list(result.fault_events),
        obs_rows=result.obs_rows(),
    )


def _message_latencies(events) -> List[float]:
    """Generate→deliver durations in the monotonic clock domain."""
    generated: Dict[int, float] = {}
    out: List[float] = []
    for event in events:
        if event.kind == "generated" and event.mono:
            generated[event.uid] = event.mono
        elif event.kind == "delivered" and event.mono:
            start = generated.get(event.uid)
            if start is not None:
                out.append(max(0.0, event.mono - start))
    return out
