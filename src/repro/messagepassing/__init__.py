"""Message-passing model substrate and the SSMFP port (§4 future work).

The paper closes with: "it will be interesting to carry our protocol in the
message passing model (a more realistic model of distributed system)...
The problem to carry automatically a protocol from the state model to the
message passing model is still open."

This package provides that exploration:

* :mod:`~repro.messagepassing.engine` — an asynchronous message-passing
  simulator: per-directed-edge FIFO channels, an adversarial seeded
  scheduler choosing which channel delivers or which node acts next;
* :mod:`~repro.messagepassing.forwarding` — a port of the two-buffer
  forwarding scheme: each state-model hop becomes an explicit
  OFFER/ACCEPT/RELEASE three-way handshake (the shared-memory reads R3/R4
  and R2's wait-for-erase guard translate into these messages).

From *clean* initial configurations the port preserves exactly-once
delivery under arbitrary asynchrony (tested).  From *corrupted* initial
configurations — garbage already sitting in channels — it does **not**
(also tested): a forged ACCEPT destroys an original, a forged OFFER
injects phantom traffic.  That gap is exactly the open problem the paper
names; the tests make it concrete.

Channels need not be reliable FIFO: :class:`ChannelFaults` turns the
scheduler into a lossy/duplicating/reordering adversary, under which the
naive port demonstrably breaks and :class:`HardenedMPForwardingNode`
(sequence numbers + retransmission + idempotent acknowledgements — the
same hop discipline :mod:`repro.runtime` runs over real sockets) stays
exactly-once.
"""

from repro.messagepassing.engine import (
    Channel,
    ChannelFaults,
    LocalAction,
    MessagePassingSimulator,
    MPNode,
)
from repro.messagepassing.forwarding import (
    HardenedMPForwardingNode,
    MPForwardingNode,
    build_mp_network,
)

__all__ = [
    "Channel",
    "ChannelFaults",
    "LocalAction",
    "MessagePassingSimulator",
    "MPNode",
    "HardenedMPForwardingNode",
    "MPForwardingNode",
    "build_mp_network",
]
