"""The two-buffer forwarding scheme ported to message passing.

Translation of the state-model rules into explicit messages (static correct
routing; the port explores the *model* translation the paper's future work
asks about, not re-stabilization):

=================  ==========================================================
state model        message passing
=================  ==========================================================
R3 (receiver       sender emits ``OFFER`` to its next hop (at most one
copies bufE_s)     outstanding per destination — stop-and-wait); receiver
                   queues offers, and a local *accept* action pops the FIFO
                   head into ``bufR`` and answers ``ACCEPT``
R4 (sender         on a matching ``ACCEPT`` the sender erases ``bufE`` and
erases)            emits ``RELEASE``
R2's guard         the receiver commits ``bufR -> bufE`` only after the
(wait for the      ``RELEASE`` arrives (generated messages are born
source's erase)    released)
R6                 a local *consume* action at the destination
=================  ==========================================================

Colors are unnecessary in this regime: FIFO channels plus one outstanding
offer per (hop, destination) make every ACCEPT/RELEASE unambiguous.  That
is exactly what breaks from an arbitrary initial configuration — a forged
ACCEPT already sitting in a channel erases an original that was never
copied, a forged OFFER injects phantom traffic — and why the
snap-stabilizing port remains the paper's open problem (the tests
demonstrate both failures).

Two ports live here:

* :class:`MPForwardingNode` — the *naive* port above, correct only over
  reliable FIFO channels (a duplicated OFFER double-delivers, a lost
  ACCEPT deadlocks a lane).
* :class:`HardenedMPForwardingNode` — the same scheme hardened for
  :class:`~repro.messagepassing.engine.ChannelFaults`: every hop carries a
  per-(sender, receiver, destination) lane sequence number, senders keep
  retransmitting until acknowledged (a ``xmit`` local action the
  adversarial scheduler plays as the "timeout"), receivers accept only the
  expected sequence number and re-acknowledge its predecessor
  idempotently, and the erase is confirmed with a ``RELEASE``/``RACK``
  second handshake.  This is the same discipline
  :mod:`repro.runtime.node` speaks over real sockets, so the discrete
  adversary here and the live netem adversary exercise one protocol.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.ledger import DeliveryLedger
from repro.messagepassing.engine import (
    ChannelFaults,
    LocalAction,
    MessagePassingSimulator,
    MPNode,
)
from repro.network.graph import Network
from repro.routing.table import RoutingService
from repro.statemodel.message import Message
from repro.types import DestId, ProcId

#: Wire message kinds (RACK is used by the hardened port only).
OFFER, ACCEPT, RELEASE, RACK = "OFFER", "ACCEPT", "RELEASE", "RACK"


@dataclass
class StoredRecord:
    """One stored message plus hidden tracking (uid preserved by hops)."""

    payload: Any
    uid: int
    valid: bool
    src: ProcId  # who handed it to us (self for generated)
    released: bool  # the upstream copy has been erased; commit allowed
    seq: int = -1  # lane sequence number it arrived under (hardened port)

    def as_message(self, dest: DestId) -> Message:
        """Bridge to the ledger's message shape."""
        return Message(
            payload=self.payload, last=self.src, color=0, dest=dest,
            uid=self.uid, valid=self.valid,
        )


class MPForwardingNode(MPNode):
    """One processor of the message-passing port."""

    def __init__(
        self,
        pid: ProcId,
        net: Network,
        routing: RoutingService,
        ledger: DeliveryLedger,
    ) -> None:
        super().__init__(pid)
        self.net = net
        self.routing = routing
        self.ledger = ledger
        n = net.n
        self.buf_r: List[Optional[StoredRecord]] = [None] * n
        self.buf_e: List[Optional[StoredRecord]] = [None] * n
        #: FIFO of received, not-yet-accepted offers per destination.
        self.offers: List[Deque[Tuple[ProcId, Any, int, bool]]] = [
            deque() for _ in range(n)
        ]
        #: Neighbor we await an ACCEPT from, per destination.
        self.outstanding: List[Optional[ProcId]] = [None] * n
        self.outbox: Deque[Tuple[Any, DestId]] = deque()
        self._uid_source = None  # set by build_mp_network

    # -- application interface ---------------------------------------------------

    def submit(self, payload: Any, dest: DestId) -> None:
        """Queue an application send."""
        self.outbox.append((payload, dest))

    # -- wire handlers -----------------------------------------------------------

    def on_message(self, frm: ProcId, payload: Any) -> None:
        kind, d, data = payload[0], payload[1], payload[2:]
        if kind == OFFER:
            body, uid, valid = data
            self.offers[d].append((frm, body, uid, valid))
        elif kind == ACCEPT:
            # Matches iff we are actually awaiting frm for d (stop-and-wait
            # makes this unambiguous from clean starts; a forged ACCEPT
            # passing this guard is the open-problem failure mode).
            if self.outstanding[d] == frm and self.buf_e[d] is not None:
                erased = self.buf_e[d]
                self.buf_e[d] = None
                self.outstanding[d] = None
                self.send(frm, (RELEASE, d))
                if erased.valid and erased.uid < 0:
                    pass  # planted garbage: nothing to account
        elif kind == RELEASE:
            rec = self.buf_r[d]
            if rec is not None and not rec.released and rec.src == frm:
                rec.released = True
        else:  # unknown kinds are dropped (type-correct garbage tolerance)
            return

    # -- local actions -----------------------------------------------------------

    def local_actions(self) -> List[LocalAction]:
        actions: List[LocalAction] = []
        n = self.net.n
        # Generation of the next application message.
        if self.outbox:
            _, dest = self.outbox[0]
            if self.buf_r[dest] is None:
                actions.append(LocalAction(self.pid, "generate", self._generate))
        for d in range(n):
            if self.buf_r[d] is None and self.offers[d]:
                actions.append(
                    LocalAction(self.pid, f"accept({d})", self._make_accept(d))
                )
            rec = self.buf_r[d]
            if rec is not None and rec.released and self.buf_e[d] is None:
                actions.append(
                    LocalAction(self.pid, f"commit({d})", self._make_commit(d))
                )
            if (
                self.buf_e[d] is not None
                and d != self.pid
                and self.outstanding[d] is None
            ):
                actions.append(
                    LocalAction(self.pid, f"offer({d})", self._make_offer(d))
                )
            if d == self.pid and self.buf_e[d] is not None:
                actions.append(
                    LocalAction(self.pid, "consume", self._make_consume(d))
                )
        return actions

    def _generate(self) -> None:
        payload, dest = self.outbox.popleft()
        uid = self._uid_source()
        rec = StoredRecord(payload, uid, True, self.pid, released=True)
        self.buf_r[dest] = rec
        self.ledger.record_generated(
            Message(
                payload=payload, last=self.pid, color=0, dest=dest,
                uid=uid, valid=True, source=self.pid,
            )
        )

    def _make_accept(self, d: DestId):
        def effect() -> None:
            if self.buf_r[d] is not None or not self.offers[d]:
                return
            frm, body, uid, valid = self.offers[d].popleft()
            self.buf_r[d] = StoredRecord(body, uid, valid, frm, released=False)
            self.send(frm, (ACCEPT, d))

        return effect

    def _make_commit(self, d: DestId):
        def effect() -> None:
            rec = self.buf_r[d]
            if rec is None or not rec.released or self.buf_e[d] is not None:
                return
            self.buf_e[d] = rec
            self.buf_r[d] = None

        return effect

    def _make_offer(self, d: DestId):
        def effect() -> None:
            rec = self.buf_e[d]
            if rec is None or self.outstanding[d] is not None:
                return
            nh = self.routing.next_hop(self.pid, d)
            self.outstanding[d] = nh
            self.send(nh, (OFFER, d, rec.payload, rec.uid, rec.valid))

        return effect

    def _make_consume(self, d: DestId):
        def effect() -> None:
            rec = self.buf_e[d]
            if rec is None:
                return
            self.buf_e[d] = None
            self.ledger.record_delivery(self.pid, rec.as_message(d), step=0)

        return effect

    # -- introspection -----------------------------------------------------------

    def is_empty(self) -> bool:
        """True iff no buffer or offer queue holds anything."""
        return (
            all(r is None for r in self.buf_r)
            and all(e is None for e in self.buf_e)
            and all(not q for q in self.offers)
            and not self.outbox
        )


class HardenedMPForwardingNode(MPForwardingNode):
    """The port hardened for lossy/duplicating/reordering channels.

    Each directed hop lane (sender, receiver, destination) carries a
    monotonically increasing sequence number.  The receiver accepts an
    OFFER only at the expected sequence number (and only when ``bufR`` is
    free — otherwise it stays silent and the sender's retransmission
    retries later), re-ACCEPTs the immediately preceding number
    idempotently (the ACCEPT may have been lost), and drops anything
    older or newer.  The sender retransmits its outstanding frame via the
    ``xmit`` local action until acknowledged; the erase is confirmed with
    RELEASE/RACK under the same numbering, so a duplicated or reordered
    frame can never erase or double-commit a record.  One live copy per
    hop — R2's guard — survives arbitrary ChannelFaults.
    """

    def __init__(
        self,
        pid: ProcId,
        net: Network,
        routing: RoutingService,
        ledger: DeliveryLedger,
    ) -> None:
        super().__init__(pid, net, routing, ledger)
        #: Next sequence number per outgoing lane (neighbor, destination).
        self.out_seq: Dict[Tuple[ProcId, DestId], int] = {}
        #: Expected sequence number per incoming lane (neighbor, destination).
        self.in_expected: Dict[Tuple[ProcId, DestId], int] = {}
        #: (phase, neighbor, seq) awaiting ACCEPT ("offer") or RACK ("release").
        self.outstanding: List[Optional[Tuple[str, ProcId, int]]] = [None] * net.n
        self.retransmissions = 0
        self.dup_offers_reacked = 0
        self.stale_frames_dropped = 0

    # -- wire handlers -----------------------------------------------------------

    def on_message(self, frm: ProcId, payload: Any) -> None:
        kind, d = payload[0], payload[1]
        if kind == OFFER:
            _, _, seq, body, uid, valid = payload
            expected = self.in_expected.get((frm, d), 1)
            if seq == expected:
                if self.buf_r[d] is None:
                    self.buf_r[d] = StoredRecord(
                        body, uid, valid, frm, released=False, seq=seq
                    )
                    self.in_expected[(frm, d)] = expected + 1
                    self.send(frm, (ACCEPT, d, seq))
                # bufR busy: stay silent; the sender's xmit retries later.
            elif seq == expected - 1:
                # Already accepted; the ACCEPT must have been lost.
                self.dup_offers_reacked += 1
                self.send(frm, (ACCEPT, d, seq))
            else:
                self.stale_frames_dropped += 1
        elif kind == ACCEPT:
            seq = payload[2]
            out = self.outstanding[d]
            if (
                out is not None
                and out[0] == "offer"
                and out[1] == frm
                and out[2] == seq
                and self.buf_e[d] is not None
            ):
                self.buf_e[d] = None
                self.outstanding[d] = ("release", frm, seq)
                self.send(frm, (RELEASE, d, seq))
            else:
                self.stale_frames_dropped += 1
        elif kind == RELEASE:
            seq = payload[2]
            if seq < self.in_expected.get((frm, d), 1):
                # A sequence number we really accepted: RACK idempotently,
                # and mark the record released if it is still the one held.
                rec = self.buf_r[d]
                if (
                    rec is not None
                    and not rec.released
                    and rec.src == frm
                    and rec.seq == seq
                ):
                    rec.released = True
                self.send(frm, (RACK, d, seq))
            else:
                self.stale_frames_dropped += 1
        elif kind == RACK:
            seq = payload[2]
            out = self.outstanding[d]
            if (
                out is not None
                and out[0] == "release"
                and out[1] == frm
                and out[2] == seq
            ):
                self.outstanding[d] = None
            else:
                self.stale_frames_dropped += 1
        else:  # unknown kinds are dropped (type-correct garbage tolerance)
            return

    # -- local actions -----------------------------------------------------------

    def local_actions(self) -> List[LocalAction]:
        actions = super().local_actions()
        for d in range(self.net.n):
            if self.outstanding[d] is not None:
                actions.append(
                    LocalAction(self.pid, f"xmit({d})", self._make_xmit(d))
                )
        return actions

    def _make_offer(self, d: DestId):
        def effect() -> None:
            rec = self.buf_e[d]
            if rec is None or self.outstanding[d] is not None:
                return
            nh = self.routing.next_hop(self.pid, d)
            seq = self.out_seq.get((nh, d), 0) + 1
            self.out_seq[(nh, d)] = seq
            self.outstanding[d] = ("offer", nh, seq)
            self.send(nh, (OFFER, d, seq, rec.payload, rec.uid, rec.valid))

        return effect

    def _make_xmit(self, d: DestId):
        """Retransmit the outstanding frame for ``d`` (the scheduler plays
        the timeout — enabled whenever an acknowledgement is pending)."""

        def effect() -> None:
            out = self.outstanding[d]
            if out is None:
                return
            phase, nbr, seq = out
            if phase == "offer":
                rec = self.buf_e[d]
                if rec is None:
                    return
                self.send(nbr, (OFFER, d, seq, rec.payload, rec.uid, rec.valid))
            else:
                self.send(nbr, (RELEASE, d, seq))
            self.retransmissions += 1

        return effect


def build_mp_network(
    net: Network,
    routing: RoutingService,
    seed: int = 0,
    ledger: Optional[DeliveryLedger] = None,
    hardened: bool = False,
    faults: Optional[ChannelFaults] = None,
) -> Tuple[MessagePassingSimulator, List[MPForwardingNode], DeliveryLedger]:
    """Assemble the message-passing port over a network.

    ``hardened=True`` builds :class:`HardenedMPForwardingNode` processors;
    ``faults`` configures the channel adversary of the simulator.
    """
    ledger = ledger if ledger is not None else DeliveryLedger()
    node_cls = HardenedMPForwardingNode if hardened else MPForwardingNode
    nodes = [node_cls(p, net, routing, ledger) for p in net.processors()]
    counter = {"next": 1}

    def next_uid() -> int:
        uid = counter["next"]
        counter["next"] += 1
        return uid

    for node in nodes:
        node._uid_source = next_uid
    sim = MessagePassingSimulator(net, nodes, seed=seed, faults=faults)
    return sim, nodes, ledger
