"""An asynchronous message-passing simulator.

Model: nodes connected by one FIFO channel per directed edge.  An
adversarial (seeded) scheduler repeatedly picks either

* a nonempty channel, delivering its head to the receiver's
  ``on_message``, or
* an enabled *local action* of some node (generation, buffer commits,
  timeouts — whatever the node protocol exposes).

Handlers send by calling :meth:`MPNode.send`; sends are enqueued on the
outgoing channel (asynchrony: delivery happens whenever the scheduler gets
around to it).  Channels default to reliable FIFO — the weakest
assumptions under which the fault-free port works — but the interesting
adversary is weaker still: :class:`ChannelFaults` makes delivery *lossy*
(the head is consumed but never handed over), *duplicating* (the head is
handed over and a copy re-enqueued at the tail) and/or *reordering* (a
random queue position is delivered instead of the head), all driven by the
simulator's seeded RNG.  The naive port breaks under these (see the tests);
the hardened port of :mod:`repro.messagepassing.forwarding` adds sequence
numbers, retransmission and idempotent acknowledgements — the same
discipline :mod:`repro.runtime.node` uses over real sockets — and stays
exactly-once.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationLimitExceeded
from repro.network.graph import Network
from repro.types import ProcId


@dataclass
class LocalAction:
    """One enabled local action of a node: a label plus a thunk."""

    node: ProcId
    label: str
    effect: Callable[[], None]


@dataclass(frozen=True)
class ChannelFaults:
    """Per-delivery fault probabilities (the channel adversary).

    Applied when the scheduler picks a delivery event: with probability
    ``reorder`` a random queue position is delivered instead of the FIFO
    head; with probability ``loss`` the chosen message is consumed but not
    delivered; with probability ``dup`` a copy of the delivered message is
    re-enqueued at the tail (to be delivered again later).
    """

    loss: float = 0.0
    dup: float = 0.0
    reorder: float = 0.0

    def __post_init__(self) -> None:
        for name in ("loss", "dup", "reorder"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"fault probability {name}={value} outside [0, 1]"
                )

    def is_reliable_fifo(self) -> bool:
        """True iff this configuration never perturbs a delivery."""
        return self.loss == 0.0 and self.dup == 0.0 and self.reorder == 0.0


class Channel:
    """A FIFO channel for one directed edge."""

    __slots__ = ("src", "dst", "queue")

    def __init__(self, src: ProcId, dst: ProcId) -> None:
        self.src = src
        self.dst = dst
        self.queue: Deque[Any] = deque()

    def __len__(self) -> int:
        return len(self.queue)

    def __repr__(self) -> str:
        return f"Channel({self.src}->{self.dst}, {len(self.queue)} queued)"


class MPNode(ABC):
    """Base class for message-passing protocol nodes.

    Subclasses implement :meth:`on_message` and :meth:`local_actions`;
    the simulator wires :attr:`_send` before the first event.
    """

    def __init__(self, pid: ProcId) -> None:
        self.pid = pid
        self._send: Optional[Callable[[ProcId, ProcId, Any], None]] = None

    def send(self, to: ProcId, payload: Any) -> None:
        """Enqueue ``payload`` on the channel to neighbor ``to``."""
        if self._send is None:
            raise ConfigurationError("node is not attached to a simulator")
        self._send(self.pid, to, payload)

    @abstractmethod
    def on_message(self, frm: ProcId, payload: Any) -> None:
        """Handle one delivered message."""

    @abstractmethod
    def local_actions(self) -> List[LocalAction]:
        """Currently enabled local actions (may be empty)."""


class MessagePassingSimulator:
    """Drives nodes and channels under an adversarial seeded scheduler."""

    def __init__(
        self,
        net: Network,
        nodes: List[MPNode],
        seed: int = 0,
        faults: Optional[ChannelFaults] = None,
    ) -> None:
        if len(nodes) != net.n:
            raise ConfigurationError(
                f"need one node per processor: {len(nodes)} != {net.n}"
            )
        self.net = net
        self.nodes = nodes
        self._rng = random.Random(seed)
        self.faults = faults or ChannelFaults()
        self.channels: Dict[Tuple[ProcId, ProcId], Channel] = {}
        for u, v in net.edges:
            self.channels[(u, v)] = Channel(u, v)
            self.channels[(v, u)] = Channel(v, u)
        for node in nodes:
            node._send = self._enqueue
        self.events = 0
        self.delivered_messages = 0
        self.lost_messages = 0
        self.duplicated_messages = 0
        self.reordered_messages = 0

    # -- plumbing ---------------------------------------------------------------

    def _enqueue(self, frm: ProcId, to: ProcId, payload: Any) -> None:
        try:
            self.channels[(frm, to)].queue.append(payload)
        except KeyError:
            raise ConfigurationError(
                f"no channel {frm} -> {to} (not an edge)"
            ) from None

    def inject(self, frm: ProcId, to: ProcId, payload: Any) -> None:
        """Plant a message directly into a channel — the corrupted
        initial-configuration adversary of the open-problem tests."""
        self._enqueue(frm, to, payload)

    def in_flight(self) -> int:
        """Messages currently queued on any channel."""
        return sum(len(c) for c in self.channels.values())

    # -- scheduling ------------------------------------------------------------

    def _choices(self) -> List[Tuple[str, Any]]:
        options: List[Tuple[str, Any]] = [
            ("deliver", c) for c in self.channels.values() if c.queue
        ]
        for node in self.nodes:
            for action in node.local_actions():
                options.append(("local", action))
        return options

    def step(self) -> bool:
        """One scheduler event; False if nothing is enabled (quiescent)."""
        options = self._choices()
        if not options:
            return False
        kind, chosen = self._rng.choice(options)
        if kind == "deliver":
            self._deliver(chosen)
        else:
            chosen.effect()
        self.events += 1
        return True

    def _deliver(self, channel: Channel) -> None:
        """Deliver one message off a channel, through the fault model."""
        faults = self.faults
        rng = self._rng
        queue = channel.queue
        if faults.reorder and len(queue) > 1 and rng.random() < faults.reorder:
            index = rng.randrange(1, len(queue))
            payload = queue[index]
            del queue[index]
            self.reordered_messages += 1
        else:
            payload = queue.popleft()
        if faults.loss and rng.random() < faults.loss:
            self.lost_messages += 1
            return
        if faults.dup and rng.random() < faults.dup:
            queue.append(payload)
            self.duplicated_messages += 1
        self.delivered_messages += 1
        self.nodes[channel.dst].on_message(channel.src, payload)

    def run(
        self,
        max_events: int,
        halt: Optional[Callable[["MessagePassingSimulator"], bool]] = None,
        raise_on_limit: bool = True,
    ) -> bool:
        """Run until quiescent, halted, or out of events.  Returns True if
        halted/quiesced within budget."""
        for _ in range(max_events):
            if halt is not None and halt(self):
                return True
            if not self.step():
                return True
        if halt is not None and halt(self):
            return True
        if raise_on_limit:
            raise SimulationLimitExceeded(
                f"no quiescence within {max_events} events; "
                f"{self.in_flight()} messages in flight",
                steps=self.events,
                rounds=0,
            )
        return False
