"""Daemons: the adversarial schedulers of the state model.

A daemon receives, each step, the map of enabled processors to their enabled
actions and returns a nonempty selection assigning one action to each chosen
processor (phase (ii) of the paper's atomic step).  The engine validates the
selection, so a buggy daemon fails loudly (:class:`~repro.errors.ScheduleError`).

Fairness notes
--------------
* :class:`SynchronousDaemon` selects every enabled processor — weakly fair.
* :class:`RoundRobinDaemon` is a deterministic *weakly fair* central daemon:
  it serves enabled processors in cyclic identity order, so a continuously
  enabled processor is chosen within n steps.
* The random daemons are weakly fair with probability 1, which is the right
  notion for statistical reproduction of worst-case bounds.
* :class:`AdversarialScriptDaemon` replays an explicit schedule — used to
  reproduce the paper's Figure 3 configuration by configuration.  A script
  can be *unfair*.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ScheduleError
from repro.statemodel.action import Action
from repro.types import ProcId

#: The per-step input to a daemon: enabled processors and their actions.
EnabledMap = Dict[ProcId, List[Action]]

#: The per-step output: chosen processors, one action each.
Selection = Dict[ProcId, Action]


class Daemon(ABC):
    """Base class for daemons."""

    @abstractmethod
    def select(self, enabled: EnabledMap, step: int) -> Selection:
        """Choose a nonempty subset of enabled processors and one enabled
        action for each.  ``enabled`` is never empty."""

    def reset(self) -> None:
        """Forget scheduling state (used when reusing a daemon across
        executions).  Default: nothing."""


class SynchronousDaemon(Daemon):
    """Selects every enabled processor each step (fully synchronous).

    Within a processor, picks the first enabled action (protocols list their
    actions in rule order, so this is the lowest-numbered enabled rule).
    """

    def select(self, enabled: EnabledMap, step: int) -> Selection:
        return {pid: actions[0] for pid, actions in enabled.items()}


class CentralRandomDaemon(Daemon):
    """Selects exactly one enabled processor uniformly at random, and one of
    its enabled actions uniformly at random.  Weakly fair with probability 1.
    """

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    def select(self, enabled: EnabledMap, step: int) -> Selection:
        pid = self._rng.choice(sorted(enabled))
        action = self._rng.choice(enabled[pid])
        return {pid: action}

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


class DistributedRandomDaemon(Daemon):
    """Each enabled processor is selected independently with probability
    ``p_select``; if the coin flips leave the selection empty, one enabled
    processor is drawn uniformly (the daemon must select at least one).
    Action choice within a processor is uniform.
    """

    def __init__(self, seed: int, p_select: float = 0.5) -> None:
        if not (0.0 < p_select <= 1.0):
            raise ValueError(f"p_select must be in (0, 1], got {p_select}")
        self._seed = seed
        self._p = p_select
        self._rng = random.Random(seed)

    def select(self, enabled: EnabledMap, step: int) -> Selection:
        rng = self._rng
        chosen: Selection = {}
        for pid in sorted(enabled):
            if rng.random() < self._p:
                chosen[pid] = rng.choice(enabled[pid])
        if not chosen:
            pid = rng.choice(sorted(enabled))
            chosen[pid] = rng.choice(enabled[pid])
        return chosen

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


class LocallyCentralRandomDaemon(Daemon):
    """Distributed daemon that never selects two *neighboring* processors in
    the same step (the locally central daemon of the literature).  Requires
    the adjacency to be provided; selection is a random maximal independent
    subset of the enabled processors.
    """

    def __init__(self, seed: int, neighbors: Sequence[Sequence[ProcId]]) -> None:
        self._seed = seed
        self._rng = random.Random(seed)
        self._neighbors = [frozenset(ns) for ns in neighbors]

    def select(self, enabled: EnabledMap, step: int) -> Selection:
        rng = self._rng
        order = sorted(enabled)
        rng.shuffle(order)
        chosen: Selection = {}
        blocked: set = set()
        for pid in order:
            if pid in blocked:
                continue
            chosen[pid] = rng.choice(enabled[pid])
            blocked.update(self._neighbors[pid])
        return chosen

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


class RoundRobinDaemon(Daemon):
    """Deterministic weakly fair central daemon: serves enabled processors
    in cyclic identity order starting after the last served identity.
    Within a processor, rules are taken in listed order.
    """

    def __init__(self) -> None:
        self._cursor = 0

    def select(self, enabled: EnabledMap, step: int) -> Selection:
        ids = sorted(enabled)
        for pid in ids:
            if pid >= self._cursor:
                break
        else:
            pid = ids[0]
        self._cursor = pid + 1
        return {pid: enabled[pid][0]}

    def reset(self) -> None:
        self._cursor = 0


class AdversarialScriptDaemon(Daemon):
    """Replays an explicit schedule.

    The script is a sequence of step entries; each entry is a list of
    ``(processor, rule_label)`` pairs (or ``(processor, rule_label, dest)``
    triples — the third element is matched against ``action.info['dest']``).
    When the script is exhausted the daemon delegates to ``fallback`` (a
    :class:`RoundRobinDaemon` unless another daemon is supplied), so runs can
    continue past the scripted prefix.
    """

    def __init__(
        self,
        script: Iterable[Sequence[Tuple]],
        fallback: Optional[Daemon] = None,
    ) -> None:
        self._script: List[Sequence[Tuple]] = [list(entry) for entry in script]
        self._pos = 0
        self._fallback = fallback if fallback is not None else RoundRobinDaemon()

    @property
    def script_exhausted(self) -> bool:
        """True once every scripted entry has been replayed."""
        return self._pos >= len(self._script)

    def select(self, enabled: EnabledMap, step: int) -> Selection:
        if self._pos >= len(self._script):
            return self._fallback.select(enabled, step)
        entry = self._script[self._pos]
        self._pos += 1
        chosen: Selection = {}
        for spec in entry:
            pid, rule = spec[0], spec[1]
            dest = spec[2] if len(spec) > 2 else None
            if pid not in enabled:
                raise ScheduleError(
                    f"script step {self._pos - 1}: processor {pid} is not enabled"
                )
            for action in enabled[pid]:
                if action.rule != rule:
                    continue
                if dest is not None and action.info.get("dest") != dest:
                    continue
                chosen[pid] = action
                break
            else:
                available = [(a.rule, a.info.get("dest")) for a in enabled[pid]]
                raise ScheduleError(
                    f"script step {self._pos - 1}: rule {rule!r} (dest={dest!r}) "
                    f"not enabled at {pid}; enabled: {available}"
                )
        if not chosen:
            raise ScheduleError(f"script step {self._pos - 1} selects nothing")
        return chosen

    def reset(self) -> None:
        self._pos = 0
        self._fallback.reset()
