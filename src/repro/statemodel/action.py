"""Enabled actions as first-class values.

An :class:`Action` is one enabled guarded rule at one processor, with every
value it will write *already computed* from the configuration snapshot it was
evaluated against.  Executing the action only applies those writes.  This is
what gives the engine the paper's atomic-step semantics: when the daemon
selects several processors in one step, all of their actions were bound
against the same configuration γ_i, so their combined application yields the
γ_{i+1} the state model prescribes (each processor writes only its own
variables, hence no write conflicts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict

from repro.types import ProcId


@dataclass(frozen=True)
class Action:
    """One enabled rule instance at one processor.

    Attributes
    ----------
    pid:
        The processor executing the action.
    rule:
        Rule label, e.g. ``"R3"`` for SSMFP's forwarding rule.
    protocol:
        Name of the protocol the rule belongs to (used by priority
        composition and by traces).
    effect:
        Zero-argument callable applying the precomputed writes.
    info:
        Diagnostic payload recorded in traces (destination, message, ...).
        Never read by the engine.
    """

    pid: ProcId
    rule: str
    protocol: str
    effect: Callable[[], None]
    info: Dict[str, Any] = field(default_factory=dict)

    def execute(self) -> None:
        """Apply the action's precomputed writes."""
        self.effect()

    def __repr__(self) -> str:
        return f"Action(pid={self.pid}, rule={self.rule}, protocol={self.protocol})"
