"""The step engine: atomic steps, rounds, termination.

:class:`Simulator` drives a :class:`~repro.statemodel.composition.PriorityStack`
of protocols under a daemon.  Each :meth:`Simulator.step`:

1. runs the protocols' environment hooks (``before_step``),
2. evaluates guards of every processor against the current configuration
   (actions bind all values they will write — snapshot semantics),
3. asks the daemon for a nonempty selection and validates it,
4. applies the selected actions simultaneously.

Round accounting follows the paper's definition: a round completes when
every processor enabled at the round's start has executed an action or been
*neutralized* (was enabled, became disabled without executing).

Incremental guard evaluation
----------------------------
In the locally shared memory model a guard at ``p`` reads only the closed
neighborhood of ``p``, so a step that executed actions at a few processors
can only change enabledness near those writers.  The simulator exploits
that: it keeps a per-processor cache of enabled actions and, before each
evaluation, asks the protocol stack which processors went *dirty*
(:meth:`~repro.statemodel.protocol.Protocol.dirty_after`).  Only dirty
processors are re-evaluated; protocols that do not opt in return ``None``
and get the classic full scan.  ``full_scan=True`` disables the cache
entirely, and ``debug_check=True`` cross-checks the cache against a full
scan after every evaluation (used by the equivalence test suite).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import InvariantViolation, ScheduleError, SimulationLimitExceeded
from repro.statemodel.action import Action
from repro.statemodel.composition import PriorityStack
from repro.statemodel.daemon import Daemon, EnabledMap
from repro.statemodel.protocol import Protocol
from repro.statemodel.trace import Event, TraceRecorder
from repro.types import ProcId


@dataclass
class StepReport:
    """What happened in one step (returned by :meth:`Simulator.step`)."""

    step: int
    executed: Dict[ProcId, Action]
    enabled_count: int
    round_completed: bool
    terminal: bool = False


@dataclass
class RunResult:
    """Summary of a :meth:`Simulator.run` call."""

    steps: int
    rounds: int
    terminal: bool
    halted_by_predicate: bool
    rule_counts: Dict[str, int] = field(default_factory=dict)


class Simulator:
    """Executes protocols over a fixed set of processors.

    Parameters
    ----------
    n:
        Number of processors (identities ``0..n-1``).
    protocols:
        Either a single protocol, a sequence (descending priority), or a
        prebuilt :class:`PriorityStack`.
    daemon:
        The scheduling adversary.
    trace:
        Optional :class:`TraceRecorder`; if omitted a fresh unfiltered
        recorder is created.
    strict_hooks:
        Optional per-step invariant checkers, called after every step with
        the simulator; used by the core tests to machine-check safety after
        each atomic step.
    full_scan:
        Escape hatch: evaluate every processor's guards every step (the
        pre-incremental behavior), ignoring the protocols' dirty sets.
    debug_check:
        Cross-check the incremental cache against a full scan after every
        guard evaluation; raises :class:`~repro.errors.InvariantViolation`
        on any divergence.  O(n·|rules|)/step — for tests, not benches.
    obs:
        Optional metrics registry (:class:`repro.obs.MetricsRegistry`,
        duck-typed so the state model stays import-free of the
        observability layer).  When set, every step feeds per-rule /
        per-protocol execution counts and wall-time, guard-evaluation
        counts, round completions, neutralization events and per-step
        wall-time histograms into it.  When ``None`` (the default) the
        only cost is one ``is not None`` test per step.
    """

    def __init__(
        self,
        n: int,
        protocols: Union[Protocol, Sequence[Protocol], PriorityStack],
        daemon: Daemon,
        trace: Optional[TraceRecorder] = None,
        strict_hooks: Optional[Sequence[Callable[["Simulator"], None]]] = None,
        *,
        full_scan: bool = False,
        debug_check: bool = False,
        obs: Optional[Any] = None,
    ) -> None:
        if isinstance(protocols, PriorityStack):
            self._stack = protocols
        elif isinstance(protocols, Protocol):
            self._stack = PriorityStack([protocols])
        else:
            self._stack = PriorityStack(list(protocols))
        self._n = n
        self._daemon = daemon
        self.trace = trace if trace is not None else TraceRecorder()
        self._strict_hooks = list(strict_hooks) if strict_hooks else []
        self._step = 0
        self._rounds_completed = 0
        self._round_pending: Optional[Set[ProcId]] = None
        self._rule_counts: Counter = Counter()
        self._terminal = False
        self._full_scan = full_scan
        self._debug_check = debug_check
        #: Per-processor enabled-actions cache (incremental engine only).
        self._cache: Optional[List[List[Action]]] = None
        #: Persistent enabled map (ascending pid order), updated in place
        #: for re-evaluated processors only — never rebuilt from an O(n)
        #: scan of the cache.
        self._enabled: Optional[EnabledMap] = None
        self._last_selection: Dict[ProcId, Action] = {}
        #: Number of *component evaluations* performed so far — one count
        #: per (processor, destination) component examined by a tracking
        #: protocol, one per ``enabled_actions`` call into a non-tracking
        #: one (see :attr:`Protocol.tracks_components`).  The same unit in
        #: the incremental and full-scan engines, so the benchmarks' ratios
        #: compare like work.  Mirrors the stack's cumulative counter,
        #: rebased to this simulator's construction.
        self.guard_evals = 0
        self._guard_base = self._stack.component_evals
        self._obs = obs
        if obs is not None:
            #: Bound instruments, resolved once (hot loops must not re-key).
            self._obs_rule_count: Dict[Tuple[str, str], Any] = {}
            self._obs_rule_wall: Dict[Tuple[str, str], Any] = {}
            self._obs_guard = obs.counter("guard_evals")
            self._obs_rounds = obs.counter("rounds_completed")
            self._obs_neutralized = obs.counter("neutralizations")
            self._obs_steps = obs.counter("steps_executed")
            self._obs_step_wall = obs.histogram("step_wall_s")
            self._obs_guard_seen = 0

    # -- accessors -----------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of processors."""
        return self._n

    @property
    def stack(self) -> PriorityStack:
        """The composed protocols."""
        return self._stack

    @property
    def daemon(self) -> Daemon:
        """The scheduling adversary driving selections."""
        return self._daemon

    @daemon.setter
    def daemon(self, daemon: Daemon) -> None:
        # Swappable mid-run: chaos drivers wrap the daemon to mask crashed
        # processors, and the enabled-set machinery is daemon-independent.
        self._daemon = daemon

    @property
    def step_count(self) -> int:
        """Number of atomic steps executed so far."""
        return self._step

    @property
    def round_count(self) -> int:
        """Number of *completed* rounds so far."""
        return self._rounds_completed

    @property
    def rule_counts(self) -> Dict[str, int]:
        """Histogram of executed rule labels (the paper's "moves")."""
        return dict(self._rule_counts)

    @property
    def terminal(self) -> bool:
        """True once a step found no enabled processor."""
        return self._terminal

    def enabled_map(self) -> EnabledMap:
        """Evaluate guards against the current configuration.

        With the incremental engine (the default), only processors the
        protocol stack reports dirty since the last evaluation are
        re-evaluated; the rest come from the cache.  The returned map is
        identical to a full scan (cross-checked when ``debug_check`` is
        set).
        """
        if self._full_scan:
            return self._full_scan_map()
        dirty = self._stack.dirty_after(self._last_selection)
        self._last_selection = {}
        cache = self._cache
        stack = self._stack
        if cache is None or dirty is None:
            self._cache = cache = [stack.enabled_actions(pid) for pid in range(self._n)]
            self._enabled = {
                pid: actions for pid, actions in enumerate(cache) if actions
            }
        elif dirty:
            enabled = self._enabled
            n = self._n
            inserted = False
            for pid in dirty:
                if 0 <= pid < n:
                    actions = stack.enabled_actions(pid)
                    cache[pid] = actions
                    if actions:
                        # Replacing an existing key keeps its position, so
                        # the map stays ascending; only a *new* pid forces
                        # the O(enabled · log) re-sort below.
                        if pid not in enabled:
                            inserted = True
                        enabled[pid] = actions
                    else:
                        enabled.pop(pid, None)
            if inserted:
                self._enabled = {pid: enabled[pid] for pid in sorted(enabled)}
        self.guard_evals = stack.component_evals - self._guard_base
        if self._debug_check:
            self._cross_check(self._enabled)
        return self._enabled

    def _full_scan_map(self) -> EnabledMap:
        enabled: EnabledMap = {}
        stack = self._stack
        for pid in range(self._n):
            actions = stack.enabled_actions(pid)
            if actions:
                enabled[pid] = actions
        self.guard_evals = stack.component_evals - self._guard_base
        return enabled

    def _cross_check(self, enabled: EnabledMap) -> None:
        """Debug mode: recompute everything with fresh, cache-bypassing
        scans (:meth:`PriorityStack.enabled_actions_fresh`, which also
        bypasses the protocols' component caches) and compare — so both the
        simulator's per-processor cache *and* the component caches feeding
        it are validated against the current configuration."""
        fresh: EnabledMap = {}
        stack = self._stack
        for pid in range(self._n):
            actions = stack.enabled_actions_fresh(pid)
            if actions:
                fresh[pid] = actions

        def signature(m: EnabledMap):
            return {
                pid: [(a.rule, a.protocol, a.info) for a in actions]
                for pid, actions in m.items()
            }

        got, want = signature(enabled), signature(fresh)
        if got != want:
            diff = {
                pid: (got.get(pid), want.get(pid))
                for pid in set(got) | set(want)
                if got.get(pid) != want.get(pid)
            }
            raise InvariantViolation(
                f"incremental enabled-set cache diverged from full scan at "
                f"step {self._step}: {{pid: (cached, fresh)}} = {diff}"
            )

    # -- stepping ------------------------------------------------------------

    def step(self) -> StepReport:
        """Execute one atomic step; returns what happened.

        If no processor is enabled the configuration is terminal: the report
        has ``terminal=True`` and nothing is executed.
        """
        obs = self._obs
        step_started = perf_counter() if obs is not None else 0.0
        self._stack.before_step(self._step)
        enabled = self.enabled_map()
        rec = self.trace
        if obs is not None and self.guard_evals != self._obs_guard_seen:
            self._obs_guard.inc(self.guard_evals - self._obs_guard_seen)
            self._obs_guard_seen = self.guard_evals

        # Round bookkeeping part 1: neutralization.  Any processor still
        # owed to the current round that is no longer enabled was
        # neutralized at some earlier step.
        if self._round_pending is None:
            self._round_pending = set(enabled)
        else:
            owed_before = len(self._round_pending)
            self._round_pending &= enabled.keys()
            if obs is not None and owed_before > len(self._round_pending):
                self._obs_neutralized.inc(owed_before - len(self._round_pending))
        round_completed = False
        if not self._round_pending and enabled:
            # Every debtor executed or was neutralized: a round completed,
            # the new round starts from the current enabled set.
            self._rounds_completed += 1
            self._round_pending = set(enabled)
            round_completed = True
            if obs is not None:
                self._obs_rounds.inc()
            if rec.wants("round"):
                # The round completed at the step whose execution paid its
                # last debt — the *previous* step (completion is detected
                # at the next evaluation).  Stamp that step, so a marker at
                # step s means "s is the last step of its round"; the
                # RoundClock relies on this.  (max() guards the vacuous
                # round counted when an initially terminal configuration
                # is revived by the environment before anything executed.)
                rec.record(Event(step=max(self._step - 1, 0), kind="round"))

        # A configuration is terminal only while nothing is enabled; the
        # environment (higher layer) may revive it at a later step.
        self._terminal = not enabled
        if not enabled:
            return StepReport(
                step=self._step,
                executed={},
                enabled_count=0,
                round_completed=round_completed,
                terminal=True,
            )

        selection = self._daemon.select(enabled, self._step)
        self._validate_selection(selection, enabled)

        counts = self._rule_counts
        record_actions = rec.wants("action")
        if obs is None:
            for pid, action in selection.items():
                action.execute()
                counts[action.rule] += 1
                if record_actions:
                    rec.record(
                        Event(
                            step=self._step,
                            kind="action",
                            pid=pid,
                            rule=action.rule,
                            protocol=action.protocol,
                            info=action.info,
                        )
                    )
        else:
            for pid, action in selection.items():
                action_started = perf_counter()
                action.execute()
                wall = perf_counter() - action_started
                counts[action.rule] += 1
                key = (action.protocol, action.rule)
                rule_count = self._obs_rule_count.get(key)
                if rule_count is None:
                    rule_count = self._obs_rule_count[key] = obs.counter(
                        "rule_executions", protocol=action.protocol, rule=action.rule
                    )
                    self._obs_rule_wall[key] = obs.counter(
                        "rule_wall_s", protocol=action.protocol, rule=action.rule
                    )
                rule_count.inc()
                self._obs_rule_wall[key].inc(wall)
                if record_actions:
                    rec.record(
                        Event(
                            step=self._step,
                            kind="action",
                            pid=pid,
                            rule=action.rule,
                            protocol=action.protocol,
                            info=action.info,
                        )
                    )
        self._last_selection = selection

        # Round bookkeeping part 2: executions pay the round debt.
        self._round_pending -= selection.keys()

        self._step += 1
        for hook in self._strict_hooks:
            hook(self)
        if obs is not None:
            self._obs_steps.inc()
            self._obs_step_wall.observe(perf_counter() - step_started)
        return StepReport(
            step=self._step - 1,
            executed=selection,
            enabled_count=len(enabled),
            round_completed=round_completed,
        )

    def run(
        self,
        max_steps: int,
        halt: Optional[Callable[["Simulator"], bool]] = None,
        raise_on_limit: bool = True,
    ) -> RunResult:
        """Run until the configuration is terminal, ``halt`` returns True,
        or ``max_steps`` elapse.

        ``halt`` is evaluated before each step (so a halt condition already
        true costs zero steps).  If the step budget is exhausted and
        ``raise_on_limit`` is set, :class:`SimulationLimitExceeded` is
        raised with diagnostics.
        """
        halted = False
        for _ in range(max_steps):
            if halt is not None and halt(self):
                halted = True
                break
            report = self.step()
            if report.terminal:
                break
        else:
            if halt is not None and halt(self):
                halted = True
            elif raise_on_limit:
                raise SimulationLimitExceeded(
                    f"no termination within {max_steps} steps "
                    f"({self._rounds_completed} rounds completed); "
                    f"rule counts: {self._rule_counts}",
                    steps=self._step,
                    rounds=self._rounds_completed,
                )
        return RunResult(
            steps=self._step,
            rounds=self._rounds_completed,
            terminal=self._terminal,
            halted_by_predicate=halted,
            rule_counts=dict(self._rule_counts),
        )

    # -- internals -------------------------------------------------------------

    def _validate_selection(self, selection: Dict[ProcId, Action], enabled: EnabledMap) -> None:
        if not selection:
            raise ScheduleError("daemon selected no processor while some are enabled")
        for pid, action in selection.items():
            if pid not in enabled:
                raise ScheduleError(f"daemon selected disabled processor {pid}")
            if action not in enabled[pid]:
                raise ScheduleError(
                    f"daemon selected an action not enabled at {pid}: {action!r}"
                )
