"""The :class:`Protocol` interface implemented by every distributed
algorithm in this reproduction (routing, SSMFP, baselines).

A protocol owns per-processor local state and exposes, for each processor,
the list of currently enabled actions.  Actions must follow the binding
discipline documented in :mod:`repro.statemodel.action`: every value an
action writes is computed *before* the action is returned, from the current
configuration, so simultaneous execution keeps snapshot semantics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional, Set

from repro.statemodel.action import Action
from repro.types import ProcId


class Protocol(ABC):
    """Base class for state-model protocols.

    Subclasses set :attr:`name` and implement :meth:`enabled_actions`.
    The optional hooks let protocols model their environment interface
    (e.g. the higher layer raising ``request_p``) outside of daemon steps.
    """

    #: Human-readable protocol name; also used by priority composition.
    name: str = "protocol"

    @abstractmethod
    def enabled_actions(self, pid: ProcId) -> List[Action]:
        """All actions of this protocol currently enabled at ``pid``.

        Must be side-effect free and must bind every value the returned
        actions will write (snapshot discipline).
        """

    def before_step(self, step: int) -> None:
        """Hook invoked by the simulator at the very beginning of each step,
        before guard evaluation.  Used for environment moves that the paper
        models outside the daemon (higher-layer requests, fairness-queue
        bookkeeping).  Default: nothing."""

    def dirty_after(self, selection: Dict[ProcId, "Action"]) -> Optional[Set[ProcId]]:
        """Incremental-engine hook: the set of processors whose guards may
        have changed since the previous guard evaluation.

        The simulator calls this once per step, immediately before guard
        evaluation (after :meth:`before_step`), passing the selection it
        executed in the previous step (empty on the first step and after
        terminal steps).  The returned set must cover *every* source of
        guard change since the last call: the executed actions' writes,
        environment moves made by :meth:`before_step`, and any external
        mutation of protocol state.

        In the locally shared memory model a guard at ``p`` reads only the
        closed neighborhood of ``p``, so protocols that track their writes
        can return small sets and the simulator will re-evaluate only those
        processors, reusing its cached enabled actions everywhere else.

        Returning ``None`` means "anything may have changed" and forces a
        full re-scan — the safe default for protocols that do not opt in.
        """
        return None

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ish dump of protocol state for traces and figure replays.
        Default: empty."""
        return {}

    def is_enabled(self, pid: ProcId) -> bool:
        """True iff at least one action of this protocol is enabled at
        ``pid``.  Subclasses may override with a cheaper check."""
        return bool(self.enabled_actions(pid))
