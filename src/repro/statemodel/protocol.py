"""The :class:`Protocol` interface implemented by every distributed
algorithm in this reproduction (routing, SSMFP, baselines).

A protocol owns per-processor local state and exposes, for each processor,
the list of currently enabled actions.  Actions must follow the binding
discipline documented in :mod:`repro.statemodel.action`: every value an
action writes is computed *before* the action is returned, from the current
configuration, so simultaneous execution keeps snapshot semantics.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional, Set

from repro.statemodel.action import Action
from repro.statemodel.snapshot import EMPTY_STATE, StateVector
from repro.types import ProcId


class Protocol(ABC):
    """Base class for state-model protocols.

    Subclasses set :attr:`name` and implement :meth:`enabled_actions`.
    The optional hooks let protocols model their environment interface
    (e.g. the higher layer raising ``request_p``) outside of daemon steps.
    """

    #: Human-readable protocol name; also used by priority composition.
    name: str = "protocol"

    #: True for protocols that evaluate guards per (processor, destination)
    #: *component* and account that work in :attr:`component_evals`.
    #: Protocols that don't are charged one component-evaluation per
    #: ``enabled_actions`` call by the composition layer, so the engine-wide
    #: ``guard_evals`` metric stays meaningful for any mix of protocols.
    tracks_components: bool = False

    #: Cumulative number of component evaluations performed by this protocol
    #: (only maintained when :attr:`tracks_components` is set).  A component
    #: evaluation is one examination of a single ``(p, d)`` component —
    #: whether it short-circuits on an emptiness fast path or runs the full
    #: rule list — counted identically in the classic full scan and in the
    #: incremental reconcile, so ratios between engines compare like work.
    component_evals: int = 0

    @abstractmethod
    def enabled_actions(self, pid: ProcId) -> List[Action]:
        """All actions of this protocol currently enabled at ``pid``.

        Must be side-effect free and must bind every value the returned
        actions will write (snapshot discipline).
        """

    def enabled_actions_fresh(self, pid: ProcId) -> List[Action]:
        """Like :meth:`enabled_actions` but guaranteed to re-evaluate every
        guard from the current configuration, bypassing any caching the
        protocol maintains, without touching :attr:`component_evals`.

        This is the oracle the simulator's ``debug_check`` cross-check uses
        to validate cached enabled maps (and the component caches behind
        them) against a genuinely fresh scan.  Default: the protocol caches
        nothing, so :meth:`enabled_actions` is already fresh.
        """
        return self.enabled_actions(pid)

    def before_step(self, step: int) -> None:
        """Hook invoked by the simulator at the very beginning of each step,
        before guard evaluation.  Used for environment moves that the paper
        models outside the daemon (higher-layer requests, fairness-queue
        bookkeeping).  Default: nothing."""

    def dirty_after(self, selection: Dict[ProcId, "Action"]) -> Optional[Set[ProcId]]:
        """Incremental-engine hook: the set of processors whose guards may
        have changed since the previous guard evaluation.

        The simulator calls this once per step, immediately before guard
        evaluation (after :meth:`before_step`), passing the selection it
        executed in the previous step (empty on the first step and after
        terminal steps).  The returned set must cover *every* source of
        guard change since the last call: the executed actions' writes,
        environment moves made by :meth:`before_step`, and any external
        mutation of protocol state.

        In the locally shared memory model a guard at ``p`` reads only the
        closed neighborhood of ``p``, so protocols that track their writes
        can return small sets and the simulator will re-evaluate only those
        processors, reusing its cached enabled actions everywhere else.

        Returning ``None`` means "anything may have changed" and forces a
        full re-scan — the safe default for protocols that do not opt in.

        Component-tracking protocols (:attr:`tracks_components`) implement
        this as the *projection onto processors* of their per-``(p, d)``
        component dirty sets: the simulator re-evaluates exactly the
        reported processors, and inside ``enabled_actions`` the protocol
        reconciles only the dirty components, serving everything else from
        its component cache (see :mod:`repro.statemodel.components`).
        """
        return None

    def dump(self) -> Dict[str, Any]:
        """A JSON-ish dump of protocol state for traces and figure replays
        (human-facing, lossy).  Default: empty.  Not to be confused with
        :meth:`snapshot`, the exact machine-facing state vector."""
        return {}

    def snapshot(self) -> StateVector:
        """The protocol's full mutable state as an immutable vector (see
        :mod:`repro.statemodel.snapshot` for the contract).  Default: the
        empty vector — correct only for stateless protocols; every stateful
        protocol explored by :mod:`repro.verify` must override both this
        and :meth:`restore`."""
        return EMPTY_STATE

    def restore(self, vec: StateVector) -> None:
        """Reinstate a previously captured :meth:`snapshot`.  The default
        accepts only the empty vector, so a stateful protocol that forgot
        to implement the pair fails loudly instead of silently corrupting
        an exploration."""
        if vec != EMPTY_STATE:
            raise NotImplementedError(
                f"{type(self).__name__} returned a non-empty state vector "
                "but does not implement restore()"
            )

    def is_enabled(self, pid: ProcId) -> bool:
        """True iff at least one action of this protocol is enabled at
        ``pid``.  Subclasses may override with a cheaper check."""
        return bool(self.enabled_actions(pid))
