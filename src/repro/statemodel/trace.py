"""Execution traces.

The trace recorder captures one :class:`Event` per executed action plus
round-boundary markers.  Traces power the Figure-3 replay (asserting the
paper's configurations one by one), the metrics module, and debugging of
non-terminating runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.types import ProcId


@dataclass(frozen=True)
class Event:
    """One executed action (or marker) in an execution.

    ``kind`` is ``"action"`` for rule executions, ``"round"`` for round
    boundaries.  ``info`` carries the action's diagnostic payload.
    """

    step: int
    kind: str
    pid: Optional[ProcId] = None
    rule: Optional[str] = None
    protocol: Optional[str] = None
    info: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Collects events, optionally filtered.

    Parameters
    ----------
    predicate:
        Optional filter; events failing it are dropped.  Round markers are
        always kept.
    capacity:
        Optional bound on stored events; once full, the oldest events are
        dropped (the recorder keeps a running total either way).
    kinds:
        Optional allow-list of event kinds (e.g. ``("round",)``).  Unlike
        ``predicate``, this filter is *statically known*, so the simulator
        queries it via :meth:`wants` and skips :class:`Event` construction
        entirely for kinds that would be dropped — the cheap way to keep
        only round markers on long runs.
    """

    def __init__(
        self,
        predicate: Optional[Callable[[Event], bool]] = None,
        capacity: Optional[int] = None,
        kinds: Optional[Iterable[str]] = None,
    ) -> None:
        self._predicate = predicate
        self._capacity = capacity
        self._kinds = frozenset(kinds) if kinds is not None else None
        self._events: List[Event] = []
        self._total = 0

    def wants(self, kind: str) -> bool:
        """True iff events of ``kind`` can possibly be retained.  Producers
        may skip building the :class:`Event` when this returns False."""
        return self._kinds is None or kind in self._kinds

    @property
    def events(self) -> List[Event]:
        """The retained events, oldest first."""
        return self._events

    @property
    def total_recorded(self) -> int:
        """Number of events offered to the recorder (before capacity drop)."""
        return self._total

    def record(self, event: Event) -> None:
        """Offer one event to the recorder."""
        if self._kinds is not None and event.kind not in self._kinds:
            return
        if event.kind == "action" and self._predicate is not None:
            if not self._predicate(event):
                return
        self._total += 1
        self._events.append(event)
        if self._capacity is not None and len(self._events) > self._capacity:
            del self._events[: len(self._events) - self._capacity]

    def actions(self) -> List[Event]:
        """Only the action events."""
        return [e for e in self._events if e.kind == "action"]

    def rule_counts(self) -> Dict[str, int]:
        """Histogram of executed rule labels."""
        counts: Dict[str, int] = {}
        for e in self._events:
            if e.kind == "action" and e.rule is not None:
                counts[e.rule] = counts.get(e.rule, 0) + 1
        return counts

    def clear(self) -> None:
        """Drop all retained events and reset the running total."""
        self._events.clear()
        self._total = 0
