"""Priority composition of protocols.

The paper composes the routing algorithm ``A`` with SSMFP so that "a
processor which has enabled actions for both algorithms always chooses the
action of A".  :class:`PriorityStack` realizes exactly that: protocols are
ordered by decreasing priority, and at each processor only the actions of the
highest-priority protocol with any enabled action are offered to the daemon.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.statemodel.action import Action
from repro.statemodel.protocol import Protocol
from repro.statemodel.snapshot import StateVector
from repro.types import ProcId


class PriorityStack:
    """An ordered collection of protocols with per-processor priority.

    ``protocols[0]`` has the highest priority.  The stack itself satisfies
    the :class:`~repro.statemodel.protocol.Protocol` action interface used
    by the simulator.
    """

    def __init__(self, protocols: Sequence[Protocol]) -> None:
        if not protocols:
            raise ValueError("PriorityStack needs at least one protocol")
        self._protocols: List[Protocol] = list(protocols)
        #: (protocol, tracks_components) pairs, resolved once — the hot loop
        #: must not re-read the flag per call.
        self._layers: List[tuple] = [
            (p, bool(getattr(p, "tracks_components", False)))
            for p in self._protocols
        ]
        #: Component-evaluations charged to protocols that do *not* track
        #: components themselves: one per ``enabled_actions`` call (their
        #: whole per-processor evaluation counts as one unit of work).
        self._fallback_evals = 0

    @property
    def protocols(self) -> List[Protocol]:
        """The composed protocols, highest priority first."""
        return self._protocols

    def before_step(self, step: int) -> None:
        """Propagate the pre-step hook to every layer (environment moves are
        not subject to priority)."""
        for proto in self._protocols:
            proto.before_step(step)

    def enabled_actions(self, pid: ProcId) -> List[Action]:
        """Actions of the highest-priority protocol enabled at ``pid``."""
        for proto, tracked in self._layers:
            if not tracked:
                self._fallback_evals += 1
            actions = proto.enabled_actions(pid)
            if actions:
                return actions
        return []

    def enabled_actions_fresh(self, pid: ProcId) -> List[Action]:
        """Like :meth:`enabled_actions` but forcing every layer to
        re-evaluate from the current configuration, bypassing component
        caches and without charging :attr:`component_evals` — the
        ``debug_check`` oracle."""
        for proto in self._protocols:
            actions = proto.enabled_actions_fresh(pid)
            if actions:
                return actions
        return []

    @property
    def component_evals(self) -> int:
        """Cumulative component evaluations across the whole stack: the sum
        of the tracking protocols' own counters plus one per
        ``enabled_actions`` call into each non-tracking layer.  This is the
        number behind ``Simulator.guard_evals``."""
        total = self._fallback_evals
        for proto in self._protocols:
            total += proto.component_evals
        return total

    def snapshot(self) -> StateVector:
        """State vector of the whole stack: one entry per layer, in
        priority order."""
        return tuple(proto.snapshot() for proto in self._protocols)

    def restore(self, vec: StateVector) -> None:
        """Reinstate a previously captured :meth:`snapshot`, layer by
        layer."""
        for proto, layer_vec in zip(self._protocols, vec):
            proto.restore(layer_vec)

    def dirty_after(self, selection: Dict[ProcId, Action]) -> Optional[Set[ProcId]]:
        """Union of the layers' dirty sets; ``None`` (full re-scan) as soon
        as any layer declines to track its writes.

        A processor dirty for *any* layer is dirty for the whole stack:
        priority masking means a layer's enabledness change can expose or
        hide a lower layer's actions at that processor.  Every layer is
        drained even when one returns ``None``, so per-protocol
        accumulators never go stale across a full re-scan.
        """
        dirty: Optional[Set[ProcId]] = set()
        for proto in self._protocols:
            d = proto.dirty_after(selection)
            if d is None:
                dirty = None
            elif dirty is not None:
                dirty |= d
        return dirty
