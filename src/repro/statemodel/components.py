"""Shared bookkeeping for (processor, destination) component caches.

SSMFP is ``n`` mutually independent per-destination algorithms running
simultaneously (the paper makes the decomposition explicit), and the
routing protocol ``A`` has the same shape: every guard at processor ``p``
for destination ``d`` reads only component ``d`` in the closed neighborhood
of ``p``.  A write therefore dirties a handful of ``(p, d)`` *components*,
not whole processors — and a protocol that caches its rule-produced
:class:`~repro.statemodel.action.Action` lists per component only has to
re-evaluate the dirty ones.

:class:`ComponentDirtyCache` is the data structure both component-tracking
protocols share: per-processor dirty destination sets, a set of processors
with any dirty component (what :meth:`Protocol.dirty_after` reports to the
simulator), per-processor validity flags (``False`` after a wholesale
invalidation), and a per-processor index of *non-empty* component entries
so a processor's enabled list is assembled in O(occupied components), never
O(n).  The evaluation itself stays in the owning protocol — the cache only
does bookkeeping.

Storage is **sparse**: per-processor sets/entries materialize on first
touch and ``invalidate_all`` is O(materialized), so an idle cache costs
nothing regardless of ``n`` — a processor the traffic never reached has no
allocation anywhere.  The ``valid[p]`` / ``dirty[p]`` / ``entries[p]``
indexing idiom is preserved through autovivifying mapping views.

Snapshot discipline makes the cached actions safe to reuse: an action binds
every value it will write at guard-evaluation time, so as long as no read
of the component's guards changed (exactly what "not dirty" means), the
cached action list is bit-identical to a fresh evaluation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.statemodel.action import Action
from repro.types import DestId, ProcId


class _ValidFlags:
    """``valid[p]`` view over the set of valid processors: reads never
    allocate, ``valid[p] = True/False`` updates the set."""

    __slots__ = ("_valid",)

    def __init__(self) -> None:
        self._valid: Set[ProcId] = set()

    def __getitem__(self, pid: ProcId) -> bool:
        return pid in self._valid

    def __setitem__(self, pid: ProcId, value: bool) -> None:
        if value:
            self._valid.add(pid)
        else:
            self._valid.discard(pid)

    def clear(self) -> None:
        self._valid.clear()


class _AutoMap:
    """``m[p]`` get-or-creates an empty container (set or dict) — the
    per-processor lazy slot behind ``dirty`` and ``entries``."""

    __slots__ = ("_rows", "_factory")

    def __init__(self, factory) -> None:
        self._rows: Dict[ProcId, object] = {}
        self._factory = factory

    def __getitem__(self, pid: ProcId):
        row = self._rows.get(pid)
        if row is None:
            row = self._rows[pid] = self._factory()
        return row

    def get(self, pid: ProcId):
        """Non-materializing read: the container or None."""
        return self._rows.get(pid)

    def prune(self) -> None:
        """Drop materialized-but-empty slots (quiescence eviction)."""
        stale = [pid for pid, row in self._rows.items() if not row]
        for pid in stale:
            del self._rows[pid]

    def clear(self) -> None:
        self._rows.clear()

    def __len__(self) -> int:
        return len(self._rows)


class ComponentDirtyCache:
    """Per-(processor, destination) dirty sets and enabled-action entries."""

    __slots__ = ("n", "valid", "dirty", "dirty_pids", "entries")

    def __init__(self, n: int) -> None:
        self.n = n
        #: ``valid[p]`` — False until ``p``'s entries have been (re)built.
        self.valid = _ValidFlags()
        #: ``dirty[p]`` — destinations whose component at ``p`` must be
        #: re-evaluated before ``p``'s enabled list is served again.
        self.dirty = _AutoMap(set)
        #: Processors with any dirty component (the simulator-facing set).
        self.dirty_pids: Set[ProcId] = set()
        #: ``entries[p]`` — component -> non-empty enabled-action list.
        self.entries = _AutoMap(dict)

    def mark(self, pid: ProcId, d: DestId) -> None:
        """Dirty the single component ``(pid, d)``."""
        self.dirty[pid].add(d)
        self.dirty_pids.add(pid)

    def mark_many(self, pids: Iterable[ProcId], d: DestId) -> None:
        """Dirty component ``d`` at every processor in ``pids`` (typically a
        writer's closed neighborhood)."""
        dirty = self.dirty
        for p in pids:
            dirty[p].add(d)
        self.dirty_pids.update(pids)

    def invalidate_all(self) -> None:
        """Drop every entry and every recorded dirty bit — used when the
        owning protocol leaves its all-dirty regime and must rebuild from
        the (possibly externally rewritten) configuration.  O(materialized
        slots), not O(n): untouched processors have nothing to drop."""
        self.valid.clear()
        self.dirty.clear()
        self.dirty_pids.clear()
        self.entries.clear()

    def prune(self) -> None:
        """Evict empty per-processor slots so a processor whose traffic
        quiesced costs no memory again."""
        self.dirty.prune()
        self.entries.prune()

    def materialized_pids(self) -> Set[ProcId]:
        """Processors with any materialized slot — the memory footprint
        index used by tests and the scale bench."""
        return set(self.dirty._rows) | set(self.entries._rows)

    def assemble(self, pid: ProcId) -> List[Action]:
        """``pid``'s enabled list from its non-empty component entries, in
        ascending destination order (the order a classic left-to-right scan
        produces — daemons observe it, so it is part of the contract)."""
        entries = self.entries.get(pid)
        if not entries:
            return []
        if len(entries) == 1:
            (acts,) = entries.values()
            return list(acts)
        out: List[Action] = []
        for d in sorted(entries):
            out.extend(entries[d])
        return out
