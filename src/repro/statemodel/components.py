"""Shared bookkeeping for (processor, destination) component caches.

SSMFP is ``n`` mutually independent per-destination algorithms running
simultaneously (the paper makes the decomposition explicit), and the
routing protocol ``A`` has the same shape: every guard at processor ``p``
for destination ``d`` reads only component ``d`` in the closed neighborhood
of ``p``.  A write therefore dirties a handful of ``(p, d)`` *components*,
not whole processors — and a protocol that caches its rule-produced
:class:`~repro.statemodel.action.Action` lists per component only has to
re-evaluate the dirty ones.

:class:`ComponentDirtyCache` is the data structure both component-tracking
protocols share: per-processor dirty destination sets, a set of processors
with any dirty component (what :meth:`Protocol.dirty_after` reports to the
simulator), per-processor validity flags (``False`` after a wholesale
invalidation), and a per-processor index of *non-empty* component entries
so a processor's enabled list is assembled in O(occupied components), never
O(n).  The evaluation itself stays in the owning protocol — the cache only
does bookkeeping.

Snapshot discipline makes the cached actions safe to reuse: an action binds
every value it will write at guard-evaluation time, so as long as no read
of the component's guards changed (exactly what "not dirty" means), the
cached action list is bit-identical to a fresh evaluation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.statemodel.action import Action
from repro.types import DestId, ProcId


class ComponentDirtyCache:
    """Per-(processor, destination) dirty sets and enabled-action entries."""

    __slots__ = ("n", "valid", "dirty", "dirty_pids", "entries")

    def __init__(self, n: int) -> None:
        self.n = n
        #: ``valid[p]`` — False until ``p``'s entries have been (re)built.
        self.valid: List[bool] = [False] * n
        #: ``dirty[p]`` — destinations whose component at ``p`` must be
        #: re-evaluated before ``p``'s enabled list is served again.
        self.dirty: List[Set[DestId]] = [set() for _ in range(n)]
        #: Processors with any dirty component (the simulator-facing set).
        self.dirty_pids: Set[ProcId] = set()
        #: ``entries[p]`` — component -> non-empty enabled-action list.
        self.entries: List[Dict[DestId, List[Action]]] = [{} for _ in range(n)]

    def mark(self, pid: ProcId, d: DestId) -> None:
        """Dirty the single component ``(pid, d)``."""
        self.dirty[pid].add(d)
        self.dirty_pids.add(pid)

    def mark_many(self, pids: Iterable[ProcId], d: DestId) -> None:
        """Dirty component ``d`` at every processor in ``pids`` (typically a
        writer's closed neighborhood)."""
        dirty = self.dirty
        for p in pids:
            dirty[p].add(d)
        self.dirty_pids.update(pids)

    def invalidate_all(self) -> None:
        """Drop every entry and every recorded dirty bit — used when the
        owning protocol leaves its all-dirty regime and must rebuild from
        the (possibly externally rewritten) configuration."""
        self.valid = [False] * self.n
        for s in self.dirty:
            s.clear()
        self.dirty_pids.clear()
        for e in self.entries:
            e.clear()

    def assemble(self, pid: ProcId) -> List[Action]:
        """``pid``'s enabled list from its non-empty component entries, in
        ascending destination order (the order a classic left-to-right scan
        produces — daemons observe it, so it is part of the contract)."""
        entries = self.entries[pid]
        if not entries:
            return []
        if len(entries) == 1:
            (acts,) = entries.values()
            return list(acts)
        out: List[Action] = []
        for d in sorted(entries):
            out.extend(entries[d])
        return out
