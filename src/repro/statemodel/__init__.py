"""State-model execution engine (the paper's §2.1 computational model).

This package implements the locally shared memory model: protocols are sets
of guarded actions evaluated against a configuration snapshot; a *daemon*
selects a nonempty subset of enabled processors each step; selected actions
execute atomically with reads bound at guard-evaluation time (so a step has
exactly the paper's three-phase semantics); rounds are accounted per the
Dolev-Israeli-Moran definition as modified by Bui-Datta-Petit-Villain.
"""

from repro.statemodel.action import Action
from repro.statemodel.daemon import (
    AdversarialScriptDaemon,
    CentralRandomDaemon,
    Daemon,
    DistributedRandomDaemon,
    LocallyCentralRandomDaemon,
    RoundRobinDaemon,
    SynchronousDaemon,
)
from repro.statemodel.message import Message, MessageFactory
from repro.statemodel.protocol import Protocol
from repro.statemodel.scheduler import Simulator, StepReport
from repro.statemodel.trace import Event, TraceRecorder

__all__ = [
    "Action",
    "AdversarialScriptDaemon",
    "CentralRandomDaemon",
    "Daemon",
    "DistributedRandomDaemon",
    "LocallyCentralRandomDaemon",
    "RoundRobinDaemon",
    "SynchronousDaemon",
    "Message",
    "MessageFactory",
    "Protocol",
    "Simulator",
    "StepReport",
    "Event",
    "TraceRecorder",
]
