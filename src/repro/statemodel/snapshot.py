"""The explicit snapshot/restore state layer.

The exhaustive verifiers (:mod:`repro.verify`) explore the reachable
configuration graph of small instances.  Doing that by ``copy.deepcopy``-ing
the whole system per transition is correct but slow — the copy walks every
object of every layer, including immutable networks, caches and notifier
wiring, and the canonicalization then re-reads the same state a second
time.  This module defines the protocol that replaces it:

``snapshot() -> StateVector``
    Return a compact, immutable (nested-tuple) vector of *every* piece of
    mutable state the component owns that can influence future behavior or
    canonicalization.  Caches and derived indexes (occupancy counts,
    component dirty sets, ``next_hop`` caches) are **excluded**: they are
    rebuilt or repaired on restore.  Immutable values (frozen
    :class:`~repro.statemodel.message.Message` instances, delivery records)
    are shared by reference, never copied.

``restore(vec) -> None``
    Bring the component back to exactly the state captured by ``vec``.
    Restore is a *diffing* write: only cells that actually differ from the
    current configuration are written, and every real write goes through
    the same mutators (and therefore the same change notifiers) as protocol
    execution.  That last property is what lets the verifiers keep the
    component-granular incremental engine of the simulator engaged: after a
    restore, exactly the components whose guard inputs changed since the
    previously evaluated configuration are dirty, and
    ``enabled_actions`` re-evaluates only those.

Contract
--------
* ``restore(snapshot())`` is a no-op (no writes, no notifications beyond
  over-approximation; observable state unchanged).
* ``snapshot()`` after ``restore(vec)`` equals ``vec`` (round-trip
  identity) — pinned per component in ``tests/test_snapshot_state.py``.
* Vectors are plain nested tuples: hashable when the payloads are, cheap
  to store by the hundred-thousand, and directly usable as the source of
  the verifier's canonical form (``_System.canon`` is a *projection* of
  the state vector, so canonicalization and restoration can never
  diverge).
* The canon projection must be **history-free and orbit-stable**: a
  vector canonicalizes identically whether the producing system
  materialized (or evicted) sparse rows on the way there or never
  allocated them (``tests/test_canon_stability.py``), and every
  collection inside the canon is ordered by a processor-stable rule
  (sorted, or by an order that commutes with processor permutation) so
  the symmetry reducer's algebraic ``permute_canon`` lands in the same
  deterministic form the search itself produces
  (``repro/verify/reduction.py``).

Implementors: :class:`~repro.core.buffers.ForwardingBuffers`,
:class:`~repro.core.choice.FairChoiceQueue`,
:class:`~repro.core.ledger.DeliveryLedger`,
:class:`~repro.app.higher_layer.HigherLayer`,
:class:`~repro.statemodel.message.MessageFactory`,
:class:`~repro.core.protocol.SSMFP`,
:class:`~repro.routing.selfstab_bfs.SelfStabilizingBFSRouting`,
:class:`~repro.routing.static.StaticRouting` (vacuously — immutable), the
:class:`~repro.statemodel.protocol.Protocol` base (default: stateless) and
:class:`~repro.statemodel.composition.PriorityStack` (layer aggregation).
See ``docs/verify.md`` for the explorer architecture built on top.
"""

from __future__ import annotations

from typing import Any, Tuple

#: A component's full mutable state as an immutable nested tuple.  The
#: concrete shape is private to each component; callers treat vectors as
#: opaque values that only :meth:`restore` (of the component that produced
#: them) understands.
StateVector = Tuple[Any, ...]

#: The state vector of a component with no mutable state (and the default
#: for protocols that do not override :meth:`Protocol.snapshot`).
EMPTY_STATE: StateVector = ()
