"""Routing substrate.

The paper assumes a self-stabilizing *silent* routing algorithm ``A`` runs
simultaneously with SSMFP, with priority, and that SSMFP reads the tables
only through ``nextHop_p(d)``.  This package provides:

* :class:`RoutingService` — the ``nextHop`` interface SSMFP consumes;
* :class:`StaticRouting` — fixed correct tables (``R_A = 0``), for the
  Proposition-1 regime;
* :class:`SelfStabilizingBFSRouting` — a per-destination self-stabilizing
  BFS distance-vector protocol in the state model (silent, converges in
  O(D) rounds under a weakly fair daemon, minimal paths);
* corruption models producing the arbitrary initial table states the paper
  quantifies over;
* analysis helpers: table correctness, routing-cycle detection, and
  measurement of the stabilization time ``R_A``.
"""

from repro.routing.table import RoutingService
from repro.routing.static import StaticRouting
from repro.routing.selfstab_bfs import SelfStabilizingBFSRouting
from repro.routing.corruption import (
    corrupt_random,
    corrupt_with_cycle,
    corrupt_worst_case,
)
from repro.routing.analysis import (
    next_hop_cycles,
    routing_is_correct,
    routing_errors,
)

__all__ = [
    "RoutingService",
    "StaticRouting",
    "SelfStabilizingBFSRouting",
    "corrupt_random",
    "corrupt_with_cycle",
    "corrupt_worst_case",
    "next_hop_cycles",
    "routing_is_correct",
    "routing_errors",
]
