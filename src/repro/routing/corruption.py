"""Adversarial initial routing states.

The paper quantifies over *arbitrary* initial configurations.  These helpers
scramble a :class:`~repro.routing.selfstab_bfs.SelfStabilizingBFSRouting`
instance into domain-valid garbage (next hops are always neighbors,
distances always in range — the usual state-model convention).  All are
seeded and deterministic.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence

from repro.routing.selfstab_bfs import SelfStabilizingBFSRouting
from repro.types import DestId, ProcId


def corrupt_random(
    routing: SelfStabilizingBFSRouting,
    seed: int,
    fraction: float = 1.0,
    destinations: Optional[Iterable[DestId]] = None,
) -> int:
    """Randomize a fraction of table entries; returns how many were hit.

    Every selected entry gets an independent uniformly random distance in
    ``{0..n-1}`` and a uniformly random *neighbor* as next hop (including
    entries at the destination itself — its locally-checkable rule will
    repair them first).
    """
    if not (0.0 <= fraction <= 1.0):
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rng = random.Random(seed)
    net = routing.network
    dests = list(destinations) if destinations is not None else list(net.processors())
    hit = 0
    for d in dests:
        for p in net.processors():
            if rng.random() >= fraction:
                continue
            routing.dist[d][p] = rng.randrange(net.n)
            routing.hop[d][p] = rng.choice(net.neighbors(p))
            hit += 1
    routing.invalidate()
    return hit


def corrupt_with_cycle(
    routing: SelfStabilizingBFSRouting,
    dest: DestId,
    cycle: Sequence[ProcId],
) -> None:
    """Point each processor of ``cycle`` at the next one (mod length) for
    destination ``dest`` — the corrupted-routing loop of Figure 3.

    Every consecutive pair must be an edge of the network.  Distances along
    the cycle are set to a plausible-looking descending ramp so the entries
    are not locally suspicious.
    """
    net = routing.network
    k = len(cycle)
    if k < 2:
        raise ValueError("a routing cycle needs at least 2 processors")
    for i, p in enumerate(cycle):
        q = cycle[(i + 1) % k]
        if not net.are_neighbors(p, q):
            raise ValueError(f"cycle step {p} -> {q} is not an edge")
        if p == dest:
            raise ValueError("the destination cannot be part of its own cycle")
        routing.hop[dest][p] = q
        routing.dist[dest][p] = max(1, (net.n - 1) - i % max(net.n - 1, 1))
    routing.invalidate()


def corrupt_worst_case(
    routing: SelfStabilizingBFSRouting, seed: int
) -> None:
    """Adversarial whole-table corruption: for every destination, point every
    processor *away* from the destination when possible (at its farthest
    neighbor), with minimal distances — maximizing both the repair work for
    ``A`` and the misrouting SSMFP must survive.
    """
    rng = random.Random(seed)
    net = routing.network
    true_dist = routing._true_dist  # ground truth, adversary is omniscient
    for d in net.processors():
        td = true_dist[d]
        for p in net.processors():
            neighbors = net.neighbors(p)
            worst = max(neighbors, key=lambda q: (td[q], q))
            routing.hop[d][p] = worst
            routing.dist[d][p] = rng.randrange(1, max(net.n, 2))
        # The destination's own entry is corrupted too.
        routing.dist[d][d] = rng.randrange(1, max(net.n, 2))
        routing.hop[d][d] = rng.choice(net.neighbors(d))
    routing.invalidate()
