"""Lazily materialized per-destination table rows.

Both routing providers keep per-destination rows (``dist``/``hop`` for the
self-stabilizing protocol, the BFS parent row for the static tables) whose
*default* content is computable on demand — one BFS per destination.  At
production scale the destination space is huge and mostly idle, so the
rows are materialized only when first touched: an absent row reads exactly
as its fill function would produce it, which for routing means "the
converged fixpoint" — the same absent≡clean invariant the forwarding
buffers rely on.

``LazyRows`` deliberately hands out the **real mutable list** on ``[d]``
access (not a copy, not a read-only view): the corruption helpers and
tests write ``routing.dist[d][p] = ...`` directly, and those writes must
land in the store.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Set, Tuple, TypeVar

T = TypeVar("T")


class LazyRows:
    """``rows[d]`` — get-or-create the row for destination ``d``.

    The fill function runs once per destination; the returned list is
    cached and shared with every subsequent access, so in-place mutations
    persist.  ``peek``/``materialized`` never materialize anything, and
    ``evict`` drops a row so the next access re-fills it fresh.
    """

    __slots__ = ("_rows", "_fill")

    def __init__(self, fill: Callable[[int], List[T]]) -> None:
        self._rows: Dict[int, List[T]] = {}
        self._fill = fill

    def __getitem__(self, d: int) -> List[T]:
        row = self._rows.get(d)
        if row is None:
            row = self._rows[d] = self._fill(d)
        return row

    def peek(self, d: int):
        """The materialized row or None — never fills."""
        return self._rows.get(d)

    def evict(self, d: int) -> None:
        """Forget the row; the next access re-runs the fill function."""
        self._rows.pop(d, None)

    def materialized(self) -> Set[int]:
        """Destinations with a materialized row (copy, safe to mutate)."""
        return set(self._rows)

    def items(self) -> Iterator[Tuple[int, List[T]]]:
        """Materialized ``(d, row)`` pairs (unordered)."""
        return iter(self._rows.items())

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, d: int) -> bool:
        return d in self._rows

    def __eq__(self, other: object) -> bool:
        """Logical equality: two tables are equal iff every row — absent
        rows read through their fill functions — compares equal.  Only the
        union of materialized rows needs examining: a row absent on both
        sides is fill-identical by determinism of the fill."""
        if not isinstance(other, LazyRows):
            return NotImplemented
        for d in self.materialized() | other.materialized():
            if self[d] != other[d]:
                return False
        return True
