"""Correct, constant routing tables (the ``R_A = 0`` regime).

:class:`StaticRouting` computes, once, for every destination ``d``, the BFS
tree ``T_d`` with deterministic smallest-identity tie-breaking — the same
trees the self-stabilizing protocol converges to — and serves ``nextHop``
from it.  Used for the Proposition-1 experiments (routing correct from the
initial configuration) and as the ground truth the analysis module compares
live tables against.
"""

from __future__ import annotations

from typing import List

from repro.network.graph import Network
from repro.network.properties import bfs_tree
from repro.routing.lazyrows import LazyRows
from repro.routing.table import RoutingService
from repro.types import DestId, ProcId


class StaticRouting(RoutingService):
    """Immutable correct tables for a network.

    ``next_hop(p, d)`` is the parent of ``p`` in the BFS tree rooted at
    ``d`` (smallest-id tie-break), i.e. a neighbor of ``p`` strictly closer
    to ``d``; ``next_hop(d, d) == d``.

    Rows are computed lazily, one BFS per destination on first lookup, and
    cached: a node that only ever routes toward a handful of destinations
    pays O(live destinations × n) memory, not O(n²) up front.  The result
    is identical to the eager table — the trees are deterministic.
    """

    # Immutable tables: "every mutation is reported" holds vacuously.
    notifies_mutations = True

    def __init__(self, net: Network) -> None:
        self._net = net
        # _hop[d][p] = parent of p in T_d, materialized per destination.
        self._hop = LazyRows(self._tree_row)

    def _tree_row(self, d: DestId) -> List[ProcId]:
        parent = bfs_tree(self._net, d)
        return [p if p == d else parent[p] for p in self._net.processors()]

    @property
    def network(self) -> Network:
        """The network the tables were computed for."""
        return self._net

    def __deepcopy__(self, memo) -> "StaticRouting":
        # Static tables are immutable; share across deep copies.
        return self

    def snapshot(self) -> tuple:
        """State vector: empty — static tables never change, so snapshot/
        restore of this provider is vacuous (the verifier's contract is
        satisfied without storing the tables per state)."""
        return ()

    def restore(self, vec: tuple) -> None:
        """No-op: immutable tables are always 'restored'."""

    def next_hop(self, p: ProcId, d: DestId) -> ProcId:
        return self._hop[d][p]

    def is_correct(self) -> bool:
        return True
