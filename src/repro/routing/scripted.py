"""Scripted routing tables for figure replays.

The paper's Figure-3 walkthrough leaves the routing algorithm ``A``
abstract: tables start corrupted, SSMFP executes several moves, and "the
routing tables are repaired during the next step".  A concrete
self-stabilizing ``A`` composed with priority would mask those SSMFP moves
(the corruption of the example is locally detectable, so ``A`` would be
enabled at the faulty processors from step 0).  :class:`ScriptedRouting`
stands in for ``A`` in replays: it serves corrupted entries until the
harness calls :meth:`repair_all` at exactly the step the figure repairs
them.  Every non-replay test and experiment uses the real
:class:`~repro.routing.selfstab_bfs.SelfStabilizingBFSRouting` instead.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.network.graph import Network
from repro.routing.static import StaticRouting
from repro.routing.table import RoutingService
from repro.types import DestId, ProcId


class ScriptedRouting(RoutingService):
    """Correct tables plus externally scripted overrides."""

    notifies_mutations = True

    def __init__(self, net: Network) -> None:
        self._net = net
        self._static = StaticRouting(net)
        self._overrides: Dict[Tuple[ProcId, DestId], ProcId] = {}

    @property
    def network(self) -> Network:
        """The network the tables route."""
        return self._net

    def set_hop(self, p: ProcId, d: DestId, q: ProcId) -> None:
        """Corrupt one entry; ``q`` must be a neighbor of ``p``."""
        if q not in self._net.neighbors(p):
            raise ValueError(f"{q} is not a neighbor of {p}")
        self._overrides[(p, d)] = q
        self._notify_entry(p, d)

    def repair(self, p: ProcId, d: DestId) -> None:
        """Remove one override (that entry reads correct again)."""
        if self._overrides.pop((p, d), None) is not None:
            self._notify_entry(p, d)

    def repair_all(self) -> None:
        """The figure's "routing tables are repaired" moment."""
        repaired = list(self._overrides)
        self._overrides.clear()
        for p, d in repaired:
            self._notify_entry(p, d)

    def next_hop(self, p: ProcId, d: DestId) -> ProcId:
        return self._overrides.get((p, d), self._static.next_hop(p, d))

    def is_correct(self) -> bool:
        return not self._overrides
