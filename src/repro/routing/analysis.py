"""Analysis of routing states: correctness, cycles, stabilization time.

These helpers look at tables from the outside (ground truth available); the
protocols themselves never call them.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.network.graph import Network
from repro.network.properties import all_pairs_distances
from repro.routing.table import RoutingService
from repro.types import DestId, ProcId


def routing_errors(net: Network, routing: RoutingService) -> List[str]:
    """Human-readable list of table entries not on minimal paths.

    An entry ``nextHop_p(d) = q`` is correct when ``q`` is a neighbor of
    ``p`` with ``dist(q, d) == dist(p, d) - 1`` (the paper assumes ``A``
    induces minimal paths).  Empty list == correct tables.
    """
    true_dist = all_pairs_distances(net)
    problems: List[str] = []
    for d in net.processors():
        td = true_dist[d]
        for p in net.processors():
            if p == d:
                continue
            q = routing.next_hop(p, d)
            if q not in net.neighbors(p):
                problems.append(f"nextHop_{p}({d}) = {q} is not a neighbor of {p}")
            elif td[q] != td[p] - 1:
                problems.append(
                    f"nextHop_{p}({d}) = {q} not on a minimal path "
                    f"(dist({q},{d})={td[q]}, dist({p},{d})={td[p]})"
                )
    return problems


def routing_is_correct(net: Network, routing: RoutingService) -> bool:
    """True iff every entry lies on a minimal path."""
    return not routing_errors(net, routing)


def next_hop_cycles(
    net: Network, routing: RoutingService, dest: DestId
) -> List[List[ProcId]]:
    """All directed cycles of the functional graph ``p -> nextHop_p(dest)``
    (excluding the destination's trivial self-entry).

    Corrupted tables typically contain such cycles — the situation Figure 3
    starts from; correct tables never do.
    """
    n = net.n
    color = [0] * n  # 0 unvisited, 1 on stack, 2 done
    cycles: List[List[ProcId]] = []
    for start in net.processors():
        if color[start] != 0 or start == dest:
            continue
        path: List[ProcId] = []
        p = start
        while True:
            if p == dest or color[p] == 2:
                break
            if color[p] == 1:
                # Found a cycle: the suffix of `path` starting at p.
                idx = path.index(p)
                cycles.append(path[idx:])
                break
            color[p] = 1
            path.append(p)
            p = routing.next_hop(p, dest)
        for q in path:
            color[q] = 2
    return cycles


def measure_stabilization_rounds(
    run_round: Callable[[], None],
    is_correct: Callable[[], bool],
    max_rounds: int = 10_000,
) -> Optional[int]:
    """Drive ``run_round`` until ``is_correct`` holds; returns the number of
    calls made (the empirical ``R_A``), or None if the budget is exhausted.

    Generic so experiments can plug any execution driver.
    """
    for k in range(max_rounds + 1):
        if is_correct():
            return k
        run_round()
    return None
