"""A self-stabilizing silent routing protocol (the paper's algorithm ``A``).

The paper assumes the existence of a self-stabilizing silent algorithm
computing routing tables along minimal paths (citing Huang-Chen and Dolev).
This module implements the classic per-destination BFS distance-vector
protocol in the state model:

Variables (per processor ``p``, destination ``d``):
    ``dist_p(d) ∈ {0..n-1}`` and ``hop_p(d) ∈ N_p ∪ {p}``.

Rules:
    * ``RTself`` (at ``p == d``): if ``dist != 0`` or ``hop != p``, set
      ``dist := 0, hop := p``.  Purely local; once executed it is never
      enabled again — the destination's own entry is *monotonically*
      correct, which the forwarding safety argument relies on.
    * ``RTfix`` (at ``p != d``): with ``best = min_{q∈N_p} dist_q(d)`` and
      ``bh`` the smallest-identity neighbor attaining it, if
      ``dist_p(d) != min(best+1, n-1)`` or ``hop_p(d) != bh``, adopt both.

Under any weakly fair daemon the protocol converges in O(n) rounds to the
exact BFS distances with smallest-identity parent tie-break (the same
fixpoint :class:`~repro.routing.static.StaticRouting` computes), after which
no rule is enabled (*silent*).  ``next_hop`` always returns a domain-valid
value, even from corrupted states.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.network.graph import Network
from repro.network.properties import bfs_distances
from repro.routing.lazyrows import LazyRows
from repro.routing.table import RoutingService
from repro.statemodel.action import Action
from repro.statemodel.components import ComponentDirtyCache
from repro.statemodel.protocol import Protocol
from repro.statemodel.snapshot import StateVector
from repro.types import DestId, ProcId


class SelfStabilizingBFSRouting(Protocol, RoutingService):
    """Self-stabilizing BFS routing tables for every destination.

    The instance starts *converged* (correct tables); use the functions in
    :mod:`repro.routing.corruption` to scramble it into an adversarial
    initial configuration (they call :meth:`invalidate` so the incremental
    engine re-scans).

    Like SSMFP, the protocol is ``n`` mutually independent per-destination
    algorithms: RTself/RTfix at ``(p, d)`` read only ``dist(d)`` entries in
    ``p``'s closed neighborhood.  It therefore keeps the same per-component
    action cache (:mod:`repro.statemodel.components`): a table write at
    ``p`` for destination ``d`` dirties only component ``d`` in ``N_p ∪
    {p}`` instead of forcing all ``n`` destinations of those processors to
    re-evaluate.
    """

    name = "A"
    notifies_mutations = True
    tracks_components = True

    def __init__(self, net: Network) -> None:
        self._net = net
        n = net.n
        self._cap = max(n - 1, 1)
        # dist[d][p], hop[d][p]; logically initialized at the correct
        # fixpoint, but *lazily*: a row materializes (at the fixpoint, one
        # BFS) only when first read or written, and an absent row reads as
        # converged — O(live destinations × n) memory instead of O(n²).
        self._true_dist = LazyRows(lambda d: bfs_distances(net, d))
        self.dist: LazyRows = LazyRows(self._fixpoint_dist_row)
        self.hop: LazyRows = LazyRows(self._fixpoint_hop_row)
        # Incremental-engine bookkeeping.  The all-dirty regime is the safe
        # initial state (external code may have scrambled the tables) and
        # the fallback after :meth:`invalidate`; it ends — and the component
        # cache starts being consulted — only once the simulator drains
        # :meth:`dirty_after`.
        self._all_dirty = True
        self._components = ComponentDirtyCache(n)
        self.component_evals = 0
        #: Closed neighborhood of every processor, precomputed.
        self._nbhd = [(p, *net.neighbors(p)) for p in net.processors()]

    def _fixpoint_dist_row(self, d: DestId) -> List[int]:
        """The converged distance row for destination ``d``."""
        return list(self._true_dist[d])

    def _fixpoint_hop_row(self, d: DestId) -> List[ProcId]:
        """The converged hop row for ``d`` (smallest-id parent tie-break)."""
        net = self._net
        td = self._true_dist[d]
        row: List[ProcId] = []
        for p in net.processors():
            if p == d:
                row.append(p)
            else:
                row.append(min(q for q in net.neighbors(p) if td[q] == td[p] - 1))
        return row

    def _touched_destinations(self) -> Set[DestId]:
        """Destinations with any materialized table row — the only ones
        that can deviate from the fixpoint (direct writes materialize)."""
        return self.dist.materialized() | self.hop.materialized()

    # -- incremental-engine hooks -------------------------------------------

    def invalidate(self) -> None:
        """Declare the whole table externally rewritten: every guard of this
        protocol goes dirty and every observer (e.g. SSMFP's ``next_hop``
        cache) is told to drop derived state.  The corruption helpers and
        the fault injector call this after writing ``dist``/``hop`` rows
        directly."""
        self._all_dirty = True
        self._notify_all()

    def _mark_dirty(self, p: ProcId, d: DestId) -> None:
        """RTfix at ``q`` for destination ``d`` reads ``dist_r(d)`` of every
        neighbor ``r``, so a write at ``(p, d)`` dirties component ``d`` in
        the closed neighborhood of ``p`` — and nothing else."""
        if not self._all_dirty:
            self._components.mark_many(self._nbhd[p], d)

    def dirty_after(self, selection) -> Optional[Set[ProcId]]:
        if self._all_dirty:
            self._all_dirty = False
            self._components.invalidate_all()
            return None
        # Processor projection of the component dirt; reconciled lazily in
        # :meth:`enabled_actions` (see SSMFP for the masking argument).
        return set(self._components.dirty_pids)

    # -- RoutingService ------------------------------------------------------

    @property
    def network(self) -> Network:
        """The network the protocol runs on."""
        return self._net

    def next_hop(self, p: ProcId, d: DestId) -> ProcId:
        return self.hop[d][p]

    def is_correct(self) -> bool:
        """True iff every entry equals the converged fixpoint (correct
        distance, smallest-id closer neighbor).  Only materialized rows are
        examined: an absent row *is* the fixpoint by construction."""
        net = self._net
        for d in sorted(self._touched_destinations()):
            td = self._true_dist[d]
            dist_row, hop_row = self.dist[d], self.hop[d]
            for p in net.processors():
                if p == d:
                    if dist_row[p] != 0 or hop_row[p] != p:
                        return False
                    continue
                if dist_row[p] != td[p]:
                    return False
                if hop_row[p] != min(
                    q for q in net.neighbors(p) if td[q] == td[p] - 1
                ):
                    return False
        return True

    # -- Protocol --------------------------------------------------------------

    def _target(self, p: ProcId, d: DestId) -> Tuple[int, ProcId]:
        """The (dist, hop) pair RTfix would adopt at ``p`` for ``d``."""
        best = self._cap
        bh = p
        for q in self._net.neighbors(p):
            dq = self.dist[d][q]
            if dq < best:
                best = dq
                bh = q
        # With best == cap no neighbor improves; keep a domain-valid hop
        # (smallest neighbor) so next_hop never leaves N_p.
        if bh == p:
            bh = self._net.neighbors(p)[0]
        return min(best + 1, self._cap), bh

    def _eval_component(self, pid: ProcId, d: DestId) -> List[Action]:
        """RTself/RTfix at the single component ``(pid, d)``."""
        if self.dist.peek(d) is None and self.hop.peek(d) is None:
            # Unmaterialized row ≡ converged fixpoint: silent, no rule
            # enabled — and evaluating it must not materialize anything.
            return []
        if pid == d:
            if self.dist[d][pid] != 0 or self.hop[d][pid] != pid:
                return [self._make_self_action(pid, d)]
            return []
        new_dist, new_hop = self._target(pid, d)
        if self.dist[d][pid] != new_dist or self.hop[d][pid] != new_hop:
            return [self._make_fix_action(pid, d, new_dist, new_hop)]
        return []

    def _scan_actions(self, pid: ProcId, count: bool) -> List[Action]:
        """Classic scan over the destination components that can possibly
        be enabled — the materialized rows (ascending, as the dense scan
        examined them); every unmaterialized row is at the fixpoint and
        silent by construction."""
        dests = sorted(self._touched_destinations())
        if count:
            self.component_evals += len(dests)
        actions: List[Action] = []
        for d in dests:
            actions.extend(self._eval_component(pid, d))
        return actions

    def enabled_actions(self, pid: ProcId) -> List[Action]:
        if self._all_dirty:
            return self._scan_actions(pid, count=True)
        cache = self._components
        if not cache.valid[pid]:
            entries = cache.entries[pid]
            entries.clear()
            dests = sorted(self._touched_destinations())
            self.component_evals += len(dests)
            for d in dests:
                acts = self._eval_component(pid, d)
                if acts:
                    entries[d] = acts
            cache.dirty[pid].clear()
            cache.valid[pid] = True
        else:
            dirty = cache.dirty.get(pid)
            if dirty:
                entries = cache.entries[pid]
                self.component_evals += len(dirty)
                for d in dirty:
                    acts = self._eval_component(pid, d)
                    if acts:
                        entries[d] = acts
                    else:
                        entries.pop(d, None)
                dirty.clear()
        cache.dirty_pids.discard(pid)
        return cache.assemble(pid)

    def enabled_actions_fresh(self, pid: ProcId) -> List[Action]:
        """The ``debug_check`` oracle: always a full fresh scan, no caches,
        no counting."""
        return self._scan_actions(pid, count=False)

    def _make_self_action(self, pid: ProcId, d: DestId) -> Action:
        def effect() -> None:
            self._write(d, pid, 0, pid)

        return Action(
            pid=pid, rule="RTself", protocol=self.name, effect=effect,
            info={"dest": d},
        )

    def _make_fix_action(
        self, pid: ProcId, d: DestId, new_dist: int, new_hop: ProcId
    ) -> Action:
        def effect() -> None:
            self._write(d, pid, new_dist, new_hop)

        return Action(
            pid=pid, rule="RTfix", protocol=self.name, effect=effect,
            info={"dest": d, "dist": new_dist, "hop": new_hop},
        )

    def _write(self, d: DestId, p: ProcId, new_dist: int, new_hop: ProcId) -> None:
        """Apply one table write, feeding both dirty channels: this
        protocol's own guards (closed neighborhood) and, when the hop
        actually moved, the observers reading ``next_hop``."""
        hop_changed = self.hop[d][p] != new_hop
        self.dist[d][p] = new_dist
        self.hop[d][p] = new_hop
        self._mark_dirty(p, d)
        if hop_changed:
            self._notify_entry(p, d)

    def dump(self) -> Dict[str, object]:
        """Materialized rows only — an absent destination is at its
        fixpoint and contributes nothing."""
        return {
            "dist": {d: list(self.dist[d]) for d in sorted(self.dist.materialized())},
            "hop": {d: list(self.hop[d]) for d in sorted(self.hop.materialized())},
        }

    # -- snapshot/restore ----------------------------------------------------

    def snapshot(self) -> StateVector:
        """Sparse canonical state vector: one ``(d, dist_row, hop_row)``
        entry per destination whose row deviates from the converged
        fixpoint, ascending.  Canonical: a materialized-but-converged row
        serializes identically to an absent one, so two differently
        materialized instances of the same logical table produce the same
        vector.  (The dirty bookkeeping is derived state, not captured.)"""
        entries = []
        for d in sorted(self._touched_destinations()):
            dist_row, hop_row = self.dist[d], self.hop[d]
            if dist_row == self._fixpoint_dist_row(d) and hop_row == self._fixpoint_hop_row(d):
                continue
            entries.append((d, tuple(dist_row), tuple(hop_row)))
        return tuple(entries)

    def restore(self, vec: StateVector) -> None:
        """Diff-restore through :meth:`_write`, so both dirty channels —
        this protocol's own guards and the ``next_hop`` observers — see
        exactly the entries that changed.  Rows absent from the vector go
        back to the fixpoint and are then evicted (quiescence: a converged
        row costs no memory again)."""
        target = {d: (dist_row, hop_row) for d, dist_row, hop_row in vec}
        n = self._net.n
        for d in sorted(self._touched_destinations() - set(target)):
            fix_dist = self._fixpoint_dist_row(d)
            fix_hop = self._fixpoint_hop_row(d)
            dist_row, hop_row = self.dist[d], self.hop[d]
            for p in range(n):
                if dist_row[p] != fix_dist[p] or hop_row[p] != fix_hop[p]:
                    self._write(d, p, fix_dist[p], fix_hop[p])
            self.dist.evict(d)
            self.hop.evict(d)
        for d in sorted(target):
            new_dist, new_hop = target[d]
            dist_row, hop_row = self.dist[d], self.hop[d]
            for p in range(n):
                if dist_row[p] != new_dist[p] or hop_row[p] != new_hop[p]:
                    self._write(d, p, new_dist[p], new_hop[p])
