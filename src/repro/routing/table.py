"""The routing interface consumed by forwarding protocols.

SSMFP reads routing information only through ``nextHop_p(d)`` (the paper's
procedure of the same name).  Any routing provider — static tables, the
self-stabilizing BFS protocol, or a test double — implements
:class:`RoutingService`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.types import DestId, ProcId


class RoutingService(ABC):
    """Source of ``nextHop_p(d)`` values.

    The contract matching the paper's model:

    * for ``p != d``, :meth:`next_hop` returns a *neighbor* of ``p`` (the
      value may be wrong while tables are corrupted, but it is always
      domain-valid — the usual state-model convention that variables hold
      type-correct garbage);
    * for ``p == d`` the value is unused by the forwarding rules (R4 guards
      on ``p != d``); providers return ``p`` itself by convention.
    """

    @abstractmethod
    def next_hop(self, p: ProcId, d: DestId) -> ProcId:
        """The neighbor ``p`` currently believes leads toward ``d``."""

    @abstractmethod
    def is_correct(self) -> bool:
        """True iff every table entry lies on a *minimal* path (ground
        truth); used by analysis and halting predicates, never by the
        protocols themselves."""
