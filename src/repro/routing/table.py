"""The routing interface consumed by forwarding protocols.

SSMFP reads routing information only through ``nextHop_p(d)`` (the paper's
procedure of the same name).  Any routing provider — static tables, the
self-stabilizing BFS protocol, or a test double — implements
:class:`RoutingService`.

Change observation
------------------
The incremental engine caches ``next_hop`` values and enabled-action sets,
so it must learn when a table entry moves.  :class:`RoutingService` carries
a lightweight observer mechanism: consumers register a callback with
:meth:`add_observer`; providers that mutate their tables call
:meth:`_notify_entry` per changed entry (or :meth:`_notify_all` for bulk
rewrites) and advertise the discipline with ``notifies_mutations = True``.
Providers that leave the flag False (the safe default for out-of-tree
subclasses) simply disable incremental caching in their consumers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional

from repro.types import DestId, ProcId

#: Observer callback: ``(p, d)`` for a single rewritten entry
#: ``nextHop_p(d)``; ``(None, None)`` when the whole table may have changed.
RoutingObserver = Callable[[Optional[ProcId], Optional[DestId]], None]


class RoutingService(ABC):
    """Source of ``nextHop_p(d)`` values.

    The contract matching the paper's model:

    * for ``p != d``, :meth:`next_hop` returns a *neighbor* of ``p`` (the
      value may be wrong while tables are corrupted, but it is always
      domain-valid — the usual state-model convention that variables hold
      type-correct garbage);
    * for ``p == d`` the value is unused by the forwarding rules (R4 guards
      on ``p != d``); providers return ``p`` itself by convention.
    """

    #: True iff every mutation of this provider's tables is reported to the
    #: registered observers.  Consumers may cache ``next_hop`` values and
    #: derived state only when this holds.
    notifies_mutations: bool = False

    @abstractmethod
    def next_hop(self, p: ProcId, d: DestId) -> ProcId:
        """The neighbor ``p`` currently believes leads toward ``d``."""

    @abstractmethod
    def is_correct(self) -> bool:
        """True iff every table entry lies on a *minimal* path (ground
        truth); used by analysis and halting predicates, never by the
        protocols themselves."""

    # -- change observation (storage is lazy so subclasses need not call
    # -- super().__init__) ---------------------------------------------------

    def add_observer(self, observer: RoutingObserver) -> None:
        """Register a table-change observer."""
        observers: List[RoutingObserver]
        observers = getattr(self, "_routing_observers", None)  # type: ignore[assignment]
        if observers is None:
            observers = []
            setattr(self, "_routing_observers", observers)
        observers.append(observer)

    def _notify_entry(self, p: ProcId, d: DestId) -> None:
        """Report that ``nextHop_p(d)`` changed."""
        for observer in getattr(self, "_routing_observers", ()):
            observer(p, d)

    def _notify_all(self) -> None:
        """Report a bulk rewrite (corruption, repair-all)."""
        for observer in getattr(self, "_routing_observers", ()):
            observer(None, None)
