"""Workload generators.

A :class:`Workload` is a finite, deterministic list of submissions
``(at_step, source, payload, dest)`` that the simulation runner feeds into
the higher layer.  Generators cover the traffic patterns the experiments
need: uniform random, permutation (every processor sends to a distinct
peer), hotspot (everyone converges on one destination — the contention
pattern behind the Δ^D worst case), bursts, a single probe message, and the
adversarial pattern where consecutive messages carry *identical payloads*
(the duplication/merge hazard the color flag exists for).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Tuple

from repro.errors import ConfigurationError
from repro.types import DestId, ProcId

#: One submission: (step at which it is handed to the outbox, source,
#: payload, destination).
Submission = Tuple[int, ProcId, Any, DestId]


@dataclass
class Workload:
    """A named, finite list of submissions sorted by step."""

    name: str
    submissions: List[Submission] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.submissions.sort(key=lambda s: (s[0], s[1]))
        for _, src, _, dest in self.submissions:
            if src == dest:
                raise ConfigurationError(
                    "workloads must not contain self-addressed messages "
                    f"(source == dest == {src}); the higher layer delivers "
                    "those locally without entering the network"
                )

    @property
    def size(self) -> int:
        """Total number of submissions."""
        return len(self.submissions)

    def due(self, step: int) -> List[Submission]:
        """Submissions scheduled exactly at ``step``."""
        return [s for s in self.submissions if s[0] == step]


def _other(rng: random.Random, n: int, src: ProcId) -> DestId:
    dest = rng.randrange(n - 1)
    return dest if dest < src else dest + 1


def single_message_workload(source: ProcId, dest: DestId, payload: Any = "m") -> Workload:
    """One probe message at step 0 — the Proposition-5 measurement unit."""
    return Workload("single", [(0, source, payload, dest)])


def uniform_workload(n: int, count: int, seed: int, spread_steps: int = 0) -> Workload:
    """``count`` messages with uniformly random distinct (source, dest)
    pairs, submitted over ``spread_steps + 1`` initial steps."""
    if n < 2:
        raise ConfigurationError("uniform workload needs n >= 2")
    rng = random.Random(seed)
    subs: List[Submission] = []
    for i in range(count):
        src = rng.randrange(n)
        dest = _other(rng, n, src)
        at = rng.randrange(spread_steps + 1)
        subs.append((at, src, f"u{i}", dest))
    return Workload("uniform", subs)


def permutation_workload(n: int, seed: int) -> Workload:
    """Every processor sends one message; destinations form a random
    derangement-ish permutation (fixed points redirected)."""
    if n < 2:
        raise ConfigurationError("permutation workload needs n >= 2")
    rng = random.Random(seed)
    perm = list(range(n))
    rng.shuffle(perm)
    subs: List[Submission] = []
    for src in range(n):
        dest = perm[src]
        if dest == src:
            dest = perm[(src + 1) % n]
            if dest == src:  # n == 1 impossible here; double fixed point
                dest = (src + 1) % n
        subs.append((0, src, f"p{src}", dest))
    return Workload("permutation", subs)


def hotspot_workload(n: int, dest: DestId, per_source: int, seed: int) -> Workload:
    """Every other processor sends ``per_source`` messages to ``dest`` —
    maximal contention on one destination component."""
    if n < 2:
        raise ConfigurationError("hotspot workload needs n >= 2")
    subs: List[Submission] = []
    for src in range(n):
        if src == dest:
            continue
        for i in range(per_source):
            subs.append((0, src, f"h{src}.{i}", dest))
    return Workload("hotspot", subs)


def burst_workload(
    n: int, bursts: int, burst_size: int, gap: int, seed: int
) -> Workload:
    """``bursts`` waves of ``burst_size`` random messages, ``gap`` steps
    apart — exercises generation under a draining network."""
    if n < 2:
        raise ConfigurationError("burst workload needs n >= 2")
    rng = random.Random(seed)
    subs: List[Submission] = []
    for b in range(bursts):
        at = b * gap
        for i in range(burst_size):
            src = rng.randrange(n)
            dest = _other(rng, n, src)
            subs.append((at, src, f"b{b}.{i}", dest))
    return Workload("burst", subs)


def adversarial_same_payload_workload(
    source: ProcId, dest: DestId, count: int
) -> Workload:
    """``count`` consecutive messages from the same source to the same
    destination, all carrying the *identical* payload — the merge hazard the
    paper's color flag must defeat (exactly-once is then only checkable via
    hidden uids)."""
    if source == dest:
        raise ConfigurationError("source and dest must differ")
    return Workload(
        "same-payload", [(0, source, "dup", dest) for _ in range(count)]
    )
