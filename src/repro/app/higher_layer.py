"""The higher layer: outboxes, the ``request_p`` handshake, delivery sink.

Semantics follow §3.2 of the paper:

* the higher layer may set ``request_p`` to true only when it is false and a
  message is waiting; it then *blocks* until the protocol resets it (done by
  rule R1 when the message is generated);
* ``nextMessage_p`` / ``nextDestination_p`` expose the waiting message;
* ``deliver_p(m)`` hands a message up at its destination.

Storage is sparse: an outbox materializes when the first submission enters
it and is evicted once drained, and the ``request_p`` flags live in a set
of raised processors behind a list-like view — a processor that never
submits costs nothing, and the per-step raise sweep touches only live
outboxes instead of all ``n`` processors.

One deliberate substitution (documented in DESIGN.md): a message submitted
to *itself* (``dest == p``) is delivered locally at submission time and
never enters the network.  Point-to-point forwarding between distinct
endpoints is the paper's object; routing a self-addressed message through a
corrupted table would let the environment inject traffic the paper's proofs
never consider.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.statemodel.message import Message
from repro.statemodel.snapshot import StateVector
from repro.types import DestId, ProcId

#: A pending send: (payload, destination).
Pending = Tuple[Any, DestId]


class _RequestFlags:
    """List-like view of the raised-request set: ``flags[p]`` reads the
    flag, ``flags[p] = bool`` writes it (the liveness harness lowers flags
    out-of-band this way).  Memory is O(raised), not O(n)."""

    __slots__ = ("_raised",)

    def __init__(self) -> None:
        self._raised: Set[ProcId] = set()

    def __getitem__(self, p: ProcId) -> bool:
        return p in self._raised

    def __setitem__(self, p: ProcId, value: bool) -> None:
        if value:
            self._raised.add(p)
        else:
            self._raised.discard(p)

    def raised(self) -> Set[ProcId]:
        return self._raised


class HigherLayer:
    """Per-processor outboxes with the paper's blocking request handshake.

    Parameters
    ----------
    n:
        Number of processors.
    on_deliver:
        Optional callback ``(pid, message, step)`` invoked at every
        delivery, *in addition* to the internal log (the ledger hooks in
        here).
    """

    def __init__(
        self,
        n: int,
        on_deliver: Optional[Callable[[ProcId, Message, int], None]] = None,
    ) -> None:
        self._n = n
        #: Sparse outboxes: materialized while nonempty, evicted once
        #: drained.  An absent outbox reads as empty everywhere.
        self._outbox: Dict[ProcId, Deque[Pending]] = {}
        #: The shared variable ``request_p`` read by rule R1.
        self.request = _RequestFlags()
        self._on_deliver = on_deliver
        self._delivered: List[Tuple[ProcId, Message, int]] = []
        self._local_deliveries = 0
        #: ``p -> dest`` for every raised request — the incremental index
        #: behind :meth:`requested_destinations`.  Maintained by the raise
        #: (:meth:`before_step`) / lower (:meth:`consume_request`) pair;
        #: while ``request_p`` is raised the outbox head is stable (submits
        #: append, only ``consume_request`` pops), so the recorded ``dest``
        #: always equals ``nextDestination_p``.
        self._requested: Dict[ProcId, DestId] = {}
        self._on_request_change: Optional[
            Callable[[ProcId, Optional[DestId]], None]
        ] = None
        self._on_submit: Optional[
            Callable[[ProcId, Any, DestId, int], None]
        ] = None

    def bind_notifier(
        self, notify: Optional[Callable[[ProcId, Optional[DestId]], None]]
    ) -> None:
        """Install a hook called as ``notify(p, dest)`` whenever the
        ``request_p`` handshake changes observably — raised by
        :meth:`before_step` or lowered by :meth:`consume_request` — with
        ``dest`` the destination the change concerns.  The incremental
        engine uses it to dirty exactly the affected ``(p, d)`` component."""
        self._on_request_change = notify

    def bind_submit_notifier(
        self, notify: Optional[Callable[[ProcId, Any, DestId, int], None]]
    ) -> None:
        """Install a hook called as ``notify(p, payload, dest, step)`` for
        every submission that enters an outbox (self-addressed messages,
        delivered locally at submission time, are not reported — they
        never acquire a uid).  The message-lifecycle tracer subscribes
        here to stamp the ``submit`` end of each causal timeline."""
        self._on_submit = notify

    # -- submission ------------------------------------------------------------

    def submit(self, p: ProcId, payload: Any, dest: DestId, step: int = -1) -> None:
        """Queue a send of ``payload`` from ``p`` to ``dest``.

        Self-addressed messages are delivered locally immediately (see
        module docstring).
        """
        if not (0 <= p < self._n and 0 <= dest < self._n):
            raise ConfigurationError(
                f"submit({p} -> {dest}) out of range for n={self._n}"
            )
        if dest == p:
            self._local_deliveries += 1
            return
        box = self._outbox.get(p)
        if box is None:
            box = self._outbox[p] = deque()
        box.append((payload, dest))
        if self._on_submit is not None:
            self._on_submit(p, payload, dest, step)

    def pending_count(self, p: ProcId) -> int:
        """Messages still waiting in ``p``'s outbox (including the one a
        raised request refers to)."""
        box = self._outbox.get(p)
        return 0 if box is None else len(box)

    def total_pending(self) -> int:
        """Outstanding submissions across all processors."""
        return sum(len(box) for box in self._outbox.values())

    # -- the request handshake (rule R1's counterpart) ---------------------------

    def before_step(self, step: int) -> None:
        """Environment move: raise ``request_p`` wherever it is false and a
        message waits (the paper lets the higher layer do this at any time;
        doing it every step is the maximally eager environment).  Only live
        outboxes are examined — O(live), ascending so the notification
        order matches the dense sweep."""
        notify = self._on_request_change
        raised = self.request.raised()
        for p in sorted(self._outbox):
            if p not in raised:
                raised.add(p)
                dest = self._outbox[p][0][1]
                self._requested[p] = dest
                if notify is not None:
                    notify(p, dest)

    def next_message(self, p: ProcId) -> Any:
        """The paper's ``nextMessage_p`` macro (payload of the waiting
        message)."""
        return self._outbox[p][0][0]

    def next_destination(self, p: ProcId) -> Optional[DestId]:
        """The paper's ``nextDestination_p`` macro; None when nothing
        waits."""
        box = self._outbox.get(p)
        return box[0][1] if box else None

    def queued_destinations(self, p: ProcId) -> Tuple[DestId, ...]:
        """Destinations of ``p``'s queued submissions, head first — the
        verifier's partial-order reduction reads index 1 (the destination
        the request handshake will concern *after* the current head is
        generated)."""
        box = self._outbox.get(p)
        return tuple(item[1] for item in box) if box else ()

    def consume_request(self, p: ProcId) -> Pending:
        """Rule R1's write-back: pop the waiting message and lower
        ``request_p``.  Returns the (payload, dest) that was generated."""
        box = self._outbox.get(p)
        if not box:
            raise ConfigurationError(f"consume_request({p}) with empty outbox")
        item = box.popleft()
        if not box:
            del self._outbox[p]  # quiescence: drained outboxes are evicted
        self.request[p] = False
        self._requested.pop(p, None)
        if self._on_request_change is not None:
            self._on_request_change(p, item[1])
        return item

    def outboxes(self) -> Tuple[Tuple[ProcId, Tuple[Pending, ...]], ...]:
        """Immutable sparse view of every *nonempty* outbox as ``(p,
        items)`` ascending, head first — the public accessor the verifier's
        canonicalization and :meth:`snapshot` read instead of reaching into
        the private deques.  Canonical: empty outboxes (materialized or
        not) never appear."""
        return tuple(
            (p, tuple(self._outbox[p])) for p in sorted(self._outbox)
        )

    def live_sources(self) -> Set[ProcId]:
        """Processors with a materialized (nonempty) outbox — the memory
        footprint index used by tests and the scale bench."""
        return set(self._outbox)

    # -- snapshot/restore ----------------------------------------------------

    def snapshot(self) -> StateVector:
        """State vector: nonempty outboxes (sparse), raised ``request_p``
        flags (sparse, ascending), the raised-request index, the delivery
        log and the local-delivery count."""
        return (
            self.outboxes(),
            tuple(sorted(self.request.raised())),
            tuple(sorted(self._requested.items())),
            tuple(self._delivered),
            self._local_deliveries,
        )

    def restore(self, vec: StateVector) -> None:
        """Reinstate a previously captured :meth:`snapshot`.

        Guards read only ``request_p`` and the outbox *head* (destination
        and payload), so the change notifier fires per processor whose
        handshake-visible state differs — for both the destination it
        concerned before and the one it concerns now.  Only processors live
        on either side are examined."""
        outboxes, raised_vec, requested, delivered, local = vec
        notify = self._on_request_change
        target_boxes: Dict[ProcId, Tuple[Pending, ...]] = dict(outboxes)
        target_raised = set(raised_vec)
        raised = self.request.raised()
        for p in sorted(set(self._outbox) | set(target_boxes) | raised | target_raised):
            box = self._outbox.get(p)
            new_box = target_boxes.get(p, ())
            old = (p in raised, box[0] if box else None)
            new = (p in target_raised, new_box[0] if new_box else None)
            if (tuple(box) if box else ()) != new_box:
                if new_box:
                    self._outbox[p] = deque(new_box)
                else:
                    self._outbox.pop(p, None)
            self.request[p] = p in target_raised
            if notify is not None and old != new:
                old_dest = old[1][1] if old[1] is not None else None
                new_dest = new[1][1] if new[1] is not None else None
                if old_dest is not None and old_dest != new_dest:
                    notify(p, old_dest)
                if new_dest is not None:
                    notify(p, new_dest)
        self._requested = dict(requested)
        self._delivered = list(delivered)
        self._local_deliveries = local

    def requested_destinations(self) -> Set[DestId]:
        """Destinations some processor currently has a raised request for —
        O(raised requests), never an O(n) sweep of the request flags.

        Entries whose ``request_p`` was lowered out-of-band (a subclass
        bypassing :meth:`consume_request`) are filtered against the flag, so
        the index can only over-remember, never under-report a raised
        request."""
        request = self.request
        return {d for p, d in self._requested.items() if request[p]}

    # -- delivery ------------------------------------------------------------

    def deliver(self, p: ProcId, message: Message, step: int) -> None:
        """The paper's ``deliver_p(m)``: hand ``message`` to the application
        at ``p``."""
        self._delivered.append((p, message, step))
        if self._on_deliver is not None:
            self._on_deliver(p, message, step)

    @property
    def delivered(self) -> List[Tuple[ProcId, Message, int]]:
        """Every delivery so far: (processor, message, step)."""
        return self._delivered

    @property
    def local_deliveries(self) -> int:
        """Count of self-addressed submissions short-circuited locally."""
        return self._local_deliveries
