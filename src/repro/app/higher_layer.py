"""The higher layer: outboxes, the ``request_p`` handshake, delivery sink.

Semantics follow §3.2 of the paper:

* the higher layer may set ``request_p`` to true only when it is false and a
  message is waiting; it then *blocks* until the protocol resets it (done by
  rule R1 when the message is generated);
* ``nextMessage_p`` / ``nextDestination_p`` expose the waiting message;
* ``deliver_p(m)`` hands a message up at its destination.

One deliberate substitution (documented in DESIGN.md): a message submitted
to *itself* (``dest == p``) is delivered locally at submission time and
never enters the network.  Point-to-point forwarding between distinct
endpoints is the paper's object; routing a self-addressed message through a
corrupted table would let the environment inject traffic the paper's proofs
never consider.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.statemodel.message import Message
from repro.statemodel.snapshot import StateVector
from repro.types import DestId, ProcId

#: A pending send: (payload, destination).
Pending = Tuple[Any, DestId]


class HigherLayer:
    """Per-processor outboxes with the paper's blocking request handshake.

    Parameters
    ----------
    n:
        Number of processors.
    on_deliver:
        Optional callback ``(pid, message, step)`` invoked at every
        delivery, *in addition* to the internal log (the ledger hooks in
        here).
    """

    def __init__(
        self,
        n: int,
        on_deliver: Optional[Callable[[ProcId, Message, int], None]] = None,
    ) -> None:
        self._n = n
        self._outbox: List[Deque[Pending]] = [deque() for _ in range(n)]
        #: The shared variable ``request_p`` read by rule R1.
        self.request: List[bool] = [False] * n
        self._on_deliver = on_deliver
        self._delivered: List[Tuple[ProcId, Message, int]] = []
        self._local_deliveries = 0
        #: ``p -> dest`` for every raised request — the incremental index
        #: behind :meth:`requested_destinations`.  Maintained by the raise
        #: (:meth:`before_step`) / lower (:meth:`consume_request`) pair;
        #: while ``request_p`` is raised the outbox head is stable (submits
        #: append, only ``consume_request`` pops), so the recorded ``dest``
        #: always equals ``nextDestination_p``.
        self._requested: Dict[ProcId, DestId] = {}
        self._on_request_change: Optional[
            Callable[[ProcId, Optional[DestId]], None]
        ] = None
        self._on_submit: Optional[
            Callable[[ProcId, Any, DestId, int], None]
        ] = None

    def bind_notifier(
        self, notify: Optional[Callable[[ProcId, Optional[DestId]], None]]
    ) -> None:
        """Install a hook called as ``notify(p, dest)`` whenever the
        ``request_p`` handshake changes observably — raised by
        :meth:`before_step` or lowered by :meth:`consume_request` — with
        ``dest`` the destination the change concerns.  The incremental
        engine uses it to dirty exactly the affected ``(p, d)`` component."""
        self._on_request_change = notify

    def bind_submit_notifier(
        self, notify: Optional[Callable[[ProcId, Any, DestId, int], None]]
    ) -> None:
        """Install a hook called as ``notify(p, payload, dest, step)`` for
        every submission that enters an outbox (self-addressed messages,
        delivered locally at submission time, are not reported — they
        never acquire a uid).  The message-lifecycle tracer subscribes
        here to stamp the ``submit`` end of each causal timeline."""
        self._on_submit = notify

    # -- submission ------------------------------------------------------------

    def submit(self, p: ProcId, payload: Any, dest: DestId, step: int = -1) -> None:
        """Queue a send of ``payload`` from ``p`` to ``dest``.

        Self-addressed messages are delivered locally immediately (see
        module docstring).
        """
        if not (0 <= p < self._n and 0 <= dest < self._n):
            raise ConfigurationError(
                f"submit({p} -> {dest}) out of range for n={self._n}"
            )
        if dest == p:
            self._local_deliveries += 1
            return
        self._outbox[p].append((payload, dest))
        if self._on_submit is not None:
            self._on_submit(p, payload, dest, step)

    def pending_count(self, p: ProcId) -> int:
        """Messages still waiting in ``p``'s outbox (including the one a
        raised request refers to)."""
        return len(self._outbox[p])

    def total_pending(self) -> int:
        """Outstanding submissions across all processors."""
        return sum(len(box) for box in self._outbox)

    # -- the request handshake (rule R1's counterpart) ---------------------------

    def before_step(self, step: int) -> None:
        """Environment move: raise ``request_p`` wherever it is false and a
        message waits (the paper lets the higher layer do this at any time;
        doing it every step is the maximally eager environment)."""
        notify = self._on_request_change
        for p in range(self._n):
            if not self.request[p] and self._outbox[p]:
                self.request[p] = True
                dest = self._outbox[p][0][1]
                self._requested[p] = dest
                if notify is not None:
                    notify(p, dest)

    def next_message(self, p: ProcId) -> Any:
        """The paper's ``nextMessage_p`` macro (payload of the waiting
        message)."""
        return self._outbox[p][0][0]

    def next_destination(self, p: ProcId) -> Optional[DestId]:
        """The paper's ``nextDestination_p`` macro; None when nothing
        waits."""
        return self._outbox[p][0][1] if self._outbox[p] else None

    def consume_request(self, p: ProcId) -> Pending:
        """Rule R1's write-back: pop the waiting message and lower
        ``request_p``.  Returns the (payload, dest) that was generated."""
        if not self._outbox[p]:
            raise ConfigurationError(f"consume_request({p}) with empty outbox")
        item = self._outbox[p].popleft()
        self.request[p] = False
        self._requested.pop(p, None)
        if self._on_request_change is not None:
            self._on_request_change(p, item[1])
        return item

    def outboxes(self) -> Tuple[Tuple[Pending, ...], ...]:
        """Immutable view of every outbox, head first — the public accessor
        the verifier's canonicalization and :meth:`snapshot` read instead of
        reaching into the private deques."""
        return tuple(tuple(box) for box in self._outbox)

    # -- snapshot/restore ----------------------------------------------------

    def snapshot(self) -> StateVector:
        """State vector: outboxes, ``request_p`` flags, the raised-request
        index, the delivery log and the local-delivery count."""
        return (
            self.outboxes(),
            tuple(self.request),
            tuple(sorted(self._requested.items())),
            tuple(self._delivered),
            self._local_deliveries,
        )

    def restore(self, vec: StateVector) -> None:
        """Reinstate a previously captured :meth:`snapshot`.

        Guards read only ``request_p`` and the outbox *head* (destination
        and payload), so the change notifier fires per processor whose
        handshake-visible state differs — for both the destination it
        concerned before and the one it concerns now."""
        outboxes, request, requested, delivered, local = vec
        notify = self._on_request_change
        for p in range(self._n):
            box = self._outbox[p]
            new_box = outboxes[p]
            old = (self.request[p], box[0] if box else None)
            new = (request[p], new_box[0] if new_box else None)
            if tuple(box) != new_box:
                self._outbox[p] = deque(new_box)
            self.request[p] = request[p]
            if notify is not None and old != new:
                old_dest = old[1][1] if old[1] is not None else None
                new_dest = new[1][1] if new[1] is not None else None
                if old_dest is not None and old_dest != new_dest:
                    notify(p, old_dest)
                if new_dest is not None:
                    notify(p, new_dest)
        self._requested = dict(requested)
        self._delivered = list(delivered)
        self._local_deliveries = local

    def requested_destinations(self) -> Set[DestId]:
        """Destinations some processor currently has a raised request for —
        O(raised requests), never an O(n) sweep of the request flags.

        Entries whose ``request_p`` was lowered out-of-band (a subclass
        bypassing :meth:`consume_request`) are filtered against the flag, so
        the index can only over-remember, never under-report a raised
        request."""
        request = self.request
        return {d for p, d in self._requested.items() if request[p]}

    # -- delivery ------------------------------------------------------------

    def deliver(self, p: ProcId, message: Message, step: int) -> None:
        """The paper's ``deliver_p(m)``: hand ``message`` to the application
        at ``p``."""
        self._delivered.append((p, message, step))
        if self._on_deliver is not None:
            self._on_deliver(p, message, step)

    @property
    def delivered(self) -> List[Tuple[ProcId, Message, int]]:
        """Every delivery so far: (processor, message, step)."""
        return self._delivered

    @property
    def local_deliveries(self) -> int:
        """Count of self-addressed submissions short-circuited locally."""
        return self._local_deliveries
