"""Higher layer and workloads.

SSMFP talks to "the higher layer" through the shared boolean ``request_p``
and the macros ``nextMessage_p`` / ``nextDestination_p``, and hands received
messages up through ``deliver_p`` (§3.2).  This package models that layer —
per-processor outboxes with the paper's blocking request handshake and a
delivery sink — plus workload generators that fill the outboxes.
"""

from repro.app.higher_layer import HigherLayer
from repro.app.workload import (
    Workload,
    adversarial_same_payload_workload,
    burst_workload,
    hotspot_workload,
    permutation_workload,
    single_message_workload,
    uniform_workload,
)

__all__ = [
    "HigherLayer",
    "Workload",
    "adversarial_same_payload_workload",
    "burst_workload",
    "hotspot_workload",
    "permutation_workload",
    "single_message_workload",
    "uniform_workload",
]
