"""Uncontrolled store-and-forward: the deadlock motivation.

Each processor owns ``B`` interchangeable buffers shared by *all*
destinations (§2.2's model) and no controller restricts moves: a message is
generated into any free buffer, forwarded into any free buffer of the next
hop, and consumed at its destination.  Without the buffer-graph discipline,
a cycle of processors whose buffers are all full and whose messages all
want to move along the cycle is a **deadlock** — even with perfectly
correct routing tables.  The F1/overhead benches use this protocol to show
what the destination-based buffer graph buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.app.higher_layer import HigherLayer
from repro.core.ledger import DeliveryLedger
from repro.network.graph import Network
from repro.routing.table import RoutingService
from repro.statemodel.action import Action
from repro.statemodel.message import Message
from repro.statemodel.protocol import Protocol
from repro.types import DestId, ProcId


@dataclass(frozen=True)
class Packet:
    """A stored packet: payload, destination, hidden uid."""

    payload: Any
    dest: DestId
    uid: int
    valid: bool

    def as_message(self) -> Message:
        """Bridge to the ledger/higher-layer message shape."""
        return Message(
            payload=self.payload,
            last=0,
            color=0,
            dest=self.dest,
            uid=self.uid,
            valid=self.valid,
        )


class NaiveForwarding(Protocol):
    """Store-and-forward over a shared per-processor buffer pool, no
    controller."""

    name = "NAIVE"

    def __init__(
        self,
        net: Network,
        routing: RoutingService,
        higher_layer: HigherLayer,
        buffers_per_processor: int = 2,
        ledger: Optional[DeliveryLedger] = None,
    ) -> None:
        if buffers_per_processor < 1:
            raise ValueError("need at least one buffer per processor")
        self.net = net
        self.routing = routing
        self.hl = higher_layer
        self.ledger = ledger if ledger is not None else DeliveryLedger(strict=False)
        self.b = buffers_per_processor
        #: ``pool[p][i]`` — buffer i of processor p.
        self.pool: List[List[Optional[Packet]]] = [
            [None] * buffers_per_processor for _ in range(net.n)
        ]
        self._next_uid = 1
        self.current_step = 0

    def before_step(self, step: int) -> None:
        self.current_step = step
        self.hl.before_step(step)

    def _free_slot(self, p: ProcId) -> Optional[int]:
        for i, slot in enumerate(self.pool[p]):
            if slot is None:
                return i
        return None

    def enabled_actions(self, pid: ProcId) -> List[Action]:
        actions: List[Action] = []
        hl = self.hl
        free = self._free_slot(pid)

        # NG: generation into any free buffer.
        if hl.request[pid] and free is not None:
            dest = hl.next_destination(pid)
            if dest is not None:
                actions.append(self._generate_action(pid, dest, free))

        for i, pkt in enumerate(self.pool[pid]):
            if pkt is None:
                continue
            # NC: consumption.
            if pkt.dest == pid:
                actions.append(self._consume_action(pid, i, pkt))
                continue
            # NF: forwarding into a free buffer of the next hop.
            nh = self.routing.next_hop(pid, pkt.dest)
            slot = self._free_slot(nh)
            if slot is not None:
                actions.append(self._forward_action(pid, i, pkt, nh, slot))
        return actions

    def _generate_action(self, p: ProcId, dest: DestId, slot: int) -> Action:
        payload = self.hl.next_message(p)

        def effect() -> None:
            # Per-buffer arbitration: a concurrent same-step move may have
            # taken the slot; find another or abort (request stays up).
            target = slot if self.pool[p][slot] is None else self._free_slot(p)
            if target is None:
                return
            uid = self._next_uid
            self._next_uid += 1
            pkt = Packet(payload, dest, uid, True)
            self.pool[p][target] = pkt
            self.hl.consume_request(p)
            self.ledger.record_generated(
                Message(
                    payload=payload, last=p, color=0, dest=dest,
                    uid=uid, valid=True, source=p,
                )
            )

        return Action(
            pid=p, rule="NG", protocol=self.name, effect=effect,
            info={"dest": dest, "payload": payload},
        )

    def _forward_action(
        self, p: ProcId, i: int, pkt: Packet, nh: ProcId, slot: int
    ) -> Action:
        def effect() -> None:
            # Per-buffer arbitration: find a still-free slot at apply time.
            target = self._free_slot(nh)
            if target is None:
                return
            self.pool[nh][target] = pkt
            self.pool[p][i] = None

        return Action(
            pid=p, rule="NF", protocol=self.name, effect=effect,
            info={"dest": pkt.dest, "uid": pkt.uid, "to": nh},
        )

    def _consume_action(self, p: ProcId, i: int, pkt: Packet) -> Action:
        step = self.current_step

        def effect() -> None:
            self.pool[p][i] = None
            self.hl.deliver(p, pkt.as_message(), step)
            self.ledger.record_delivery(p, pkt.as_message(), step)

        return Action(
            pid=p, rule="NC", protocol=self.name, effect=effect,
            info={"dest": pkt.dest, "uid": pkt.uid},
        )

    # -- introspection -----------------------------------------------------------

    def network_is_empty(self) -> bool:
        """True iff every buffer of every pool is empty."""
        return all(slot is None for pool in self.pool for slot in pool)

    def is_deadlocked(self) -> bool:
        """True iff messages are stored but no action (anywhere) is enabled
        and nothing is waiting to generate — a true store-and-forward
        deadlock."""
        if self.network_is_empty():
            return False
        return all(not self.enabled_actions(p) for p in self.net.processors())

    def plant_packet(self, p: ProcId, slot: int, payload: Any, dest: DestId) -> None:
        """Plant an invalid packet (initial-configuration garbage)."""
        self.pool[p][slot] = Packet(payload, dest, -self._next_uid, False)
        self._next_uid += 1
