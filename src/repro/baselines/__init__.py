"""Baseline forwarding protocols.

* :class:`MerlinSchweitzerForwarding` — the classical fault-free
  destination-based scheme the paper builds on (Figure 1): one buffer per
  (processor, destination), copy-then-erase transmission, and the
  literature's (source-id, two-value flag) message identifier.  Correct and
  deadlock-free when routing tables are correct from the start; under
  corrupted/moving tables it loses and duplicates messages — the behavior
  SSMFP's colors and R4/R5 handshake eliminate.
* :class:`NaiveForwarding` — store-and-forward with a shared buffer pool
  and *no* controller: deadlocks under load even with correct tables (the
  classic motivation for buffer graphs).
"""

from repro.baselines.merlin_schweitzer import MerlinSchweitzerForwarding
from repro.baselines.naive import NaiveForwarding
from repro.baselines.orientation_forwarding import OrientationForwarding

__all__ = [
    "MerlinSchweitzerForwarding",
    "NaiveForwarding",
    "OrientationForwarding",
]
