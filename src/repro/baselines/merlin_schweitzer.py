"""The classical destination-based forwarding scheme (Merlin & Schweitzer).

This is the literature solution the paper's §3.1 describes for *correct*
routing tables: one buffer ``b_p(d)`` per (processor, destination), messages
follow the tree ``T_d``, and message identity is the concatenation of the
source identity and a **two-value flag** alternated per (source,
destination) — enough to distinguish consecutive identical messages *when
all messages follow the same fixed path*.

The protocol exists in two hosted semantics (``atomic_moves``):

* ``atomic_moves=True`` (default) — forwarding is the abstract network move
  of the paper's §2.2: one action copies ``b_p(d)`` into the empty buffer of
  ``nextHop_p(d)`` *and simultaneously empties* ``b_p(d)``.  This is the
  scheme in its native network-move model: with correct tables it is
  deadlock-free and exactly-once, and strictly cheaper than SSMFP (one
  buffer and one move per hop).  Used by the overhead comparison (T2).

* ``atomic_moves=False`` — the naive port to the locally shared memory
  model, where a cross-processor move necessarily splits into a copy (rule
  ``BF``) and a later erasure (rule ``BE`` guarded by an identity match at
  the next hop).  The (source, flag) identity cannot sequence the 3-way
  handshake (the receiver may forward, or the next hop may be re-polled,
  before the sender erases), so the scheme **duplicates** messages — and
  under moving tables also **loses** them when ``BE`` matches a stale
  same-flag copy.  This is precisely the gap SSMFP's two buffers, last-hop
  field and Δ+1 colors close; the comparison experiment (T1) measures it.

Modeling note: in both semantics the transmission writes the *receiver's*
buffer (the scheme is a network-move protocol, not a shared-memory one);
if the target got occupied by a concurrent same-step move, the write aborts
harmlessly (per-buffer arbitration) — in atomic mode the source then keeps
the message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.app.higher_layer import HigherLayer
from repro.core.ledger import DeliveryLedger
from repro.network.graph import Network
from repro.routing.table import RoutingService
from repro.statemodel.action import Action
from repro.statemodel.message import Message
from repro.statemodel.protocol import Protocol
from repro.types import DestId, ProcId


@dataclass(frozen=True)
class FlaggedMessage:
    """A stored baseline message: payload + (source, flag) identifier plus
    the hidden tracking uid (copies preserve it)."""

    payload: Any
    source: ProcId
    flag: int  # the two-value flag: 0 or 1
    dest: DestId
    uid: int
    valid: bool

    def same_identity(self, other: "FlaggedMessage") -> bool:
        """The scheme's message identity: payload, source and flag."""
        return (
            self.payload == other.payload
            and self.source == other.source
            and self.flag == other.flag
        )

    def as_message(self) -> Message:
        """Bridge to the :class:`~repro.statemodel.Message` shape the ledger
        and higher layer expect."""
        return Message(
            payload=self.payload,
            last=self.source,
            color=self.flag,
            dest=self.dest,
            uid=self.uid,
            valid=self.valid,
            source=self.source if self.valid else None,
        )


class MerlinSchweitzerForwarding(Protocol):
    """The fault-free baseline protocol (see module docstring)."""

    name = "MS"

    def __init__(
        self,
        net: Network,
        routing: RoutingService,
        higher_layer: HigherLayer,
        ledger: Optional[DeliveryLedger] = None,
        *,
        atomic_moves: bool = True,
    ) -> None:
        self.net = net
        self.routing = routing
        self.hl = higher_layer
        # The baseline is *expected* to violate SP in split-move mode; use a
        # non-strict ledger so violations are recorded, not raised.
        self.ledger = ledger if ledger is not None else DeliveryLedger(strict=False)
        self.atomic_moves = atomic_moves
        n = net.n
        #: ``buf[d][p]`` — the single buffer of p for destination d.
        self.buf: List[List[Optional[FlaggedMessage]]] = [
            [None] * n for _ in range(n)
        ]
        #: Next two-value flag per (source, destination).
        self._next_flag: List[List[int]] = [[0] * n for _ in range(n)]
        self._next_uid = 1
        self.current_step = 0

    # -- environment ------------------------------------------------------------

    def before_step(self, step: int) -> None:
        self.current_step = step
        self.hl.before_step(step)

    # -- rules ------------------------------------------------------------------

    def enabled_actions(self, pid: ProcId) -> List[Action]:
        actions: List[Action] = []
        n = self.net.n
        hl = self.hl
        request_dest = hl.next_destination(pid) if hl.request[pid] else None

        for d in range(n):
            stored = self.buf[d][pid]

            # BG: generation.
            if d == request_dest and stored is None:
                actions.append(self._generate_action(pid, d))

            if stored is None:
                continue

            # BC: consumption at the destination.
            if pid == d:
                actions.append(self._consume_action(pid, d, stored))
                continue

            nh = self.routing.next_hop(pid, d)
            target = self.buf[d][nh]
            if target is None:
                # BF: transmission into the empty next-hop buffer (atomic:
                # move; split: copy only).
                actions.append(self._forward_action(pid, d, stored, nh))
            elif not self.atomic_moves and target.same_identity(stored):
                # BE (split mode only): erase once the next hop holds a
                # matching identity.
                actions.append(self._erase_action(pid, d, stored, nh, target))
        return actions

    def _generate_action(self, p: ProcId, d: DestId) -> Action:
        payload = self.hl.next_message(p)
        flag = self._next_flag[d][p]

        def effect() -> None:
            # Per-buffer arbitration: a concurrent same-step move may have
            # filled the buffer; abort and retry (request stays up).
            if self.buf[d][p] is not None:
                return
            uid = self._next_uid
            self._next_uid += 1
            msg = FlaggedMessage(payload, p, flag, d, uid, True)
            self.buf[d][p] = msg
            self._next_flag[d][p] ^= 1
            self.hl.consume_request(p)
            self.ledger.record_generated(msg.as_message())

        return Action(
            pid=p, rule="BG", protocol=self.name, effect=effect,
            info={"dest": d, "payload": payload, "flag": flag},
        )

    def _forward_action(
        self, p: ProcId, d: DestId, msg: FlaggedMessage, nh: ProcId
    ) -> Action:
        atomic = self.atomic_moves

        def effect() -> None:
            # Per-buffer arbitration: abort if a concurrent move of this
            # same step filled the target; in atomic mode the source then
            # keeps the message.
            if self.buf[d][nh] is not None:
                return
            self.buf[d][nh] = msg
            if atomic:
                self.buf[d][p] = None

        return Action(
            pid=p, rule="BF", protocol=self.name, effect=effect,
            info={"dest": d, "uid": msg.uid, "to": nh},
        )

    def _erase_action(
        self,
        p: ProcId,
        d: DestId,
        msg: FlaggedMessage,
        nh: ProcId,
        target: FlaggedMessage,
    ) -> Action:
        def effect() -> None:
            # The scheme believes `target` is its own copy.  If the hidden
            # uids differ, the erase destroys a message that was never
            # transmitted — the loss mode moving tables induce.
            if msg.valid and target.uid != msg.uid:
                if self._copies_of(msg.uid) == 1:
                    self.ledger.record_loss(
                        msg.as_message(),
                        f"BE matched a stale same-flag copy at {nh}",
                    )
            self.buf[d][p] = None

        return Action(
            pid=p, rule="BE", protocol=self.name, effect=effect,
            info={"dest": d, "uid": msg.uid, "matched_uid": target.uid},
        )

    def _consume_action(self, p: ProcId, d: DestId, msg: FlaggedMessage) -> Action:
        step = self.current_step

        def effect() -> None:
            self.buf[d][p] = None
            self.hl.deliver(p, msg.as_message(), step)
            self.ledger.record_delivery(p, msg.as_message(), step)

        return Action(
            pid=p, rule="BC", protocol=self.name, effect=effect,
            info={"dest": d, "uid": msg.uid, "payload": msg.payload},
        )

    # -- introspection -----------------------------------------------------------

    def _copies_of(self, uid: int) -> int:
        return sum(
            1
            for row in self.buf
            for m in row
            if m is not None and m.uid == uid
        )

    def network_is_empty(self) -> bool:
        """True iff every buffer is empty."""
        return all(m is None for row in self.buf for m in row)

    def plant_invalid(
        self, d: DestId, p: ProcId, payload: Any, source: ProcId, flag: int
    ) -> FlaggedMessage:
        """Plant an invalid message (initial-configuration garbage)."""
        msg = FlaggedMessage(payload, source, flag, d, -self._next_uid, False)
        self._next_uid += 1
        self.buf[d][p] = msg
        return msg
