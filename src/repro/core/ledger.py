"""Exactly-once delivery accounting (the specification SP as executable
checks).

The ledger observes two event streams — generations (rule R1) and deliveries
(rule R6, or a baseline's consumption) — and enforces the specification:

* a *valid* message (positive uid) must be delivered at its destination,
  and at most once; a second delivery or a delivery elsewhere raises
  :class:`~repro.errors.SpecificationViolation` (or is recorded, in
  non-strict mode, for protocols *expected* to violate — the baselines);
* *invalid* messages (negative uid) may be delivered up to the paper's
  Proposition-4 budget; the ledger counts them per destination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import SpecificationViolation
from repro.statemodel.message import Message
from repro.statemodel.snapshot import StateVector
from repro.types import DestId, ProcId

#: Lifecycle observer: called as ``observer(kind, uid, info)`` with kind in
#: {"generated", "delivered", "lost"}.  The message-lifecycle tracer of
#: :mod:`repro.obs` subscribes here.
LedgerObserver = Callable[[str, int, Dict[str, Any]], None]


@dataclass(frozen=True)
class DeliveryRecord:
    """One delivery event."""

    uid: int
    at: ProcId
    step: int
    payload: object
    valid: bool


class DeliveryLedger:
    """Tracks generations and deliveries; enforces exactly-once for valid
    messages.

    Parameters
    ----------
    strict:
        When True (default) a violation raises immediately; when False it is
        appended to :attr:`violations` — used when measuring how badly a
        non-stabilizing baseline misbehaves.
    """

    def __init__(self, strict: bool = True) -> None:
        self._strict = strict
        self._generated: Dict[int, Tuple[ProcId, DestId, int]] = {}
        self._valid_delivered: Dict[int, DeliveryRecord] = {}
        self._invalid_deliveries: List[DeliveryRecord] = []
        self._lost: Set[int] = set()
        #: Violations observed in non-strict mode, human-readable.
        self.violations: List[str] = []
        self._observers: List[LedgerObserver] = []

    def add_observer(self, observer: LedgerObserver) -> None:
        """Subscribe to the lifecycle event stream (generated / delivered /
        lost).  Observers are called after the ledger's own bookkeeping;
        with none installed the intake paths pay a single truthiness
        check."""
        self._observers.append(observer)

    def _emit(self, kind: str, uid: int, info: Dict[str, Any]) -> None:
        for observer in self._observers:
            observer(kind, uid, info)

    # -- event intake ----------------------------------------------------------

    def record_generated(self, msg: Message) -> None:
        """Register a valid message at its R1 generation."""
        if not msg.valid or msg.source is None:
            raise ValueError(f"record_generated expects a valid message, got {msg!r}")
        self._generated[msg.uid] = (msg.source, msg.dest, msg.born_step)
        if self._observers:
            self._emit(
                "generated", msg.uid,
                {"source": msg.source, "dest": msg.dest, "step": msg.born_step},
            )

    def record_delivery(self, at: ProcId, msg: Message, step: int) -> None:
        """Register a delivery; checks the specification for valid uids."""
        rec = DeliveryRecord(
            uid=msg.uid, at=at, step=step, payload=msg.payload, valid=msg.valid
        )
        if not msg.valid:
            self._invalid_deliveries.append(rec)
            if self._observers:
                self._emit(
                    "delivered", msg.uid, {"at": at, "step": step, "valid": False}
                )
            return
        problems: List[str] = []
        known = self._generated.get(msg.uid)
        if known is None:
            problems.append(f"delivery of unknown valid uid {msg.uid}")
        else:
            _, dest, _ = known
            if at != dest:
                problems.append(
                    f"uid {msg.uid} delivered at {at}, destination is {dest}"
                )
        if msg.uid in self._valid_delivered:
            problems.append(f"uid {msg.uid} delivered twice (duplication)")
        if problems:
            self._flag("; ".join(problems))
        if msg.uid not in self._valid_delivered:
            self._valid_delivered[msg.uid] = rec
        if self._observers:
            self._emit("delivered", msg.uid, {"at": at, "step": step, "valid": True})

    def record_loss(self, msg: Message, reason: str) -> None:
        """Register that a protocol erased the last copy of a valid message
        without delivering it (baselines do this; SSMFP must never)."""
        if msg.valid:
            self._lost.add(msg.uid)
            if self._observers:
                self._emit("lost", msg.uid, {"reason": reason})
            self._flag(f"valid uid {msg.uid} lost: {reason}")

    def _flag(self, text: str) -> None:
        if self._strict:
            raise SpecificationViolation(text)
        self.violations.append(text)

    # -- snapshot/restore ----------------------------------------------------

    def snapshot(self) -> StateVector:
        """State vector: generations (insertion order preserved), valid
        deliveries, invalid deliveries, losses and non-strict violations.
        Observers and the strictness flag are wiring, not state."""
        return (
            tuple(self._generated.items()),
            tuple(self._valid_delivered.items()),
            tuple(self._invalid_deliveries),
            tuple(sorted(self._lost)),
            tuple(self.violations),
        )

    def restore(self, vec: StateVector) -> None:
        """Reinstate a previously captured :meth:`snapshot`."""
        generated, delivered, invalid, lost, violations = vec
        self._generated = dict(generated)
        self._valid_delivered = dict(delivered)
        self._invalid_deliveries = list(invalid)
        self._lost = set(lost)
        self.violations = list(violations)

    # -- queries ------------------------------------------------------------

    @property
    def generated_count(self) -> int:
        """Valid messages generated so far."""
        return len(self._generated)

    @property
    def valid_delivered_count(self) -> int:
        """Distinct valid uids delivered."""
        return len(self._valid_delivered)

    @property
    def invalid_delivery_count(self) -> int:
        """Total deliveries of invalid messages."""
        return len(self._invalid_deliveries)

    @property
    def invalid_deliveries(self) -> List[DeliveryRecord]:
        """Every invalid-message delivery."""
        return list(self._invalid_deliveries)

    def invalid_deliveries_by_destination(self) -> Dict[ProcId, int]:
        """Histogram destination -> invalid deliveries (Proposition 4 is a
        per-destination 2n bound)."""
        hist: Dict[ProcId, int] = {}
        for rec in self._invalid_deliveries:
            hist[rec.at] = hist.get(rec.at, 0) + 1
        return hist

    def outstanding_uids(self) -> Set[int]:
        """Valid uids generated but not yet delivered."""
        return set(self._generated).difference(self._valid_delivered)

    def generated_uids(self) -> List[int]:
        """Every generated valid uid, ascending.  Uids need not be
        contiguous (factories can be shared across simulations, and a
        non-strict ledger may know deliveries it never saw generated)."""
        return sorted(self._generated)

    def delivered_uids(self) -> List[int]:
        """Valid uids both generated and delivered, ascending — the
        denominator of every latency metric.  Deliveries of uids the
        ledger never saw generated (possible only in non-strict mode, and
        always flagged as violations) are excluded: they have no
        generation stamp to measure from."""
        return sorted(uid for uid in self._valid_delivered if uid in self._generated)

    def all_valid_delivered(self) -> bool:
        """True iff every generated message has been delivered."""
        return not self.outstanding_uids()

    def generation_info(self, uid: int) -> Optional[Tuple[ProcId, DestId, int]]:
        """(source, dest, born_step) for a generated uid."""
        return self._generated.get(uid)

    def delivery_record(self, uid: int) -> Optional[DeliveryRecord]:
        """The delivery record of a valid uid, if delivered."""
        return self._valid_delivered.get(uid)

    def latency_steps(self, uid: int) -> Optional[int]:
        """Steps from generation to delivery for a valid uid."""
        gen = self._generated.get(uid)
        rec = self._valid_delivered.get(uid)
        if gen is None or rec is None:
            return None
        return rec.step - gen[2]

    @property
    def lost_count(self) -> int:
        """Valid messages whose last copy was erased undelivered."""
        return len(self._lost)
