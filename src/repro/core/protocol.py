"""The SSMFP protocol class (Algorithm 1 wired together).

One :class:`SSMFP` instance runs the per-destination algorithm for *every*
destination simultaneously, as the paper prescribes ("we assume that all
these algorithms run simultaneously; as they are mutually independent, this
assumption has no effect on the provided proof").

The instance owns the buffers, the ``choice`` queues and the message
factory; it reads routing through a :class:`~repro.routing.RoutingService`
and talks to the application through a :class:`~repro.app.HigherLayer`.
Compose it under a :class:`~repro.statemodel.composition.PriorityStack`
below the routing protocol to get the paper's ``A ≫ SSMFP`` arrangement.

All the machinery shared across the protocol family — the incremental
dirty-component engine, sparse lazy queues, snapshot/restore, footprint
trails — lives in :class:`~repro.core.family.ForwardingProtocol`; this
module only declares what is specific to Algorithm 1: the rule set R1–R6,
the two-buffer (``bufR``/``bufE``) shape with the copy-then-erase
handshake, the emission-plane offer predicate, and the Figure-2 buffer
graph.

Ablation knobs (all default to the paper's design):

* ``enable_colors=False`` — ``color_p(d)`` degenerates to the constant 0
  (shows merges/losses the color flag prevents);
* ``choice_policy="lifo" | "fixed"`` — unfair selection (shows starvation);
* ``enable_r5=False`` — no duplicate cleanup (shows R4 wedging);
* ``r5_literal=True`` — the paper's literal R5 without the ``q ≠ p``
  disambiguation (shows the erratum's loss of fresh generations).
"""

from __future__ import annotations

from typing import Optional

from repro.app.higher_layer import HigherLayer
from repro.core.family import ForwardingProtocol
from repro.core.ledger import DeliveryLedger
from repro.core.rules import ALL_RULES
from repro.network.graph import Network
from repro.routing.table import RoutingService
from repro.statemodel.message import Message
from repro.types import DestId, ProcId


class SSMFP(ForwardingProtocol):
    """Snap-Stabilizing Message Forwarding Protocol (journal Algorithm 1)."""

    name = "SSMFP"
    rules = ALL_RULES
    generation_rule = "R1"
    forwarding_rules = ("R2", "R3")
    buffer_kinds = ("R", "E")
    offer_kind = "E"
    runtime_window_cap = None  # two buffers per hop → lanes may pipeline

    def __init__(
        self,
        net: Network,
        routing: RoutingService,
        higher_layer: HigherLayer,
        ledger: Optional[DeliveryLedger] = None,
        *,
        enable_colors: bool = True,
        enable_r5: bool = True,
        r5_literal: bool = False,
        choice_policy: str = "fifo",
        choice_wait_cap: int = 256,
        choice_wait_slowdown: int = 32,
    ) -> None:
        super().__init__(
            net,
            routing,
            higher_layer,
            ledger,
            enable_colors=enable_colors,
            choice_policy=choice_policy,
            choice_wait_cap=choice_wait_cap,
            choice_wait_slowdown=choice_wait_slowdown,
        )
        self.enable_r5 = enable_r5
        self.r5_literal = r5_literal

    def offered_message(self, d: DestId, q: ProcId) -> Optional[Message]:
        """SSMFP offers through the emission plane: ``bufE_q(d)``."""
        return self.bufs.get_e(d, q)

    @classmethod
    def buffer_graph(cls, net: Network, routing: RoutingService):
        from repro.buffergraph.ssmfp_graph import ssmfp_buffer_graph

        return ssmfp_buffer_graph(net, routing)
