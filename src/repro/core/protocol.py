"""The SSMFP protocol class (Algorithm 1 wired together).

One :class:`SSMFP` instance runs the per-destination algorithm for *every*
destination simultaneously, as the paper prescribes ("we assume that all
these algorithms run simultaneously; as they are mutually independent, this
assumption has no effect on the provided proof").

The instance owns the buffers, the ``choice`` queues and the message
factory; it reads routing through a :class:`~repro.routing.RoutingService`
and talks to the application through a :class:`~repro.app.HigherLayer`.
Compose it under a :class:`~repro.statemodel.composition.PriorityStack`
below the routing protocol to get the paper's ``A ≫ SSMFP`` arrangement.

Incremental engine
------------------
Every guard of Algorithm 1 at processor ``p`` reads only the closed
neighborhood of ``p``: its own buffers and queue head, its neighbors'
buffers, ``request_p``, and ``nextHop`` entries of ``p`` and its neighbors
(``last``-hop fields are always in ``N_p ∪ {p}`` — enforced by the
corruption helpers).  SSMFP therefore opts into the simulator's dirty-set
protocol: all buffer, queue, request and routing mutations flow through
notifier hooks, and :meth:`dirty_after` reports exactly the closed
neighborhoods of the writers.  The same notifications drive *incremental
queue reconciliation*: ``before_step`` re-syncs only the ``choice`` queues
whose candidate sets may have changed instead of sweeping every active
component (the ``aged_fair`` policy is the exception — its wait-ages tick
once per reconciliation, so it keeps the full per-step sweep; queue-head
notifications keep guard caching exact even then).  ``next_hop`` lookups
are cached per ``(d, p)`` and invalidated through the routing observer, so
``candidates()`` stops re-querying the routing service per neighbor per
step.  See ``docs/engine.md`` for the locality argument.

Ablation knobs (all default to the paper's design):

* ``enable_colors=False`` — ``color_p(d)`` degenerates to the constant 0
  (shows merges/losses the color flag prevents);
* ``choice_policy="lifo" | "fixed"`` — unfair selection (shows starvation);
* ``enable_r5=False`` — no duplicate cleanup (shows R4 wedging);
* ``r5_literal=True`` — the paper's literal R5 without the ``q ≠ p``
  disambiguation (shows the erratum's loss of fresh generations).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.app.higher_layer import HigherLayer
from repro.core.buffers import ForwardingBuffers
from repro.core.choice import FairChoiceQueue
from repro.core.colors import free_color
from repro.core.ledger import DeliveryLedger
from repro.core.rules import ALL_RULES
from repro.network.graph import Network
from repro.network.properties import max_degree
from repro.routing.table import RoutingService
from repro.statemodel.action import Action
from repro.statemodel.message import MessageFactory
from repro.statemodel.protocol import Protocol
from repro.types import Color, DestId, ProcId


class SSMFP(Protocol):
    """Snap-Stabilizing Message Forwarding Protocol."""

    name = "SSMFP"

    def __init__(
        self,
        net: Network,
        routing: RoutingService,
        higher_layer: HigherLayer,
        ledger: Optional[DeliveryLedger] = None,
        *,
        enable_colors: bool = True,
        enable_r5: bool = True,
        r5_literal: bool = False,
        choice_policy: str = "fifo",
        choice_wait_cap: int = 256,
        choice_wait_slowdown: int = 32,
    ) -> None:
        self.net = net
        self.routing = routing
        self.hl = higher_layer
        self.ledger = ledger if ledger is not None else DeliveryLedger()
        self.factory = MessageFactory()
        self.bufs = ForwardingBuffers(net.n)
        #: ``queues[d][p]`` — the ``choice_p(d)`` fairness queue.
        self.queues: List[List[FairChoiceQueue]] = [
            [
                FairChoiceQueue(
                    choice_policy,
                    wait_cap=choice_wait_cap,
                    wait_slowdown=choice_wait_slowdown,
                )
                for _ in net.processors()
            ]
            for _ in net.processors()
        ]
        #: The paper's Δ; colors live in {0..Δ}.
        self.delta = max_degree(net)
        self._choice_policy = choice_policy
        self.enable_colors = enable_colors
        self.enable_r5 = enable_r5
        self.r5_literal = r5_literal
        self.current_step = 0

        # -- incremental-engine state ---------------------------------------
        n = net.n
        #: Whether the routing provider reports its table mutations; without
        #: that discipline no derived state can be cached safely and the
        #: protocol behaves exactly like the pre-incremental engine.
        self._incremental = bool(getattr(routing, "notifies_mutations", False))
        self._aged = choice_policy in ("aged", "aged_fair")
        # aged_fair wait-ages advance once per sync, so reconciliation must
        # stay a full per-step sweep to keep the paper-equivalent semantics.
        self._sync_every_step = choice_policy == "aged_fair"
        self._all_dirty = True
        self._residue_purged = False
        self._guard_dirty: Set[ProcId] = set()
        #: Queues to re-sync at the next ``before_step``, per destination.
        self._resync: Dict[DestId, Set[ProcId]] = {}
        #: Cached ``next_hop`` values, ``None`` = not yet queried.
        self._nh_cache: List[List[Optional[ProcId]]] = [
            [None] * n for _ in range(n)
        ]
        #: Closed neighborhood of every processor, precomputed.
        self._nbhd: List[Tuple[ProcId, ...]] = [
            (p, *net.neighbors(p)) for p in net.processors()
        ]
        if self._incremental:
            # add_notifier (not bind) so later subscribers — the
            # message-lifecycle tracer of ``repro.obs`` — chain behind the
            # dirty-set hook instead of silently replacing it.
            self.bufs.add_notifier(self._on_buffer_write)
            self.hl.bind_notifier(self._on_request_change)
            routing.add_observer(self._on_routing_change)
            for d in net.processors():
                row = self.queues[d]
                for p in net.processors():
                    row[p].bind_notifier(self._on_queue_event, (d, p))

    # -- procedures of Algorithm 1 ------------------------------------------

    def pick_color(self, p: ProcId, d: DestId) -> Color:
        """``color_p(d)``; the ablation knob degrades it to constant 0."""
        if not self.enable_colors:
            return 0
        return free_color(self.net, self.bufs.R[d], p, self.delta)

    def next_hop(self, q: ProcId, d: DestId) -> ProcId:
        """``nextHop_q(d)`` through the per-entry cache (invalidated by the
        routing observer; bypassed for non-notifying providers)."""
        if not self._incremental:
            return self.routing.next_hop(q, d)
        row = self._nh_cache[d]
        hop = row[q]
        if hop is None:
            hop = self.routing.next_hop(q, d)
            row[q] = hop
        return hop

    def candidates(self, p: ProcId, d: DestId) -> Set[ProcId]:
        """The requesters ``choice_p(d)`` selects among: neighbors whose
        emission buffer targets ``p``, plus ``p`` itself when it wants to
        generate for ``d``."""
        cand: Set[ProcId] = set()
        buf_e = self.bufs.E[d]
        for q in self.net.neighbors(p):
            if buf_e[q] is not None and self.next_hop(q, d) == p:
                cand.add(q)
        if self.hl.request[p] and self.hl.next_destination(p) == d:
            cand.add(p)
        return cand

    # -- incremental-engine notification sinks --------------------------------

    def _on_buffer_write(self, d: DestId, p: ProcId, kind: str) -> None:
        """A buffer of ``p`` in component ``d`` was written.  Guards reading
        it live in the closed neighborhood of ``p``; emission-buffer writes
        also change the candidate sets of ``p``'s neighbors."""
        if self._all_dirty:
            return
        nbhd = self._nbhd[p]
        self._guard_dirty.update(nbhd)
        if kind != "R":
            self._resync.setdefault(d, set()).update(nbhd)

    def _on_queue_event(self, key, kind: str) -> None:
        """``choice_p(d)`` changed.  Only ``p``'s own guards read the head;
        out-of-sync mutations (serve/force) additionally require the queue
        to be reconciled before the next guard evaluation."""
        if self._all_dirty:
            return
        d, p = key
        self._guard_dirty.add(p)
        if kind == "mutate":
            self._resync.setdefault(d, set()).add(p)

    def _on_request_change(self, p: ProcId, dest: Optional[DestId]) -> None:
        """``request_p`` was raised or lowered for destination ``dest``."""
        if self._all_dirty:
            return
        self._guard_dirty.add(p)
        if dest is not None:
            self._resync.setdefault(dest, set()).add(p)

    def _on_routing_change(self, p: Optional[ProcId], d: Optional[DestId]) -> None:
        """``nextHop_p(d)`` moved (or, with ``(None, None)``, the whole
        table was rewritten).  Invalidate the hop cache and dirty every
        reader: ``p``'s own R4 guard, the candidate sets of ``p``'s
        neighbors, and R5 at holders of copies last forwarded by ``p``
        (always within the closed neighborhood)."""
        if p is None or d is None:
            for row in self._nh_cache:
                for i in range(len(row)):
                    row[i] = None
            self.mark_all_dirty()
            return
        self._nh_cache[d][p] = None
        if self._all_dirty:
            return
        nbhd = self._nbhd[p]
        self._guard_dirty.update(nbhd)
        self._resync.setdefault(d, set()).update(nbhd)

    def mark_all_dirty(self) -> None:
        """Fall back to a full re-scan and full queue reconciliation at the
        next step — the hatch for mutations outside the notifier hooks."""
        self._all_dirty = True
        self._guard_dirty.clear()
        self._resync.clear()

    def dirty_after(self, selection) -> Optional[Set[ProcId]]:
        if not self._incremental:
            return None
        if self._all_dirty:
            self._all_dirty = False
            self._guard_dirty.clear()
            return None
        dirty = self._guard_dirty
        self._guard_dirty = set()
        return dirty

    # -- Protocol interface ------------------------------------------------------

    def before_step(self, step: int) -> None:
        """Environment phase: raise requests, reconcile choice queues.

        With the incremental engine, only queues whose candidate sets may
        have changed since the previous step (recorded by the notifier
        hooks) are reconciled; otherwise every destination component that
        can possibly act (occupied buffers or a pending request) is swept —
        idle components have no candidates by definition, and their rules'
        guards are all false.
        """
        self.current_step = step
        self.hl.before_step(step)
        if self._incremental and not self._all_dirty and not self._sync_every_step:
            resync = self._resync
            if resync:
                self._resync = {}
                for d, procs in resync.items():
                    for p in procs:
                        self._sync_queue(d, p)
        else:
            self._resync.clear()
            self._full_reconcile()

    def _full_reconcile(self) -> None:
        """Reconcile every queue of every active destination component."""
        active = self.active_destinations()
        procs = self.net.processors()
        for d in active:
            for p in procs:
                self._sync_queue(d, p)
        if self._incremental and not self._residue_purged and not self._sync_every_step:
            # One-time purge of scrambled initial queue entries in *inactive*
            # components.  The classic engine removes them lazily the step
            # the component activates (with no emission buffer occupied and
            # no request yet, every stale entry is a non-candidate); purging
            # now is trace-equivalent because guards never read queues of
            # inactive components, and it keeps the incremental resync
            # channel free of pre-execution residue.  aged_fair skips this:
            # it full-reconciles every step, so residue is handled exactly
            # like the classic engine already.
            self._residue_purged = True
            for d in procs:
                if d not in active:
                    for p in procs:
                        self._sync_queue(d, p)

    def _sync_queue(self, d: DestId, p: ProcId) -> None:
        cand = self.candidates(p, d)
        if self._aged:
            buf_e = self.bufs.E[d]
            priority = {
                q: buf_e[q].hops
                for q in cand
                if q != p and buf_e[q] is not None
            }
            self.queues[d][p].sync(cand, priority)
        else:
            self.queues[d][p].sync(cand)

    def active_destinations(self) -> Set[DestId]:
        """Destinations whose component holds messages or has a pending
        generation request."""
        active: Set[DestId] = {
            d
            for d in self.net.processors()
            if self.bufs.occupied_in_component(d) > 0
        }
        for p in self.net.processors():
            if self.hl.request[p]:
                nd = self.hl.next_destination(p)
                if nd is not None:
                    active.add(nd)
        return active

    def enabled_actions(self, pid: ProcId) -> List[Action]:
        actions: List[Action] = []
        bufs = self.bufs
        hl = self.hl
        request_dest = hl.next_destination(pid) if hl.request[pid] else None
        for d in self.net.processors():
            if bufs.occupied_in_component(d) == 0 and request_dest != d:
                continue
            # Fast path: with both local buffers empty, only R1 (a pending
            # request chosen by the queue) or R3 (a queued neighbor offer)
            # can be enabled — both require a nonempty choice queue.
            if (
                bufs.R[d][pid] is None
                and bufs.E[d][pid] is None
                and self.queues[d][pid].head() is None
            ):
                continue
            for rule in ALL_RULES:
                action = rule(self, pid, d)
                if action is not None:
                    actions.append(action)
        return actions

    # -- introspection -----------------------------------------------------------

    def network_is_empty(self) -> bool:
        """True iff no buffer of any component holds a message."""
        return self.bufs.total_occupied() == 0

    def snapshot(self) -> Dict[str, object]:
        """Compact dump of every occupied buffer, keyed ``bufK_p(d)``."""
        out: Dict[str, object] = {}
        for d, p, kind, msg in self.bufs.iter_messages():
            out[f"buf{kind}_{p}({d})"] = repr(msg)
        return out
