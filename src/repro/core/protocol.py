"""The SSMFP protocol class (Algorithm 1 wired together).

One :class:`SSMFP` instance runs the per-destination algorithm for *every*
destination simultaneously, as the paper prescribes ("we assume that all
these algorithms run simultaneously; as they are mutually independent, this
assumption has no effect on the provided proof").

The instance owns the buffers, the ``choice`` queues and the message
factory; it reads routing through a :class:`~repro.routing.RoutingService`
and talks to the application through a :class:`~repro.app.HigherLayer`.
Compose it under a :class:`~repro.statemodel.composition.PriorityStack`
below the routing protocol to get the paper's ``A ≫ SSMFP`` arrangement.

Ablation knobs (all default to the paper's design):

* ``enable_colors=False`` — ``color_p(d)`` degenerates to the constant 0
  (shows merges/losses the color flag prevents);
* ``choice_policy="lifo" | "fixed"`` — unfair selection (shows starvation);
* ``enable_r5=False`` — no duplicate cleanup (shows R4 wedging);
* ``r5_literal=True`` — the paper's literal R5 without the ``q ≠ p``
  disambiguation (shows the erratum's loss of fresh generations).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.app.higher_layer import HigherLayer
from repro.core.buffers import ForwardingBuffers
from repro.core.choice import FairChoiceQueue
from repro.core.colors import free_color
from repro.core.ledger import DeliveryLedger
from repro.core.rules import ALL_RULES
from repro.network.graph import Network
from repro.network.properties import max_degree
from repro.routing.table import RoutingService
from repro.statemodel.action import Action
from repro.statemodel.message import MessageFactory
from repro.statemodel.protocol import Protocol
from repro.types import Color, DestId, ProcId


class SSMFP(Protocol):
    """Snap-Stabilizing Message Forwarding Protocol."""

    name = "SSMFP"

    def __init__(
        self,
        net: Network,
        routing: RoutingService,
        higher_layer: HigherLayer,
        ledger: Optional[DeliveryLedger] = None,
        *,
        enable_colors: bool = True,
        enable_r5: bool = True,
        r5_literal: bool = False,
        choice_policy: str = "fifo",
        choice_wait_cap: int = 256,
        choice_wait_slowdown: int = 32,
    ) -> None:
        self.net = net
        self.routing = routing
        self.hl = higher_layer
        self.ledger = ledger if ledger is not None else DeliveryLedger()
        self.factory = MessageFactory()
        self.bufs = ForwardingBuffers(net.n)
        #: ``queues[d][p]`` — the ``choice_p(d)`` fairness queue.
        self.queues: List[List[FairChoiceQueue]] = [
            [
                FairChoiceQueue(
                    choice_policy,
                    wait_cap=choice_wait_cap,
                    wait_slowdown=choice_wait_slowdown,
                )
                for _ in net.processors()
            ]
            for _ in net.processors()
        ]
        #: The paper's Δ; colors live in {0..Δ}.
        self.delta = max_degree(net)
        self._choice_policy = choice_policy
        self.enable_colors = enable_colors
        self.enable_r5 = enable_r5
        self.r5_literal = r5_literal
        self.current_step = 0

    # -- procedures of Algorithm 1 ------------------------------------------

    def pick_color(self, p: ProcId, d: DestId) -> Color:
        """``color_p(d)``; the ablation knob degrades it to constant 0."""
        if not self.enable_colors:
            return 0
        return free_color(self.net, self.bufs.R[d], p, self.delta)

    def candidates(self, p: ProcId, d: DestId) -> Set[ProcId]:
        """The requesters ``choice_p(d)`` selects among: neighbors whose
        emission buffer targets ``p``, plus ``p`` itself when it wants to
        generate for ``d``."""
        cand: Set[ProcId] = set()
        buf_e = self.bufs.E[d]
        for q in self.net.neighbors(p):
            if buf_e[q] is not None and self.routing.next_hop(q, d) == p:
                cand.add(q)
        if self.hl.request[p] and self.hl.next_destination(p) == d:
            cand.add(p)
        return cand

    # -- Protocol interface ------------------------------------------------------

    def before_step(self, step: int) -> None:
        """Environment phase: raise requests, reconcile choice queues.

        Only destination components that can possibly act (occupied buffers
        or a pending request) are reconciled — idle components have no
        candidates by definition, and their rules' guards are all false.
        """
        self.current_step = step
        self.hl.before_step(step)
        active = self.active_destinations()
        aged = self._choice_policy in ("aged", "aged_fair")
        for d in active:
            queues_d = self.queues[d]
            buf_e = self.bufs.E[d]
            for p in self.net.processors():
                cand = self.candidates(p, d)
                if aged:
                    priority = {
                        q: buf_e[q].hops
                        for q in cand
                        if q != p and buf_e[q] is not None
                    }
                    queues_d[p].sync(cand, priority)
                else:
                    queues_d[p].sync(cand)

    def active_destinations(self) -> Set[DestId]:
        """Destinations whose component holds messages or has a pending
        generation request."""
        active: Set[DestId] = {
            d
            for d in self.net.processors()
            if self.bufs.occupied_in_component(d) > 0
        }
        for p in self.net.processors():
            if self.hl.request[p]:
                nd = self.hl.next_destination(p)
                if nd is not None:
                    active.add(nd)
        return active

    def enabled_actions(self, pid: ProcId) -> List[Action]:
        actions: List[Action] = []
        bufs = self.bufs
        hl = self.hl
        request_dest = hl.next_destination(pid) if hl.request[pid] else None
        for d in self.net.processors():
            if bufs.occupied_in_component(d) == 0 and request_dest != d:
                continue
            # Fast path: with both local buffers empty, only R1 (a pending
            # request chosen by the queue) or R3 (a queued neighbor offer)
            # can be enabled — both require a nonempty choice queue.
            if (
                bufs.R[d][pid] is None
                and bufs.E[d][pid] is None
                and self.queues[d][pid].head() is None
            ):
                continue
            for rule in ALL_RULES:
                action = rule(self, pid, d)
                if action is not None:
                    actions.append(action)
        return actions

    # -- introspection -----------------------------------------------------------

    def network_is_empty(self) -> bool:
        """True iff no buffer of any component holds a message."""
        return self.bufs.total_occupied() == 0

    def snapshot(self) -> Dict[str, object]:
        """Compact dump of every occupied buffer, keyed ``bufK_p(d)``."""
        out: Dict[str, object] = {}
        for d, p, kind, msg in self.bufs.iter_messages():
            out[f"buf{kind}_{p}({d})"] = repr(msg)
        return out
