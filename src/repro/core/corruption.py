"""Adversarial initial forwarding states.

Snap-stabilization quantifies over *arbitrary* initial configurations: any
buffer may hold garbage ("invalid messages"), any choice queue may hold any
requester order.  These helpers build such configurations deterministically
from seeds, keeping values domain-valid (colors in ``{0..Δ}``, last-hop in
``N_p ∪ {p}``, dest tags matching components) as usual in the state model.

They work for every member of the protocol family: garbage is planted
only into the planes the protocol's rules can drain
(``proto.buffer_kinds`` — both for SSMFP, the fused R plane for SSMFP2;
an invalid message in a plane no rule reads would sit there forever and
break quiescence).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional

from repro.core.family import ForwardingProtocol
from repro.statemodel.message import Message
from repro.types import Color, DestId, ProcId


def plant_invalid_message(
    proto: ForwardingProtocol,
    d: DestId,
    p: ProcId,
    kind: str,
    payload: object,
    last: Optional[ProcId] = None,
    color: Color = 0,
) -> Message:
    """Plant one invalid message into ``buf{kind}_p(d)``; returns it.

    ``last`` defaults to ``p`` (a locally generated look); it must be in
    ``N_p ∪ {p}`` and ``color`` in ``{0..Δ}``.
    """
    if kind not in ("R", "E"):
        raise ValueError(f"kind must be 'R' or 'E', got {kind!r}")
    if kind not in proto.buffer_kinds:
        raise ValueError(
            f"{proto.name} does not use the {kind!r} plane "
            f"(buffer_kinds={proto.buffer_kinds})"
        )
    if last is None:
        last = p
    if last != p and last not in proto.net.neighbors(p):
        raise ValueError(f"last={last} is not in N_{p} ∪ {{{p}}}")
    if not (0 <= color <= proto.delta):
        raise ValueError(f"color {color} outside 0..{proto.delta}")
    msg = proto.factory.invalid(payload, last, color, d)
    if kind == "R":
        proto.bufs.set_r(d, p, msg)
    else:
        proto.bufs.set_e(d, p, msg)
    return msg


def plant_invalid_messages(
    proto: ForwardingProtocol,
    seed: int,
    fill_fraction: float = 0.3,
    destinations: Optional[Iterable[DestId]] = None,
) -> int:
    """Fill a random fraction of all buffers with invalid garbage.

    Payloads intentionally collide with each other (drawn from a tiny
    alphabet) to stress the color/flag machinery.  Returns the number of
    planted messages.
    """
    if not (0.0 <= fill_fraction <= 1.0):
        raise ValueError(f"fill_fraction must be in [0, 1], got {fill_fraction}")
    rng = random.Random(seed)
    net = proto.net
    dests = list(destinations) if destinations is not None else list(net.processors())
    planted = 0
    for d in dests:
        for p in net.processors():
            for kind in proto.buffer_kinds:
                if rng.random() >= fill_fraction:
                    continue
                payload = f"g{rng.randrange(3)}"
                last = rng.choice([p] + list(net.neighbors(p)))
                color = rng.randrange(proto.delta + 1)
                plant_invalid_message(proto, d, p, kind, payload, last, color)
                planted += 1
    return planted


def fill_all_buffers(proto: ForwardingProtocol, d: DestId, seed: int) -> int:
    """Fill *all buffers* of destination ``d``'s component with distinct
    invalid messages — the Proposition-4 worst case (at most 2n invalid
    messages can be delivered to ``d``; n for the fused single-buffer
    scheme).  Returns the count (``len(buffer_kinds) * n``).
    """
    rng = random.Random(seed)
    net = proto.net
    planted = 0
    for p in net.processors():
        for kind in proto.buffer_kinds:
            last = rng.choice([p] + list(net.neighbors(p)))
            color = rng.randrange(proto.delta + 1)
            plant_invalid_message(
                proto, d, p, kind, f"inv{p}{kind}", last, color
            )
            planted += 1
    return planted


def scramble_queues(proto: ForwardingProtocol, seed: int) -> None:
    """Overwrite every choice queue with a random requester order (any
    subset of ``N_p ∪ {p}``, shuffled) — arbitrary initial queue state."""
    rng = random.Random(seed)
    net = proto.net
    for d in net.processors():
        for p in net.processors():
            pool: List[ProcId] = [p] + list(net.neighbors(p))
            rng.shuffle(pool)
            take = rng.randrange(len(pool) + 1)
            proto.queues[d][p].force(pool[:take])
