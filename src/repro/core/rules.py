"""The six guarded rules of Algorithm 1 (SSMFP).

Each function evaluates one rule's guard for processor ``p`` in destination
component ``d`` against the current configuration and, when enabled, returns
an :class:`~repro.statemodel.Action` whose writes are fully bound (snapshot
discipline — see :mod:`repro.statemodel.action`).  Disabled guards return
None.

The rules, verbatim from the paper (with the R5 ``q ≠ p`` disambiguation
documented in DESIGN.md):

R1  generation         request ∧ nextDest = d ∧ bufR_p(d) empty ∧ choice = p
R2  internal forward   bufE empty ∧ bufR = (m,q,c) ∧ (q = p ∨ bufE_q ≠ (m,·,c))
R3  forwarding         bufR empty ∧ choice = s ≠ p ∧ bufE_s = (m,q,c)
R4  erase after fwd    bufE = (m,q,c) ∧ p ≠ d ∧ bufR_nextHop = (m,p,c)
                       ∧ ∀r ∈ N_p \\ {nextHop}: bufR_r ≠ (m,p,c)
R5  erase duplicate    bufR = (m,q,c) ∧ q ≠ p ∧ bufE_q = (m,·,c) ∧ nextHop_q ≠ p
R6  consumption        bufE_p(p) = (m,q,c)  →  deliver
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.statemodel.action import Action
from repro.types import DestId, ProcId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.protocol import SSMFP

#: Rule labels in guard-evaluation order.
RULE_ORDER = ("R1", "R2", "R3", "R4", "R5", "R6")


def rule_r1(proto: "SSMFP", p: ProcId, d: DestId) -> Optional[Action]:
    """Generation of a message (the snap-stabilization *starting action*)."""
    hl = proto.hl
    if not hl.request[p] or hl.next_destination(p) != d:
        return None
    if proto.bufs.R[d][p] is not None:
        return None
    if proto.queues[d][p].head() != p:
        return None
    payload = hl.next_message(p)

    def effect() -> None:
        # current_step is read at effect time: with guard caching the action
        # may have been evaluated at an earlier step than it executes.
        msg = proto.factory.generated(payload, p, d, color=0, step=proto.current_step)
        proto.bufs.set_r(d, p, msg)
        hl.consume_request(p)
        proto.queues[d][p].serve(p)
        proto.ledger.record_generated(msg)

    return Action(
        pid=p, rule="R1", protocol=proto.name, effect=effect,
        info={"dest": d, "payload": payload},
    )


def rule_r2(proto: "SSMFP", p: ProcId, d: DestId) -> Optional[Action]:
    """Internal forwarding ``bufR_p(d) -> bufE_p(d)`` with recoloring."""
    if proto.bufs.E[d][p] is not None:
        return None
    msg = proto.bufs.R[d][p]
    if msg is None:
        return None
    q = msg.last
    if q != p:
        source_e = proto.bufs.E[d][q]
        if source_e is not None and source_e.same_payload_color(msg):
            return None  # the source still holds the original: wait for R4
    recolored = msg.recolored(p, proto.pick_color(p, d))

    def effect() -> None:
        proto.bufs.move_r_to_e(d, p, recolored)

    return Action(
        pid=p, rule="R2", protocol=proto.name, effect=effect,
        info={"dest": d, "uid": msg.uid, "color": recolored.color},
    )


def rule_r3(proto: "SSMFP", p: ProcId, d: DestId) -> Optional[Action]:
    """Forwarding: copy the chosen neighbor's emission buffer into
    ``bufR_p(d)`` (the original is erased later by the neighbor's R4)."""
    if proto.bufs.R[d][p] is not None:
        return None
    s = proto.queues[d][p].head()
    if s is None or s == p:
        return None
    src = proto.bufs.E[d][s]
    if src is None:
        return None  # stale queue entry (cannot happen after sync; guard anyway)
    copy = src.forwarded_copy(s)

    def effect() -> None:
        proto.bufs.set_r(d, p, copy)
        proto.queues[d][p].serve(s)

    return Action(
        pid=p, rule="R3", protocol=proto.name, effect=effect,
        info={"dest": d, "uid": src.uid, "from": s},
    )


def rule_r4(proto: "SSMFP", p: ProcId, d: DestId) -> Optional[Action]:
    """Erase the emission buffer once its message has exactly one copy
    downstream, sitting at the current next hop."""
    if p == d:
        return None
    msg = proto.bufs.E[d][p]
    if msg is None:
        return None
    nh = proto.next_hop(p, d)
    target = proto.bufs.R[d][nh]
    if target is None or not target.matches(msg.payload, p, msg.color):
        return None
    for r in proto.net.neighbors(p):
        if r == nh:
            continue
        other = proto.bufs.R[d][r]
        if other is not None and other.matches(msg.payload, p, msg.color):
            return None  # a stale copy exists; R5 must clean it first

    confirmed_foreign = target.uid != msg.uid

    def effect() -> None:
        # The confirmation compares only (payload, last, color); if the
        # "copy" at the next hop is actually a different message (possible
        # only when the color discipline is ablated or from invalid
        # garbage), this erase silently destroys the original.
        if (
            confirmed_foreign
            and msg.valid
            and len(proto.bufs.copies_of(msg.uid)) == 1
        ):
            proto.ledger.record_loss(msg, "R4 confirmed against a foreign copy")
        proto.bufs.set_e(d, p, None)

    return Action(
        pid=p, rule="R4", protocol=proto.name, effect=effect,
        info={"dest": d, "uid": msg.uid, "next_hop": nh},
    )


def rule_r5(proto: "SSMFP", p: ProcId, d: DestId) -> Optional[Action]:
    """Erase a received copy whose emitter's next hop moved elsewhere
    (cleanup of duplicates created by routing-table motion)."""
    if not proto.enable_r5:
        return None
    msg = proto.bufs.R[d][p]
    if msg is None:
        return None
    q = msg.last
    if q == p and not proto.r5_literal:
        # Disambiguation (DESIGN.md erratum): the rule targets copies
        # created by forwarding from a neighbor; q = p would erase fresh
        # local generations.
        return None
    source_e = proto.bufs.E[d][q]
    if source_e is None or not source_e.same_payload_color(msg):
        return None
    if proto.next_hop(q, d) == p:
        return None

    def effect() -> None:
        if msg.valid and len(proto.bufs.copies_of(msg.uid)) == 1:
            proto.ledger.record_loss(msg, "R5 erased the last copy")
        proto.bufs.set_r(d, p, None)

    return Action(
        pid=p, rule="R5", protocol=proto.name, effect=effect,
        info={"dest": d, "uid": msg.uid},
    )


def rule_r6(proto: "SSMFP", p: ProcId, d: DestId) -> Optional[Action]:
    """Consumption: deliver the message in ``bufE_p(p)`` to the higher
    layer."""
    if p != d:
        return None
    msg = proto.bufs.E[d][p]
    if msg is None:
        return None

    def effect() -> None:
        # Effect-time step read — see rule_r1.
        step = proto.current_step
        proto.bufs.set_e(d, p, None)
        proto.hl.deliver(p, msg, step)
        proto.ledger.record_delivery(p, msg, step)

    return Action(
        pid=p, rule="R6", protocol=proto.name, effect=effect,
        info={"dest": d, "uid": msg.uid, "payload": msg.payload},
    )


#: All rule evaluators in order.
ALL_RULES = (rule_r1, rule_r2, rule_r3, rule_r4, rule_r5, rule_r6)
