"""Reception/emission buffer storage for SSMFP.

Per destination ``d`` every processor owns a reception buffer ``bufR_p(d)``
and an emission buffer ``bufE_p(d)`` (the paper's two-buffers-per-
destination scheme, Figure 2).  Storage is indexed ``[d][p]`` and tracks a
per-destination occupancy count so the protocol can skip idle destination
components in O(1).

Every mutation goes through :meth:`set_r` / :meth:`set_e` /
:meth:`move_r_to_e`, so an optional *write notifier* installed with
:meth:`bind_notifier` sees every buffer write ``(d, p, kind)`` — the hook
the incremental engine uses to maintain its dirty sets.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Set, Tuple

from repro.statemodel.message import Message
from repro.statemodel.snapshot import StateVector
from repro.types import DestId, ProcId

#: Write-notification callback: ``(dest, processor, kind)`` with kind in
#: {"R", "E"} ("E" also covers R2's simultaneous R-empty/E-fill write).
WriteNotifier = Callable[[DestId, ProcId, str], None]


class ForwardingBuffers:
    """All ``bufR``/``bufE`` buffers of one SSMFP instance."""

    __slots__ = ("n", "R", "E", "_occupied", "_occupied_set", "_notify")

    def __init__(self, n: int) -> None:
        self.n = n
        #: ``R[d][p]`` — reception buffer of processor p for destination d.
        self.R: List[List[Optional[Message]]] = [[None] * n for _ in range(n)]
        #: ``E[d][p]`` — emission buffer of processor p for destination d.
        self.E: List[List[Optional[Message]]] = [[None] * n for _ in range(n)]
        self._occupied = [0] * n
        #: Destinations with a nonzero occupancy count — maintained on every
        #: write so "which components hold messages" is O(occupied), not an
        #: O(n) sweep of the counts.
        self._occupied_set: Set[DestId] = set()
        self._notify: Optional[WriteNotifier] = None

    def bind_notifier(self, notify: Optional[WriteNotifier]) -> None:
        """Install (or remove) the write-notification hook, replacing any
        hooks currently bound."""
        self._notify = notify

    def add_notifier(self, notify: WriteNotifier) -> None:
        """Chain one more write-notification hook *behind* whatever is
        already bound (the incremental engine's dirty-set hook keeps
        firing first, then the new subscriber — how the message tracer
        attaches without disturbing the engine)."""
        previous = self._notify
        if previous is None:
            self._notify = notify
            return

        def chained(d: DestId, p: ProcId, kind: str) -> None:
            previous(d, p, kind)
            notify(d, p, kind)

        self._notify = chained

    # -- mutation (all buffer writes go through these, keeping counts right) --

    def set_r(self, d: DestId, p: ProcId, msg: Optional[Message]) -> None:
        """Write ``bufR_p(d)``."""
        old = self.R[d][p]
        self.R[d][p] = msg
        delta = (msg is not None) - (old is not None)
        if delta:
            occ = self._occupied[d] + delta
            self._occupied[d] = occ
            if occ == 0:
                self._occupied_set.discard(d)
            elif delta > 0:
                self._occupied_set.add(d)
        if self._notify is not None:
            self._notify(d, p, "R")

    def set_e(self, d: DestId, p: ProcId, msg: Optional[Message]) -> None:
        """Write ``bufE_p(d)``."""
        old = self.E[d][p]
        self.E[d][p] = msg
        delta = (msg is not None) - (old is not None)
        if delta:
            occ = self._occupied[d] + delta
            self._occupied[d] = occ
            if occ == 0:
                self._occupied_set.discard(d)
            elif delta > 0:
                self._occupied_set.add(d)
        if self._notify is not None:
            self._notify(d, p, "E")

    def move_r_to_e(self, d: DestId, p: ProcId, recolored: Message) -> None:
        """Rule R2's simultaneous write: fill ``bufE``, empty ``bufR``."""
        self.E[d][p] = recolored
        self.R[d][p] = None  # occupancy unchanged: one in, one out
        if self._notify is not None:
            self._notify(d, p, "E")

    # -- snapshot/restore ----------------------------------------------------

    def snapshot(self) -> StateVector:
        """Sparse state vector: one ``(d, p, kind, message)`` entry per
        occupied buffer, in :meth:`iter_messages` order.  Messages are
        immutable and shared by reference."""
        return tuple(self.iter_messages())

    def restore(self, vec: StateVector) -> None:
        """Diff-restore: write only the cells that differ, through
        :meth:`set_r`/:meth:`set_e` so occupancy indexes stay exact and the
        notifier sees every real change."""
        target = {(d, p, kind): msg for d, p, kind, msg in vec}
        stale = [
            (d, p, kind)
            for d, p, kind, _ in self.iter_messages()
            if (d, p, kind) not in target
        ]
        for d, p, kind in stale:
            if kind == "R":
                self.set_r(d, p, None)
            else:
                self.set_e(d, p, None)
        for (d, p, kind), msg in target.items():
            row = self.R if kind == "R" else self.E
            if row[d][p] is not msg:
                if kind == "R":
                    self.set_r(d, p, msg)
                else:
                    self.set_e(d, p, msg)

    # -- queries ------------------------------------------------------------

    def occupied_in_component(self, d: DestId) -> int:
        """Number of nonempty buffers in destination ``d``'s component."""
        return self._occupied[d]

    def occupied_components(self) -> Set[DestId]:
        """Destinations with at least one nonempty buffer — the live index
        maintained by the mutators (treat as read-only)."""
        return self._occupied_set

    def total_occupied(self) -> int:
        """Nonempty buffers across all components."""
        return sum(self._occupied)

    def iter_messages(self) -> Iterator[Tuple[DestId, ProcId, str, Message]]:
        """Yield every stored message as ``(dest, proc, kind, message)``
        with kind in {"R", "E"}."""
        for d in range(self.n):
            if self._occupied[d] == 0:
                continue
            row_r, row_e = self.R[d], self.E[d]
            for p in range(self.n):
                if row_r[p] is not None:
                    yield (d, p, "R", row_r[p])
                if row_e[p] is not None:
                    yield (d, p, "E", row_e[p])

    def copies_of(self, uid: int) -> List[Tuple[DestId, ProcId, str]]:
        """Locations of every stored copy of the message with hidden ``uid``."""
        return [
            (d, p, kind)
            for d, p, kind, msg in self.iter_messages()
            if msg.uid == uid
        ]
