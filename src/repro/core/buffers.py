"""Reception/emission buffer storage for SSMFP.

Per destination ``d`` every processor owns a reception buffer ``bufR_p(d)``
and an emission buffer ``bufE_p(d)`` (the paper's two-buffers-per-
destination scheme, Figure 2).  Storage is **sparse and lazily
materialized**: a buffer cell exists in memory only while it holds a
message, and a destination row exists only while at least one of its cells
does.  This is sound because an absent cell is semantically identical to a
clean empty buffer — the exact invariant snap-stabilization already relies
on (an arbitrary initial configuration may start with every buffer empty),
so eviction-on-empty and re-materialization-as-empty are unobservable to
the protocol.  Reads keep the classic dense idiom: ``bufs.R[d][p]`` returns
the stored message or ``None`` through lightweight row views, so rule code
and external readers are agnostic to the representation.  Memory is
O(live messages), not O(n²).

Every mutation goes through :meth:`set_r` / :meth:`set_e` /
:meth:`move_r_to_e`, so an optional *write notifier* installed with
:meth:`bind_notifier` sees every buffer write ``(d, p, kind)`` — the hook
the incremental engine uses to maintain its dirty sets.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.statemodel.message import Message
from repro.statemodel.snapshot import StateVector
from repro.types import DestId, ProcId

#: Write-notification callback: ``(dest, processor, kind)`` with kind in
#: {"R", "E"} ("E" also covers R2's simultaneous R-empty/E-fill write).
WriteNotifier = Callable[[DestId, ProcId, str], None]

#: Sparse storage: ``{dest: {proc: message}}`` with empty rows evicted.
_Plane = Dict[DestId, Dict[ProcId, Message]]


class _BufferRow:
    """Read-only view of one destination row of a buffer plane.

    ``row[p]`` returns the stored message or ``None`` — the dense-list
    idiom — without materializing anything.
    """

    __slots__ = ("_plane", "_d")

    def __init__(self, plane: _Plane, d: DestId) -> None:
        self._plane = plane
        self._d = d

    def __getitem__(self, p: ProcId) -> Optional[Message]:
        row = self._plane.get(self._d)
        return None if row is None else row.get(p)


class _BufferPlane:
    """Read-only view of a whole buffer plane: ``plane[d]`` is a row view."""

    __slots__ = ("_plane",)

    def __init__(self, plane: _Plane) -> None:
        self._plane = plane

    def __getitem__(self, d: DestId) -> _BufferRow:
        return _BufferRow(self._plane, d)


class ForwardingBuffers:
    """All ``bufR``/``bufE`` buffers of one SSMFP instance."""

    __slots__ = ("n", "R", "E", "_r", "_e", "_occupied", "_occupied_set",
                 "_notify")

    def __init__(self, n: int) -> None:
        self.n = n
        self._r: _Plane = {}
        self._e: _Plane = {}
        #: ``R[d][p]`` — reception buffer of processor p for destination d
        #: (read-only view over the sparse store).
        self.R = _BufferPlane(self._r)
        #: ``E[d][p]`` — emission buffer of processor p for destination d.
        self.E = _BufferPlane(self._e)
        #: Per-destination occupancy counts; zero-count entries are evicted,
        #: so the dict's key set *is* the set of live destinations.
        self._occupied: Dict[DestId, int] = {}
        #: Destinations with a nonzero occupancy count — maintained on every
        #: write so "which components hold messages" is O(occupied), not an
        #: O(n) sweep of the counts.
        self._occupied_set: Set[DestId] = set()
        self._notify: Optional[WriteNotifier] = None

    def bind_notifier(self, notify: Optional[WriteNotifier]) -> None:
        """Install (or remove) the write-notification hook, replacing any
        hooks currently bound."""
        self._notify = notify

    def add_notifier(self, notify: WriteNotifier) -> None:
        """Chain one more write-notification hook *behind* whatever is
        already bound (the incremental engine's dirty-set hook keeps
        firing first, then the new subscriber — how the message tracer
        attaches without disturbing the engine)."""
        previous = self._notify
        if previous is None:
            self._notify = notify
            return

        def chained(d: DestId, p: ProcId, kind: str) -> None:
            previous(d, p, kind)
            notify(d, p, kind)

        self._notify = chained

    # -- mutation (all buffer writes go through these, keeping counts right) --

    def _bump(self, d: DestId, delta: int) -> None:
        occ = self._occupied.get(d, 0) + delta
        if occ:
            self._occupied[d] = occ
            self._occupied_set.add(d)
        else:
            self._occupied.pop(d, None)
            self._occupied_set.discard(d)

    def _write(self, plane: _Plane, d: DestId, p: ProcId,
               msg: Optional[Message]) -> int:
        """Write one cell, materializing/evicting as needed; returns the
        occupancy delta."""
        row = plane.get(d)
        old = None if row is None else row.get(p)
        if msg is None:
            if row is not None and p in row:
                del row[p]
                if not row:
                    del plane[d]
        else:
            if row is None:
                row = plane[d] = {}
            row[p] = msg
        return (msg is not None) - (old is not None)

    def set_r(self, d: DestId, p: ProcId, msg: Optional[Message]) -> None:
        """Write ``bufR_p(d)``."""
        delta = self._write(self._r, d, p, msg)
        if delta:
            self._bump(d, delta)
        if self._notify is not None:
            self._notify(d, p, "R")

    def set_e(self, d: DestId, p: ProcId, msg: Optional[Message]) -> None:
        """Write ``bufE_p(d)``."""
        delta = self._write(self._e, d, p, msg)
        if delta:
            self._bump(d, delta)
        if self._notify is not None:
            self._notify(d, p, "E")

    def move_r_to_e(self, d: DestId, p: ProcId, recolored: Message) -> None:
        """Rule R2's simultaneous write: fill ``bufE``, empty ``bufR``."""
        erow = self._e.get(d)
        if erow is None:
            erow = self._e[d] = {}
        erow[p] = recolored
        rrow = self._r.get(d)  # occupancy unchanged: one in, one out
        if rrow is not None and p in rrow:
            del rrow[p]
            if not rrow:
                del self._r[d]
        if self._notify is not None:
            self._notify(d, p, "E")

    # -- fast-path reads (no view allocation; used by the rule engine) ------

    def get_r(self, d: DestId, p: ProcId) -> Optional[Message]:
        """``bufR_p(d)`` without allocating a row view."""
        row = self._r.get(d)
        return None if row is None else row.get(p)

    def get_e(self, d: DestId, p: ProcId) -> Optional[Message]:
        """``bufE_p(d)`` without allocating a row view."""
        row = self._e.get(d)
        return None if row is None else row.get(p)

    # -- snapshot/restore ----------------------------------------------------

    def snapshot(self) -> StateVector:
        """Sparse state vector: one ``(d, p, kind, message)`` entry per
        occupied buffer, in :meth:`iter_messages` order.  Messages are
        immutable and shared by reference.  Canonical: two instances with
        the same stored messages produce the same vector regardless of the
        materialization/eviction history."""
        return tuple(self.iter_messages())

    def restore(self, vec: StateVector) -> None:
        """Diff-restore: write only the cells that differ, through
        :meth:`set_r`/:meth:`set_e` so occupancy indexes stay exact and the
        notifier sees every real change."""
        target = {(d, p, kind): msg for d, p, kind, msg in vec}
        stale = [
            (d, p, kind)
            for d, p, kind, _ in self.iter_messages()
            if (d, p, kind) not in target
        ]
        for d, p, kind in stale:
            if kind == "R":
                self.set_r(d, p, None)
            else:
                self.set_e(d, p, None)
        for (d, p, kind), msg in target.items():
            current = self.get_r(d, p) if kind == "R" else self.get_e(d, p)
            if current is not msg:
                if kind == "R":
                    self.set_r(d, p, msg)
                else:
                    self.set_e(d, p, msg)

    # -- queries ------------------------------------------------------------

    def occupied_in_component(self, d: DestId) -> int:
        """Number of nonempty buffers in destination ``d``'s component."""
        return self._occupied.get(d, 0)

    def occupied_components(self) -> Set[DestId]:
        """Destinations with at least one nonempty buffer — the live index
        maintained by the mutators (treat as read-only)."""
        return self._occupied_set

    def total_occupied(self) -> int:
        """Nonempty buffers across all components — O(occupied
        destinations), summing the counts the occupied-set indexes, never a
        dense O(n) sweep."""
        occupied = self._occupied
        return sum(occupied[d] for d in self._occupied_set)

    def materialized_destinations(self) -> Set[DestId]:
        """Destinations with at least one materialized buffer cell — the
        memory footprint index (equals :meth:`occupied_components` because
        empty cells and rows are evicted eagerly)."""
        return set(self._r) | set(self._e)

    def iter_messages(self) -> Iterator[Tuple[DestId, ProcId, str, Message]]:
        """Yield every stored message as ``(dest, proc, kind, message)``
        with kind in {"R", "E"} — destinations ascending, processors
        ascending, R before E per processor (the dense-era order, preserved
        so snapshots stay bit-identical)."""
        empty: Dict[ProcId, Message] = {}
        for d in sorted(self._occupied_set):
            row_r = self._r.get(d, empty)
            row_e = self._e.get(d, empty)
            for p in sorted(row_r.keys() | row_e.keys()):
                if p in row_r:
                    yield (d, p, "R", row_r[p])
                if p in row_e:
                    yield (d, p, "E", row_e[p])

    def copies_of(self, uid: int) -> List[Tuple[DestId, ProcId, str]]:
        """Locations of every stored copy of the message with hidden ``uid``."""
        return [
            (d, p, kind)
            for d, p, kind, msg in self.iter_messages()
            if msg.uid == uid
        ]
