"""The paper's primary contribution: the forwarding-protocol family.

* :class:`~repro.core.family.ForwardingProtocol` — the family contract
  every substrate (engine, verifiers, obs, runtime, CLI) consumes;
* :class:`SSMFP` — the six-rule snap-stabilizing message forwarding
  protocol (Algorithm 1) as a state-model :class:`~repro.statemodel.Protocol`;
* :class:`SSMFP2` — the journal's second protocol (fused single-buffer
  scheme, arXiv:0905.2540) on the same substrates;
* :mod:`~repro.core.registry` — name → protocol class resolution;
* :mod:`~repro.core.caterpillar` — Definition 3's caterpillar taxonomy;
* :mod:`~repro.core.invariants` — machine-checked safety (Lemmas 4 & 5);
* :class:`~repro.core.ledger.DeliveryLedger` — exactly-once accounting;
* :mod:`~repro.core.corruption` — adversarial initial buffer/queue states.
"""

from repro.core.buffers import ForwardingBuffers
from repro.core.caterpillar import Caterpillar, all_caterpillars, caterpillars_at
from repro.core.choice import FairChoiceQueue
from repro.core.colors import free_color
from repro.core.corruption import (
    fill_all_buffers,
    plant_invalid_message,
    plant_invalid_messages,
    scramble_queues,
)
from repro.core.family import ForwardingProtocol
from repro.core.invariants import InvariantChecker
from repro.core.ledger import DeliveryLedger
from repro.core.protocol import SSMFP
from repro.core.protocol2 import SSMFP2
from repro.core.registry import PROTOCOLS, available, resolve

__all__ = [
    "ForwardingProtocol",
    "SSMFP",
    "SSMFP2",
    "PROTOCOLS",
    "available",
    "resolve",
    "ForwardingBuffers",
    "FairChoiceQueue",
    "DeliveryLedger",
    "InvariantChecker",
    "Caterpillar",
    "all_caterpillars",
    "caterpillars_at",
    "free_color",
    "fill_all_buffers",
    "plant_invalid_message",
    "plant_invalid_messages",
    "scramble_queues",
]
