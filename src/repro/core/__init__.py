"""The paper's primary contribution: the SSMFP protocol.

* :class:`SSMFP` — the six-rule snap-stabilizing message forwarding
  protocol (Algorithm 1) as a state-model :class:`~repro.statemodel.Protocol`;
* :mod:`~repro.core.caterpillar` — Definition 3's caterpillar taxonomy;
* :mod:`~repro.core.invariants` — machine-checked safety (Lemmas 4 & 5);
* :class:`~repro.core.ledger.DeliveryLedger` — exactly-once accounting;
* :mod:`~repro.core.corruption` — adversarial initial buffer/queue states.
"""

from repro.core.buffers import ForwardingBuffers
from repro.core.caterpillar import Caterpillar, all_caterpillars, caterpillars_at
from repro.core.choice import FairChoiceQueue
from repro.core.colors import free_color
from repro.core.corruption import (
    fill_all_buffers,
    plant_invalid_message,
    plant_invalid_messages,
    scramble_queues,
)
from repro.core.invariants import InvariantChecker
from repro.core.ledger import DeliveryLedger
from repro.core.protocol import SSMFP

__all__ = [
    "SSMFP",
    "ForwardingBuffers",
    "FairChoiceQueue",
    "DeliveryLedger",
    "InvariantChecker",
    "Caterpillar",
    "all_caterpillars",
    "caterpillars_at",
    "free_color",
    "fill_all_buffers",
    "plant_invalid_message",
    "plant_invalid_messages",
    "scramble_queues",
]
