"""The six guarded rules of the journal's second forwarding protocol.

The journal version of the source paper (arXiv:0905.2540) presents a
second snap-stabilizing forwarding protocol with a different
buffer/fairness trade-off: instead of SSMFP's two buffers per
(processor, destination) with an explicit reception→emission handshake,
it keeps a *single fused buffer* per (processor, destination) —
``bufR_p(d)`` here; the E plane stays empty — and encodes the handshake
in the message's ``last`` field:

* a message with ``last = p`` sitting at ``p`` is **owned** — ``p`` has
  adopted it and offers it to the next hop;
* a message with ``last = q ≠ p`` is an **unadopted copy** just
  forwarded by neighbor ``q`` — ``p`` must wait for ``q`` to erase its
  original before adopting (recoloring) it.

The buffer graph of this scheme is the paper's Figure-1
*destination-based* construction (one buffer per processor per
destination, edges along the routing tree), acyclic under correct
tables — that is the deadlock-freedom argument, exactly as for SSMFP's
Figure-2 graph.

The rules (labels ``F*`` to keep arena tables and obs rows
distinguishable from R1–R6):

F1  generation       request ∧ nextDest = d ∧ bufR_p(d) empty ∧ choice = p
F2  adoption         bufR_p(d) = (m,q,c), q ≠ p ∧ bufR_q(d) ≠ (m,·,c)
                     → recolor/take ownership (the analogue of R2)
F3  forwarding       bufR_p(d) empty ∧ choice = s ≠ p ∧ bufR_s(d) owned
                     → copy with last = s (the analogue of R3)
F4  erase after fwd  bufR_p(d) owned ∧ p ≠ d ∧ bufR_nextHop = (m,p,c)
                     ∧ ∀r ∈ N_p \\ {nextHop}: bufR_r ≠ (m,p,c)
F5  erase duplicate  bufR_p(d) = (m,q,c), q ≠ p ∧ bufR_q(d) = (m,·,c)
                     ∧ nextHop_q(d) ≠ p
F6  consumption      bufR_p(p) owned  →  deliver

Ownership gates F4 and F6: erasing or delivering an *unadopted* copy
would leave the upstream original confirmed-against-nothing and wedge
its F4 forever, so copies are always adopted (F2) first — at the
destination that costs one extra move per delivery, the price of the
fused buffer.  F2 and F5 are mutually exclusive through the same
upstream predicate that separates R2 and R5: while the upstream original
survives *and* still routes here, the copy waits for the upstream F4.

Snapshot discipline matches :mod:`repro.core.rules`: guards bind every
value they read (F1/F2 bind the picked color at guard time — sound under
the component-invalidation contract, any write that could change
``free_color`` dirties this component and re-evaluates the cached
action), effects read ``current_step`` and the uid counter at execution
time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.statemodel.action import Action
from repro.types import DestId, ProcId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.protocol2 import SSMFP2

#: Rule labels in guard-evaluation order.
RULE_ORDER2 = ("F1", "F2", "F3", "F4", "F5", "F6")


def rule_f1(proto: "SSMFP2", p: ProcId, d: DestId) -> Optional[Action]:
    """Generation (the snap-stabilization *starting action*).  Unlike R1,
    the fused scheme colors at generation time — the single buffer is the
    reception plane the color discipline ranges over."""
    hl = proto.hl
    if not hl.request[p] or hl.next_destination(p) != d:
        return None
    if proto.bufs.R[d][p] is not None:
        return None
    if proto.queues[d][p].head() != p:
        return None
    payload = hl.next_message(p)
    color = proto.pick_color(p, d)

    def effect() -> None:
        # current_step and the uid counter are read at effect time: with
        # guard caching the action may execute later than it was evaluated.
        msg = proto.factory.generated(
            payload, p, d, color=color, step=proto.current_step
        )
        proto.bufs.set_r(d, p, msg)
        hl.consume_request(p)
        proto.queues[d][p].serve(p)
        proto.ledger.record_generated(msg)

    return Action(
        pid=p, rule="F1", protocol=proto.name, effect=effect,
        info={"dest": d, "payload": payload},
    )


def rule_f2(proto: "SSMFP2", p: ProcId, d: DestId) -> Optional[Action]:
    """Adoption: once the upstream original is gone, recolor the copy and
    take ownership (the fused analogue of R2's internal forward)."""
    msg = proto.bufs.R[d][p]
    if msg is None:
        return None
    q = msg.last
    if q == p:
        return None  # already owned
    source = proto.bufs.R[d][q]
    if source is not None and source.same_payload_color(msg):
        return None  # the upstream still holds the original: wait for F4
    adopted = msg.recolored(p, proto.pick_color(p, d))

    def effect() -> None:
        proto.bufs.set_r(d, p, adopted)

    return Action(
        pid=p, rule="F2", protocol=proto.name, effect=effect,
        info={"dest": d, "uid": msg.uid, "color": adopted.color},
    )


def rule_f3(proto: "SSMFP2", p: ProcId, d: DestId) -> Optional[Action]:
    """Forwarding: copy the chosen neighbor's *owned* message into the
    local buffer (the original is erased later by the neighbor's F4)."""
    if proto.bufs.R[d][p] is not None:
        return None
    s = proto.queues[d][p].head()
    if s is None or s == p:
        return None
    src = proto.bufs.R[d][s]
    if src is None or src.last != s:
        return None  # stale queue entry (cannot happen after sync; guard anyway)
    copy = src.forwarded_copy(s)

    def effect() -> None:
        proto.bufs.set_r(d, p, copy)
        proto.queues[d][p].serve(s)

    return Action(
        pid=p, rule="F3", protocol=proto.name, effect=effect,
        info={"dest": d, "uid": src.uid, "from": s},
    )


def rule_f4(proto: "SSMFP2", p: ProcId, d: DestId) -> Optional[Action]:
    """Erase the owned original once its message has exactly one copy
    downstream, sitting at the current next hop (the fused analogue of
    R4, over the single buffer plane)."""
    if p == d:
        return None
    msg = proto.bufs.R[d][p]
    if msg is None or msg.last != p:
        return None
    nh = proto.next_hop(p, d)
    target = proto.bufs.R[d][nh]
    if target is None or not target.matches(msg.payload, p, msg.color):
        return None
    for r in proto.net.neighbors(p):
        if r == nh:
            continue
        other = proto.bufs.R[d][r]
        if other is not None and other.matches(msg.payload, p, msg.color):
            return None  # a stale copy exists; F5 must clean it first

    confirmed_foreign = target.uid != msg.uid

    def effect() -> None:
        # The confirmation compares only (payload, last, color); if the
        # "copy" at the next hop is actually a different message (possible
        # only when the color discipline is ablated or from invalid
        # garbage), this erase silently destroys the original.
        if (
            confirmed_foreign
            and msg.valid
            and len(proto.bufs.copies_of(msg.uid)) == 1
        ):
            proto.ledger.record_loss(msg, "F4 confirmed against a foreign copy")
        proto.bufs.set_r(d, p, None)

    return Action(
        pid=p, rule="F4", protocol=proto.name, effect=effect,
        info={"dest": d, "uid": msg.uid, "next_hop": nh},
    )


def rule_f5(proto: "SSMFP2", p: ProcId, d: DestId) -> Optional[Action]:
    """Erase an unadopted copy whose emitter's next hop moved elsewhere
    (cleanup of duplicates created by routing-table motion)."""
    msg = proto.bufs.R[d][p]
    if msg is None:
        return None
    q = msg.last
    if q == p:
        return None  # owned messages are erased only through F4
    source = proto.bufs.R[d][q]
    if source is None or not source.same_payload_color(msg):
        return None
    if proto.next_hop(q, d) == p:
        return None

    def effect() -> None:
        if msg.valid and len(proto.bufs.copies_of(msg.uid)) == 1:
            proto.ledger.record_loss(msg, "F5 erased the last copy")
        proto.bufs.set_r(d, p, None)

    return Action(
        pid=p, rule="F5", protocol=proto.name, effect=effect,
        info={"dest": d, "uid": msg.uid},
    )


def rule_f6(proto: "SSMFP2", p: ProcId, d: DestId) -> Optional[Action]:
    """Consumption: deliver the owned message sitting at its destination.
    Ownership is required — delivering an unadopted copy would wedge the
    upstream F4 — so every delivery is preceded by one F2 adoption."""
    if p != d:
        return None
    msg = proto.bufs.R[d][p]
    if msg is None or msg.last != p:
        return None

    def effect() -> None:
        # Effect-time step read — see rule_f1.
        step = proto.current_step
        proto.bufs.set_r(d, p, None)
        proto.hl.deliver(p, msg, step)
        proto.ledger.record_delivery(p, msg, step)

    return Action(
        pid=p, rule="F6", protocol=proto.name, effect=effect,
        info={"dest": d, "uid": msg.uid, "payload": msg.payload},
    )


#: All rule evaluators in order.
ALL_RULES2 = (rule_f1, rule_f2, rule_f3, rule_f4, rule_f5, rule_f6)
