"""The ``color_p(d)`` procedure.

Returns a color in ``{0, ..., Δ}`` absent from every neighbor's *reception*
buffer for destination ``d``.  Since ``deg(p) ≤ Δ``, the neighbors occupy at
most Δ of the Δ+1 colors, so a free color always exists (pigeonhole); we
return the smallest for determinism.  The color is stamped onto a message
when it enters an emission buffer (rule R2) and is what prevents the merge
of two consecutive identical messages when routing tables move (§3.1).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import InvariantViolation
from repro.network.graph import Network
from repro.statemodel.message import Message
from repro.types import Color, DestId, ProcId


def free_color(
    net: Network,
    buf_r_row: List[Optional[Message]],
    p: ProcId,
    delta: int,
) -> Color:
    """Smallest color in ``{0..delta}`` not carried by any message in
    ``bufR_q(d)`` for ``q ∈ N_p``.

    ``buf_r_row`` is the reception-buffer row for destination ``d``
    (indexed by processor).  Raises :class:`InvariantViolation` if no color
    is free, which the pigeonhole argument rules out for ``delta ≥ deg(p)``.
    """
    used = set()
    for q in net.neighbors(p):
        msg = buf_r_row[q]
        if msg is not None:
            used.add(msg.color)
    for c in range(delta + 1):
        if c not in used:
            return c
    raise InvariantViolation(
        f"no free color at processor {p}: Δ+1={delta + 1} colors all used "
        f"by {len(used)} neighbor reception buffers — degree exceeds Δ?"
    )
