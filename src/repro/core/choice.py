"""The ``choice_p(d)`` fairness queue.

The paper manages the fair selection of which requester (a neighbor with a
message to forward into ``bufR_p(d)``, or ``p`` itself wanting to generate)
is served next "with a queue of length Δ+1".  :class:`FairChoiceQueue`
implements exactly that: requesters enter at the tail when they start
satisfying the candidate predicate, leave when served or when they stop
satisfying it, and ``choice_p(d)`` is the head.  Bounded bypass: a candidate
waits behind at most Δ others.

Two deliberately *broken* policies are provided for the ablation benches:
``"lifo"`` (new candidates preempt the head) and ``"fixed"`` (always the
smallest identity) — both can starve a requester forever, which is the
livelock the paper's fairness exists to prevent.

A fourth policy, ``"aged"``, explores the paper's §4 future work (speed up
the worst case by changing the selection scheme): candidates are served in
decreasing order of how far their waiting message has already traveled
(its hop count), so fresh traffic cannot keep passing an old message at
every hop.  The exhaustive liveness checker found its flaw: a *generation
request* has no hops, so a persistent stream outranks it forever —
starvation.  The fifth policy, ``"aged_fair"``, fixes that: every
candidate also ages by *waiting time* (syncs spent in the queue, divided
by ``wait_slowdown`` and capped), and the effective priority is the max of
the two ages.  A starving request's wait-age grows past any bounded hop
count, so service is guaranteed — verified exhaustively in
``tests/test_liveness.py`` — while the slow accrual keeps in-flight
messages' speed advantage (with ``wait_slowdown=1`` the policy degrades
gracefully toward FIFO under saturation).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.types import ProcId

_POLICIES = ("fifo", "lifo", "fixed", "aged", "aged_fair")

#: Change-notification callback installed by :meth:`FairChoiceQueue.bind_notifier`:
#: called with the queue's bound key plus an event kind — ``"sync"`` when a
#: reconciliation changed the observable head, ``"mutate"`` when the queue was
#: mutated outside reconciliation (serve / force) and therefore needs a
#: re-sync before the next guard evaluation.
ChangeNotifier = Callable[[object, str], None]


class FairChoiceQueue:
    """Queue of requesters for one reception buffer ``bufR_p(d)``."""

    __slots__ = ("_q", "_policy", "_wait", "_wait_cap", "_wait_slowdown",
                 "_notify", "_key")

    def __init__(
        self,
        policy: str = "fifo",
        wait_cap: int = 256,
        wait_slowdown: int = 32,
    ) -> None:
        if policy not in _POLICIES:
            raise ValueError(f"unknown choice policy {policy!r}; want one of {_POLICIES}")
        if wait_cap < 1:
            raise ValueError(f"wait_cap must be positive, got {wait_cap}")
        if wait_slowdown < 1:
            raise ValueError(f"wait_slowdown must be positive, got {wait_slowdown}")
        self._q: List[ProcId] = []
        self._policy = policy
        #: aged_fair only: syncs each candidate has waited (capped so the
        #: state space stays finite for exhaustive exploration).
        self._wait: Dict[ProcId, int] = {}
        self._wait_cap = wait_cap
        self._wait_slowdown = wait_slowdown
        self._notify: Optional[ChangeNotifier] = None
        self._key: object = None

    @property
    def policy(self) -> str:
        """The selection policy ("fifo" is the paper's)."""
        return self._policy

    def bind_notifier(self, notify: Optional[ChangeNotifier], key: object) -> None:
        """Install the change-notification hook; ``key`` identifies this
        queue to the receiver (SSMFP binds its ``(d, p)`` coordinates)."""
        self._notify = notify
        self._key = key

    def sync(
        self,
        candidates: Iterable[ProcId],
        priority: Optional[Dict[ProcId, int]] = None,
    ) -> None:
        """Reconcile the queue with the current candidate set.

        Requesters that stopped satisfying the predicate leave; new ones
        enter (tail for fifo, head for lifo); "fixed" ignores arrival
        order entirely; "aged" orders by decreasing ``priority`` (the
        waiting message's hop count), FIFO-stable within equal ages.
        """
        cand = set(candidates)
        if not cand and not self._q:
            # Empty-to-empty reconcile: nothing to reorder, the head stays
            # None so there is nothing to notify, and no wait-age can exist
            # without a queued candidate.  This is the dominant case when a
            # full reconcile sweeps a mostly-idle component, so skip the
            # list rebuilds entirely.
            return
        head_before = self._q[0] if self._q else None
        if self._policy == "fixed":
            self._q = sorted(cand)
            self._sync_notify(head_before)
            return
        kept = [x for x in self._q if x in cand]
        fresh = sorted(cand.difference(kept))
        if self._policy == "fifo":
            self._q = kept + fresh
        elif self._policy == "lifo":
            self._q = fresh + kept
        elif self._policy == "aged":
            prio = priority or {}
            arrival = {x: i for i, x in enumerate(kept + fresh)}
            self._q = sorted(cand, key=lambda x: (-prio.get(x, -1), arrival[x]))
        else:  # aged_fair
            prio = priority or {}
            for lapsed in [x for x in self._wait if x not in cand]:
                del self._wait[lapsed]
            for x in cand:
                self._wait[x] = min(self._wait.get(x, -1) + 1, self._wait_cap)
            arrival = {x: i for i, x in enumerate(kept + fresh)}
            self._q = sorted(
                cand,
                key=lambda x: (
                    -max(
                        prio.get(x, -1),
                        self._wait[x] // self._wait_slowdown,
                    ),
                    arrival[x],
                ),
            )
        self._sync_notify(head_before)

    def _sync_notify(self, head_before: Optional[ProcId]) -> None:
        if self._notify is not None:
            head_after = self._q[0] if self._q else None
            if head_after != head_before:
                self._notify(self._key, "sync")

    def head(self) -> Optional[ProcId]:
        """The paper's ``choice_p(d)``: the requester served next, or None
        when nobody requests."""
        return self._q[0] if self._q else None

    def serve(self, s: ProcId) -> None:
        """Remove ``s`` after its message was copied / generated; it
        re-enters at the tail (with a reset wait-age) if it requests
        again."""
        try:
            self._q.remove(s)
        except ValueError:
            self._wait.pop(s, None)
            return
        self._wait.pop(s, None)
        if self._notify is not None:
            self._notify(self._key, "mutate")

    def items(self) -> List[ProcId]:
        """Current queue contents, head first (diagnostics, corruption)."""
        return list(self._q)

    def force(self, order: List[ProcId]) -> None:
        """Overwrite the queue (used to model arbitrary initial states)."""
        self._q = list(order)
        self._wait = {}
        if self._notify is not None:
            self._notify(self._key, "mutate")

    def state(self) -> Tuple:
        """Canonical serialization (order plus wait-ages) for state-space
        exploration."""
        return (tuple(self._q), tuple(sorted(self._wait.items())))

    # -- snapshot/restore ----------------------------------------------------

    def snapshot(self) -> Tuple:
        """State vector of this queue — identical to :meth:`state`, so the
        verifier's canonical form and its restore source are one value."""
        return self.state()

    def restore(self, vec: Tuple) -> None:
        """Reinstate a previously captured :meth:`snapshot`.  A no-op when
        the queue already matches; otherwise the content is replaced and an
        out-of-sync ``"mutate"`` change is reported (the restored order need
        not be reachable by a reconcile from the current candidates)."""
        order, waits = vec
        if tuple(self._q) == order and tuple(sorted(self._wait.items())) == waits:
            return
        self._q = list(order)
        self._wait = dict(waits)
        if self._notify is not None:
            self._notify(self._key, "mutate")

    def __len__(self) -> int:
        return len(self._q)

    def __repr__(self) -> str:
        return f"FairChoiceQueue({self._q!r}, policy={self._policy})"


#: The canonical clean-empty queue state — what an unmaterialized entry
#: reads as, and the eviction criterion (a queue in this state is
#: indistinguishable from no queue at all).
EMPTY_QUEUE_STATE: Tuple = ((), ())


class _QueueHandle:
    """Lazy stand-in for one ``choice_p(d)`` queue.

    Reads (``head``/``items``/``state``/``len``) answer the clean-empty
    values without materializing anything; mutations (``sync`` with
    candidates, ``serve``, ``force``, ``restore`` to a nonempty state)
    materialize the real :class:`FairChoiceQueue` first and delegate.  This
    keeps the classic ``proto.queues[d][p]`` idiom working unchanged over
    sparse storage.
    """

    __slots__ = ("_table", "_d", "_p")

    def __init__(self, table: "LazyChoiceTable", d, p) -> None:
        self._table = table
        self._d = d
        self._p = p

    def _peek(self) -> Optional[FairChoiceQueue]:
        return self._table.peek(self._d, self._p)

    @property
    def policy(self) -> str:
        return self._table.policy

    def head(self) -> Optional[ProcId]:
        q = self._peek()
        return None if q is None else q.head()

    def items(self) -> List[ProcId]:
        q = self._peek()
        return [] if q is None else q.items()

    def state(self) -> Tuple:
        q = self._peek()
        return EMPTY_QUEUE_STATE if q is None else q.state()

    def snapshot(self) -> Tuple:
        return self.state()

    def __len__(self) -> int:
        q = self._peek()
        return 0 if q is None else len(q)

    def sync(
        self,
        candidates: Iterable[ProcId],
        priority: Optional[Dict[ProcId, int]] = None,
    ) -> None:
        cand = set(candidates)
        q = self._peek()
        if q is None:
            if not cand:
                return  # empty-to-empty reconcile of an absent queue
            q = self._table.materialize(self._d, self._p)
        q.sync(cand, priority)

    def serve(self, s: ProcId) -> None:
        q = self._peek()
        if q is None:
            return  # serving from a clean-empty queue is a no-op
        q.serve(s)

    def force(self, order: List[ProcId]) -> None:
        # Always materialize: the dense engine fired a "mutate"
        # notification even when forcing an empty order, and the notifier
        # lives on the real queue.
        self._table.materialize(self._d, self._p).force(order)

    def restore(self, vec: Tuple) -> None:
        q = self._peek()
        if q is None:
            if vec == EMPTY_QUEUE_STATE:
                return
            q = self._table.materialize(self._d, self._p)
        q.restore(vec)

    def __repr__(self) -> str:
        q = self._peek()
        if q is None:
            return f"FairChoiceQueue([], policy={self._table.policy})"
        return repr(q)


class _QueueRowView:
    """``table[d]`` — indexable by processor, yielding queue handles."""

    __slots__ = ("_table", "_d")

    def __init__(self, table: "LazyChoiceTable", d) -> None:
        self._table = table
        self._d = d

    def __getitem__(self, p: ProcId) -> _QueueHandle:
        return _QueueHandle(self._table, self._d, p)


class LazyChoiceTable:
    """Sparse ``{d: {p: FairChoiceQueue}}`` store of all ``choice_p(d)``
    queues of one SSMFP instance.

    Queues are materialized on first mutation and evicted once clean-empty
    again (:meth:`evict_if_clean`); an absent queue reads as clean-empty
    through the ``table[d][p]`` handles, which is semantically identical —
    memory is O(queues with content or candidates), not O(n²).
    """

    __slots__ = ("policy", "_wait_cap", "_wait_slowdown", "_rows", "_notify")

    def __init__(
        self,
        policy: str = "fifo",
        wait_cap: int = 256,
        wait_slowdown: int = 32,
    ) -> None:
        # Validate eagerly: the dense table constructed n² queues at init,
        # surfacing bad parameters immediately, and callers rely on that.
        if policy not in _POLICIES:
            raise ValueError(f"unknown choice policy {policy!r}; want one of {_POLICIES}")
        if wait_cap < 1:
            raise ValueError(f"wait_cap must be positive, got {wait_cap}")
        if wait_slowdown < 1:
            raise ValueError(f"wait_slowdown must be positive, got {wait_slowdown}")
        self.policy = policy
        self._wait_cap = wait_cap
        self._wait_slowdown = wait_slowdown
        self._rows: Dict[object, Dict[ProcId, FairChoiceQueue]] = {}
        self._notify: Optional[ChangeNotifier] = None

    def bind_notifier(self, notify: Optional[ChangeNotifier]) -> None:
        """Install the change hook applied (with key ``(d, p)``) to every
        queue, existing and future."""
        self._notify = notify
        for d, row in self._rows.items():
            for p, q in row.items():
                q.bind_notifier(notify, (d, p))

    def __getitem__(self, d) -> _QueueRowView:
        return _QueueRowView(self, d)

    def peek(self, d, p) -> Optional[FairChoiceQueue]:
        """The materialized queue, or None — never materializes."""
        row = self._rows.get(d)
        return None if row is None else row.get(p)

    def head(self, d, p) -> Optional[ProcId]:
        """``choice_p(d)`` without allocating a handle (hot-path read)."""
        row = self._rows.get(d)
        if row is None:
            return None
        q = row.get(p)
        return None if q is None else q.head()

    def materialize(self, d, p) -> FairChoiceQueue:
        """Get-or-create the real queue at ``(d, p)``."""
        row = self._rows.get(d)
        if row is None:
            row = self._rows[d] = {}
        q = row.get(p)
        if q is None:
            q = row[p] = FairChoiceQueue(
                self.policy,
                wait_cap=self._wait_cap,
                wait_slowdown=self._wait_slowdown,
            )
            if self._notify is not None:
                q.bind_notifier(self._notify, (d, p))
        return q

    def evict_if_clean(self, d, p) -> bool:
        """Drop the queue at ``(d, p)`` if it is clean-empty.  Unobservable:
        re-materialization yields the identical state, and no notification
        fires (the head was and stays None)."""
        row = self._rows.get(d)
        if row is None:
            return False
        q = row.get(p)
        if q is None or q.state() != EMPTY_QUEUE_STATE:
            return False
        del row[p]
        if not row:
            del self._rows[d]
        return True

    def iter_materialized(self) -> Iterable[Tuple[object, ProcId, FairChoiceQueue]]:
        """Every materialized queue as ``(d, p, queue)`` (unordered)."""
        for d, row in self._rows.items():
            for p, q in row.items():
                yield d, p, q

    def sorted_states(self) -> List[Tuple]:
        """Canonical sparse serialization: ``(d, p, state)`` ascending for
        every queue with nonempty state — identical across differently
        materialized instances of the same logical configuration."""
        out = []
        for d in sorted(self._rows):
            row = self._rows[d]
            for p in sorted(row):
                state = row[p].state()
                if state != EMPTY_QUEUE_STATE:
                    out.append((d, p, state))
        return out

    def materialized_destinations(self) -> set:
        """Destinations with at least one materialized queue — the memory
        footprint index used by tests and the scale bench."""
        return set(self._rows)

    def materialized_count(self) -> int:
        return sum(len(row) for row in self._rows.values())
