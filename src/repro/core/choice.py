"""The ``choice_p(d)`` fairness queue.

The paper manages the fair selection of which requester (a neighbor with a
message to forward into ``bufR_p(d)``, or ``p`` itself wanting to generate)
is served next "with a queue of length Δ+1".  :class:`FairChoiceQueue`
implements exactly that: requesters enter at the tail when they start
satisfying the candidate predicate, leave when served or when they stop
satisfying it, and ``choice_p(d)`` is the head.  Bounded bypass: a candidate
waits behind at most Δ others.

Two deliberately *broken* policies are provided for the ablation benches:
``"lifo"`` (new candidates preempt the head) and ``"fixed"`` (always the
smallest identity) — both can starve a requester forever, which is the
livelock the paper's fairness exists to prevent.

A fourth policy, ``"aged"``, explores the paper's §4 future work (speed up
the worst case by changing the selection scheme): candidates are served in
decreasing order of how far their waiting message has already traveled
(its hop count), so fresh traffic cannot keep passing an old message at
every hop.  The exhaustive liveness checker found its flaw: a *generation
request* has no hops, so a persistent stream outranks it forever —
starvation.  The fifth policy, ``"aged_fair"``, fixes that: every
candidate also ages by *waiting time* (syncs spent in the queue, divided
by ``wait_slowdown`` and capped), and the effective priority is the max of
the two ages.  A starving request's wait-age grows past any bounded hop
count, so service is guaranteed — verified exhaustively in
``tests/test_liveness.py`` — while the slow accrual keeps in-flight
messages' speed advantage (with ``wait_slowdown=1`` the policy degrades
gracefully toward FIFO under saturation).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.types import ProcId

_POLICIES = ("fifo", "lifo", "fixed", "aged", "aged_fair")

#: Change-notification callback installed by :meth:`FairChoiceQueue.bind_notifier`:
#: called with the queue's bound key plus an event kind — ``"sync"`` when a
#: reconciliation changed the observable head, ``"mutate"`` when the queue was
#: mutated outside reconciliation (serve / force) and therefore needs a
#: re-sync before the next guard evaluation.
ChangeNotifier = Callable[[object, str], None]


class FairChoiceQueue:
    """Queue of requesters for one reception buffer ``bufR_p(d)``."""

    __slots__ = ("_q", "_policy", "_wait", "_wait_cap", "_wait_slowdown",
                 "_notify", "_key")

    def __init__(
        self,
        policy: str = "fifo",
        wait_cap: int = 256,
        wait_slowdown: int = 32,
    ) -> None:
        if policy not in _POLICIES:
            raise ValueError(f"unknown choice policy {policy!r}; want one of {_POLICIES}")
        if wait_cap < 1:
            raise ValueError(f"wait_cap must be positive, got {wait_cap}")
        if wait_slowdown < 1:
            raise ValueError(f"wait_slowdown must be positive, got {wait_slowdown}")
        self._q: List[ProcId] = []
        self._policy = policy
        #: aged_fair only: syncs each candidate has waited (capped so the
        #: state space stays finite for exhaustive exploration).
        self._wait: Dict[ProcId, int] = {}
        self._wait_cap = wait_cap
        self._wait_slowdown = wait_slowdown
        self._notify: Optional[ChangeNotifier] = None
        self._key: object = None

    @property
    def policy(self) -> str:
        """The selection policy ("fifo" is the paper's)."""
        return self._policy

    def bind_notifier(self, notify: Optional[ChangeNotifier], key: object) -> None:
        """Install the change-notification hook; ``key`` identifies this
        queue to the receiver (SSMFP binds its ``(d, p)`` coordinates)."""
        self._notify = notify
        self._key = key

    def sync(
        self,
        candidates: Iterable[ProcId],
        priority: Optional[Dict[ProcId, int]] = None,
    ) -> None:
        """Reconcile the queue with the current candidate set.

        Requesters that stopped satisfying the predicate leave; new ones
        enter (tail for fifo, head for lifo); "fixed" ignores arrival
        order entirely; "aged" orders by decreasing ``priority`` (the
        waiting message's hop count), FIFO-stable within equal ages.
        """
        cand = set(candidates)
        if not cand and not self._q:
            # Empty-to-empty reconcile: nothing to reorder, the head stays
            # None so there is nothing to notify, and no wait-age can exist
            # without a queued candidate.  This is the dominant case when a
            # full reconcile sweeps a mostly-idle component, so skip the
            # list rebuilds entirely.
            return
        head_before = self._q[0] if self._q else None
        if self._policy == "fixed":
            self._q = sorted(cand)
            self._sync_notify(head_before)
            return
        kept = [x for x in self._q if x in cand]
        fresh = sorted(cand.difference(kept))
        if self._policy == "fifo":
            self._q = kept + fresh
        elif self._policy == "lifo":
            self._q = fresh + kept
        elif self._policy == "aged":
            prio = priority or {}
            arrival = {x: i for i, x in enumerate(kept + fresh)}
            self._q = sorted(cand, key=lambda x: (-prio.get(x, -1), arrival[x]))
        else:  # aged_fair
            prio = priority or {}
            for lapsed in [x for x in self._wait if x not in cand]:
                del self._wait[lapsed]
            for x in cand:
                self._wait[x] = min(self._wait.get(x, -1) + 1, self._wait_cap)
            arrival = {x: i for i, x in enumerate(kept + fresh)}
            self._q = sorted(
                cand,
                key=lambda x: (
                    -max(
                        prio.get(x, -1),
                        self._wait[x] // self._wait_slowdown,
                    ),
                    arrival[x],
                ),
            )
        self._sync_notify(head_before)

    def _sync_notify(self, head_before: Optional[ProcId]) -> None:
        if self._notify is not None:
            head_after = self._q[0] if self._q else None
            if head_after != head_before:
                self._notify(self._key, "sync")

    def head(self) -> Optional[ProcId]:
        """The paper's ``choice_p(d)``: the requester served next, or None
        when nobody requests."""
        return self._q[0] if self._q else None

    def serve(self, s: ProcId) -> None:
        """Remove ``s`` after its message was copied / generated; it
        re-enters at the tail (with a reset wait-age) if it requests
        again."""
        try:
            self._q.remove(s)
        except ValueError:
            self._wait.pop(s, None)
            return
        self._wait.pop(s, None)
        if self._notify is not None:
            self._notify(self._key, "mutate")

    def items(self) -> List[ProcId]:
        """Current queue contents, head first (diagnostics, corruption)."""
        return list(self._q)

    def force(self, order: List[ProcId]) -> None:
        """Overwrite the queue (used to model arbitrary initial states)."""
        self._q = list(order)
        self._wait = {}
        if self._notify is not None:
            self._notify(self._key, "mutate")

    def state(self) -> Tuple:
        """Canonical serialization (order plus wait-ages) for state-space
        exploration."""
        return (tuple(self._q), tuple(sorted(self._wait.items())))

    # -- snapshot/restore ----------------------------------------------------

    def snapshot(self) -> Tuple:
        """State vector of this queue — identical to :meth:`state`, so the
        verifier's canonical form and its restore source are one value."""
        return self.state()

    def restore(self, vec: Tuple) -> None:
        """Reinstate a previously captured :meth:`snapshot`.  A no-op when
        the queue already matches; otherwise the content is replaced and an
        out-of-sync ``"mutate"`` change is reported (the restored order need
        not be reachable by a reconcile from the current candidates)."""
        order, waits = vec
        if tuple(self._q) == order and tuple(sorted(self._wait.items())) == waits:
            return
        self._q = list(order)
        self._wait = dict(waits)
        if self._notify is not None:
            self._notify(self._key, "mutate")

    def __len__(self) -> int:
        return len(self._q)

    def __repr__(self) -> str:
        return f"FairChoiceQueue({self._q!r}, policy={self._policy})"
