"""Caterpillars (Definition 3) — the proof's progress measure, executable.

A caterpillar associated with a message ``m`` on processor ``p`` is one of:

* **type 1** — ``bufR_p(d) = (m,q,c)`` and (``bufE_q(d) ≠ (m,·,c)`` or
  ``q = p``): the copy in the reception buffer is the authoritative one;
* **type 2** — ``bufE_p(d) = (m,q,c)`` and ``bufR_{nextHop_p(d)}(d) ≠
  (m,p,c)``: the emission buffer holds the message, not yet copied to the
  next hop;
* **type 3** — ``bufE_p(d) = (m,q',c)`` and some neighbor ``q`` has
  ``bufR_q(d) = (m,p,c)``: the message has been copied out but the original
  is not yet erased (an emission buffer can belong to several type-3
  caterpillars).

The classifier is used by tests (Lemma-1 progress: a type-1 caterpillar
eventually becomes type 2 then type 3 then type 1 at the next hop, or the
message is delivered), by the invariant checker, and by experiment F4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.protocol import SSMFP
from repro.statemodel.message import Message
from repro.types import DestId, ProcId


@dataclass(frozen=True)
class Caterpillar:
    """One classified caterpillar.

    ``buffers`` lists the (processor, kind) pairs forming the caterpillar:
    the single reception buffer for type 1, the emission buffer for type 2,
    and the emission buffer plus each holding neighbor for type 3.
    """

    ctype: int
    proc: ProcId
    dest: DestId
    message: Message
    buffers: Tuple[Tuple[ProcId, str], ...]


def caterpillars_at(proto: SSMFP, p: ProcId, d: DestId) -> List[Caterpillar]:
    """All caterpillars rooted at processor ``p`` for destination ``d``."""
    result: List[Caterpillar] = []
    buf_r = proto.bufs.R[d]
    buf_e = proto.bufs.E[d]

    msg_r = buf_r[p]
    if msg_r is not None:
        q = msg_r.last
        source_e = buf_e[q]
        if q == p or source_e is None or not source_e.same_payload_color(msg_r):
            result.append(
                Caterpillar(1, p, d, msg_r, ((p, "R"),))
            )

    msg_e = buf_e[p]
    if msg_e is not None:
        holders = [
            q
            for q in proto.net.neighbors(p)
            if buf_r[q] is not None
            and buf_r[q].matches(msg_e.payload, p, msg_e.color)
        ]
        if holders:
            result.append(
                Caterpillar(
                    3, p, d, msg_e,
                    ((p, "E"),) + tuple((q, "R") for q in holders),
                )
            )
        if p == d:
            # The destination has no next hop; an undelivered message in
            # bufE_d(d) with no copies out is the terminal type-2 shape.
            if not holders:
                result.append(Caterpillar(2, p, d, msg_e, ((p, "E"),)))
        else:
            nh = proto.routing.next_hop(p, d)
            target = buf_r[nh]
            if target is None or not target.matches(msg_e.payload, p, msg_e.color):
                result.append(Caterpillar(2, p, d, msg_e, ((p, "E"),)))
    return result


def all_caterpillars(proto: SSMFP, d: DestId) -> List[Caterpillar]:
    """Every caterpillar of destination ``d``'s component."""
    result: List[Caterpillar] = []
    for p in proto.net.processors():
        result.extend(caterpillars_at(proto, p, d))
    return result


def classify_types(proto: SSMFP, d: DestId) -> Tuple[int, int, int]:
    """Counts of (type 1, type 2, type 3) caterpillars for destination
    ``d`` — the summary experiment F4 tabulates."""
    counts = [0, 0, 0]
    for cat in all_caterpillars(proto, d):
        counts[cat.ctype - 1] += 1
    return (counts[0], counts[1], counts[2])
