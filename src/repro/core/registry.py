"""The protocol registry: resolve a protocol family member by name.

Every place the stack instantiates a forwarding protocol — the
simulation builder, the CLI subcommands, the sweep spec compiler, the
live-runtime cluster — goes through :func:`resolve`, so new family
members (the tree/linear variants of arXiv:1107.6014 / arXiv:1006.3432)
plug in by registering here once.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.core.family import ForwardingProtocol
from repro.core.protocol import SSMFP
from repro.core.protocol2 import SSMFP2
from repro.errors import ConfigurationError

#: Registry key (lowercase) → protocol class.
PROTOCOLS: Dict[str, Type[ForwardingProtocol]] = {
    "ssmfp": SSMFP,
    "ssmfp2": SSMFP2,
}


def available() -> List[str]:
    """Registered protocol names, ascending."""
    return sorted(PROTOCOLS)


def resolve(name: str) -> Type[ForwardingProtocol]:
    """Look up a protocol class by (case-insensitive) registry name."""
    cls = PROTOCOLS.get(str(name).lower())
    if cls is None:
        known = ", ".join(available())
        raise ConfigurationError(f"unknown protocol {name!r}; known: {known}")
    return cls
