"""The journal's second forwarding protocol (fused single-buffer scheme).

:class:`SSMFP2` is the second snap-stabilizing protocol of the journal
version of the source paper (arXiv:0905.2540), implemented on the exact
substrates SSMFP runs on: same :class:`~repro.core.buffers.ForwardingBuffers`
(only the R plane is used — ``buffer_kinds = ("R",)``), same ``choice``
fairness queues, same color procedure over the reception plane, same
ledger/higher-layer contracts, same incremental engine, snapshot layer
and verifiers — everything inherited from
:class:`~repro.core.family.ForwardingProtocol`.

The trade-off against SSMFP (see ``docs/protocols.md``): *n* buffers per
processor instead of *2n* — the Figure-1 destination-based buffer graph
instead of Figure-2 — at the price of a serialized hop handshake: a
buffer holds either the original or the freshly forwarded copy, never
both, so a lane cannot pipeline (``runtime_window_cap = 1`` — a faithful
live runtime runs its lanes stop-and-wait) and a copy must be *adopted*
(rule F2) before it can move again, one extra move per hop and per
delivery.
"""

from __future__ import annotations

from typing import Optional

from repro.core.family import ForwardingProtocol
from repro.core.rules2 import ALL_RULES2
from repro.network.graph import Network
from repro.routing.table import RoutingService
from repro.statemodel.message import Message
from repro.types import DestId, ProcId


class SSMFP2(ForwardingProtocol):
    """Second journal protocol: single fused buffer per (processor,
    destination), ownership encoded in the ``last`` field."""

    name = "SSMFP2"
    rules = ALL_RULES2
    generation_rule = "F1"
    forwarding_rules = ("F2", "F3")
    buffer_kinds = ("R",)
    offer_kind = "R"
    runtime_window_cap = 1  # one fused buffer per hop → stop-and-wait lanes

    def offered_message(self, d: DestId, q: ProcId) -> Optional[Message]:
        """SSMFP2 offers through the fused buffer, but only *owned*
        messages: an unadopted copy (``last ≠ q``) is still in the hop
        handshake and must not be forwarded onward."""
        msg = self.bufs.get_r(d, q)
        if msg is not None and msg.last == q:
            return msg
        return None

    @classmethod
    def buffer_graph(cls, net: Network, routing: RoutingService):
        from repro.buffergraph.destination_based import destination_based_buffer_graph

        return destination_based_buffer_graph(net, routing)
