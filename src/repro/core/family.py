"""The protocol-family seam: everything shared by the journal's forwarding
protocols, lifted out of the concrete rule sets.

The journal version of the source paper (arXiv:0905.2540) presents *two*
snap-stabilizing message-forwarding protocols with different buffer /
fairness trade-offs, and the tree/linear variants restrict them further.
They all share the same substrate: per-(processor, destination) buffers
with change notifiers, ``choice`` fairness queues, a color procedure, a
delivery ledger, routing through a :class:`~repro.routing.RoutingService`,
and — in this reproduction — the incremental enabled-set engine, the
snapshot/restore state layer and the exhaustive verifiers.

:class:`ForwardingProtocol` is that substrate as an explicit contract.  A
concrete protocol (``repro.core.protocol.SSMFP``,
``repro.core.protocol2.SSMFP2``) declares:

* ``name`` — the label stamped on actions, obs rows and arena tables;
* ``rules`` — the guarded-rule evaluators, in guard-evaluation order;
* ``generation_rule`` — the label of the starting action (the verifier's
  partial-order reduction treats generations specially: they race the
  global uid counter);
* ``forwarding_rules`` — the labels counted as forwarding *moves* by
  :func:`repro.sim.metrics.moves_per_delivery`;
* ``buffer_kinds`` — which planes of :class:`ForwardingBuffers` the
  protocol uses (``("R", "E")`` for the two-buffer scheme, ``("R",)`` for
  the fused single-buffer scheme); the corruption helpers plant garbage
  only into planes the rules can drain;
* ``offer_kind`` — the plane whose writes change neighbors' candidate
  sets (drives incremental ``choice``-queue reconciliation);
* :meth:`offered_message` — the message a neighbor is currently offering
  for forwarding (the candidate predicate and the aged-policy priority);
* :meth:`buffer_graph` — the protocol's Merlin-Schweitzer buffer graph
  shape (acyclicity is the deadlock-freedom argument);
* ``runtime_window_cap`` — the per-lane pipelining the live runtime may
  use while staying faithful to the protocol's buffer budget.

Everything else — the incremental dirty-component machinery (PR 1/3), the
sparse lazy queues (PR 7), footprint trails for partial-order reduction
(PR 8), snapshot/restore (PR 4) — lives here once and is inherited.

Incremental engine
------------------
Every guard of either protocol at processor ``p`` for destination ``d``
reads only *component ``d``* in the closed neighborhood of ``p``: ``p``'s
own buffers and queue head for ``d``, its neighbors' component-``d``
buffers, ``request_p`` (which concerns exactly one destination), and
``nextHop`` entries for ``d`` at ``p`` and its neighbors (``last``-hop
fields are always in ``N_p ∪ {p}`` — enforced by the corruption helpers).
The family therefore opts into the simulator's dirty-set protocol at
*component* granularity: all buffer, queue, request and routing mutations
flow through notifier hooks that dirty ``(q, d)`` pairs (writer's closed
neighborhood, single destination), rule-produced action lists are cached
per component and reconciled only when dirty, and a processor's enabled
list is assembled from its non-empty component entries in
O(occupied components) (:mod:`repro.statemodel.components`).
:meth:`dirty_after` reports the processor projection of the component
dirt.  The same notifications drive *incremental queue reconciliation*:
``before_step`` re-syncs only the ``choice`` queues whose candidate sets
may have changed instead of sweeping every active component (the
``aged_fair`` policy is the exception — its wait-ages tick once per
reconciliation, so it keeps the full per-step sweep; queue-head
notifications keep guard caching exact even then).  ``next_hop`` lookups
are cached per ``(d, p)`` and invalidated through the routing observer,
so ``candidates()`` stops re-querying the routing service per neighbor
per step.  See ``docs/engine.md`` for the per-rule locality argument and
``docs/protocols.md`` for the family contract.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.app.higher_layer import HigherLayer
from repro.core.buffers import ForwardingBuffers
from repro.core.choice import LazyChoiceTable
from repro.core.colors import free_color
from repro.core.ledger import DeliveryLedger
from repro.network.graph import Network
from repro.network.properties import max_degree
from repro.routing.table import RoutingService
from repro.statemodel.action import Action
from repro.statemodel.components import ComponentDirtyCache
from repro.statemodel.message import Message, MessageFactory
from repro.statemodel.protocol import Protocol
from repro.statemodel.snapshot import StateVector
from repro.types import Color, DestId, ProcId


class ForwardingProtocol(Protocol):
    """Base class of the snap-stabilizing forwarding-protocol family."""

    tracks_components = True

    # -- the family contract (overridden per protocol) -----------------------

    #: Protocol label (actions, obs rows, arena tables).
    name = "forwarding"
    #: Guarded-rule evaluators ``(proto, p, d) -> Optional[Action]`` in
    #: guard-evaluation order.
    rules: Tuple = ()
    #: Label of the generation (starting) rule — special-cased by the
    #: verifier's independence oracle (generations race the uid counter).
    generation_rule = "R1"
    #: Labels counted as forwarding moves by ``moves_per_delivery``.
    forwarding_rules: Tuple[str, ...] = ()
    #: Buffer planes the rule set reads and drains.
    buffer_kinds: Tuple[str, ...] = ("R", "E")
    #: The plane whose writes change neighbors' candidate sets.
    offer_kind = "E"
    #: Max in-flight records per (edge, destination) lane a live runtime
    #: may pipeline while honoring the protocol's buffer budget
    #: (``None`` = no protocol-imposed cap).
    runtime_window_cap: Optional[int] = None

    def offered_message(self, d: DestId, q: ProcId) -> Optional[Message]:
        """The message processor ``q`` currently offers for forwarding in
        component ``d`` (None when ``q`` offers nothing)."""
        raise NotImplementedError

    @classmethod
    def buffer_graph(cls, net: Network, routing: RoutingService):
        """The protocol's buffer graph (Merlin-Schweitzer shape)."""
        raise NotImplementedError

    # -- construction --------------------------------------------------------

    def __init__(
        self,
        net: Network,
        routing: RoutingService,
        higher_layer: HigherLayer,
        ledger: Optional[DeliveryLedger] = None,
        *,
        enable_colors: bool = True,
        choice_policy: str = "fifo",
        choice_wait_cap: int = 256,
        choice_wait_slowdown: int = 32,
    ) -> None:
        self.net = net
        self.routing = routing
        self.hl = higher_layer
        self.ledger = ledger if ledger is not None else DeliveryLedger()
        self.factory = MessageFactory()
        self.bufs = ForwardingBuffers(net.n)
        #: ``queues[d][p]`` — the ``choice_p(d)`` fairness queue.  Sparse:
        #: queues materialize on first mutation and are evicted once
        #: clean-empty again (an absent queue reads as clean-empty, which is
        #: the identical observable state).
        self.queues = LazyChoiceTable(
            choice_policy,
            wait_cap=choice_wait_cap,
            wait_slowdown=choice_wait_slowdown,
        )
        #: The paper's Δ; colors live in {0..Δ}.
        self.delta = max_degree(net)
        self._choice_policy = choice_policy
        self.enable_colors = enable_colors
        self.current_step = 0

        # -- incremental-engine state ---------------------------------------
        n = net.n
        #: Whether the routing provider reports its table mutations; without
        #: that discipline no derived state can be cached safely and the
        #: protocol behaves exactly like the pre-incremental engine.
        self._incremental = bool(getattr(routing, "notifies_mutations", False))
        self._aged = choice_policy in ("aged", "aged_fair")
        # aged_fair wait-ages advance once per sync, so reconciliation must
        # stay a full per-step sweep to keep the paper-equivalent semantics.
        self._sync_every_step = choice_policy == "aged_fair"
        self._all_dirty = True
        self._residue_purged = False
        #: Component-granular dirty sets + per-(p, d) action cache.  Only
        #: consulted outside the all-dirty regime (i.e. after the simulator
        #: has started draining :meth:`dirty_after`); external callers that
        #: never drain — the model checker, direct test probes — stay on the
        #: classic fresh scan forever.
        self._components = ComponentDirtyCache(n)
        self.component_evals = 0
        #: When the exhaustive verifier measures an action's *footprint*
        #: (see ``repro/verify/reduction.py``), it points this at a set and
        #: every notification sink records the ``(processor, destination)``
        #: components the mutation dirties — logged *before* the
        #: ``_all_dirty`` short-circuits, so the trace is complete even
        #: while the component cache is wholesale-invalid.  ``None`` in the
        #: set is the wildcard left by the non-localizable full-rescan
        #: hatch.  ``None`` here (the default) disables recording at the
        #: cost of one attribute test per notification.
        self.footprint_log: Optional[Set[Optional[Tuple[ProcId, DestId]]]] = None
        #: Queues to re-sync at the next ``before_step``, per destination.
        self._resync: Dict[DestId, Set[ProcId]] = {}
        #: Cached ``next_hop`` values, sparse ``{d: {q: hop}}`` — absent =
        #: not yet queried.
        self._nh_cache: Dict[DestId, Dict[ProcId, ProcId]] = {}
        #: Closed neighborhood of every processor, precomputed.
        self._nbhd: List[Tuple[ProcId, ...]] = [
            (p, *net.neighbors(p)) for p in net.processors()
        ]
        if self._incremental:
            # add_notifier (not bind) so later subscribers — the
            # message-lifecycle tracer of ``repro.obs`` — chain behind the
            # dirty-set hook instead of silently replacing it.
            self.bufs.add_notifier(self._on_buffer_write)
            self.hl.bind_notifier(self._on_request_change)
            routing.add_observer(self._on_routing_change)
            # Applied to every queue at materialization with key (d, p).
            self.queues.bind_notifier(self._on_queue_event)

    # -- shared procedures ---------------------------------------------------

    def pick_color(self, p: ProcId, d: DestId) -> Color:
        """``color_p(d)``; the ablation knob degrades it to constant 0."""
        if not self.enable_colors:
            return 0
        return free_color(self.net, self.bufs.R[d], p, self.delta)

    def next_hop(self, q: ProcId, d: DestId) -> ProcId:
        """``nextHop_q(d)`` through the per-entry cache (invalidated by the
        routing observer; bypassed for non-notifying providers)."""
        if not self._incremental:
            return self.routing.next_hop(q, d)
        row = self._nh_cache.get(d)
        if row is None:
            row = self._nh_cache[d] = {}
        hop = row.get(q)
        if hop is None:
            hop = row[q] = self.routing.next_hop(q, d)
        return hop

    def candidates(self, p: ProcId, d: DestId) -> Set[ProcId]:
        """The requesters ``choice_p(d)`` selects among: neighbors offering
        a message routed through ``p``, plus ``p`` itself when it wants to
        generate for ``d``."""
        cand: Set[ProcId] = set()
        offered = self.offered_message
        for q in self.net.neighbors(p):
            if offered(d, q) is not None and self.next_hop(q, d) == p:
                cand.add(q)
        if self.hl.request[p] and self.hl.next_destination(p) == d:
            cand.add(p)
        return cand

    # -- incremental-engine notification sinks -------------------------------

    def _on_buffer_write(self, d: DestId, p: ProcId, kind: str) -> None:
        """A buffer of ``p`` in component ``d`` was written.  Guards reading
        it live in component ``d`` of the closed neighborhood of ``p``
        (buffers are strictly per-destination — no rule reads across
        components); writes to the *offer* plane also change the candidate
        sets of ``p``'s neighbors."""
        nbhd = self._nbhd[p]
        log = self.footprint_log
        if log is not None:
            log.update((x, d) for x in nbhd)
        if self._all_dirty:
            return
        self._components.mark_many(nbhd, d)
        if kind == self.offer_kind:
            self._resync.setdefault(d, set()).update(nbhd)

    def _on_queue_event(self, key, kind: str) -> None:
        """``choice_p(d)`` changed.  Only ``p``'s own guards for component
        ``d`` read the head; out-of-sync mutations (serve/force)
        additionally require the queue to be reconciled before the next
        guard evaluation."""
        d, p = key
        log = self.footprint_log
        if log is not None:
            log.add((p, d))
        if self._all_dirty:
            return
        self._components.mark(p, d)
        if kind == "mutate":
            self._resync.setdefault(d, set()).add(p)

    def _on_request_change(self, p: ProcId, dest: Optional[DestId]) -> None:
        """``request_p`` was raised or lowered for destination ``dest`` —
        only the generation rule at the single component ``(p, dest)``
        reads the handshake."""
        log = self.footprint_log
        if log is not None:
            log.add((p, dest) if dest is not None else None)
        if self._all_dirty:
            return
        if dest is None:
            # A raise/lower with no identifiable destination cannot be
            # localized; fall back to the full re-scan hatch.
            self.mark_all_dirty()
            return
        self._components.mark(p, dest)
        self._resync.setdefault(dest, set()).add(p)

    def _on_routing_change(self, p: Optional[ProcId], d: Optional[DestId]) -> None:
        """``nextHop_p(d)`` moved (or, with ``(None, None)``, the whole
        table was rewritten).  Invalidate the hop cache and dirty every
        reader — all in component ``d``: ``p``'s own erase guard, the
        candidate sets of ``p``'s neighbors, and the duplicate-cleanup
        guards at holders of copies last forwarded by ``p`` (always within
        the closed neighborhood)."""
        log = self.footprint_log
        if p is None or d is None:
            if log is not None:
                log.add(None)
            self._nh_cache.clear()
            self.mark_all_dirty()
            return
        if log is not None:
            log.update((x, d) for x in self._nbhd[p])
        row = self._nh_cache.get(d)
        if row is not None:
            row.pop(p, None)
        if self._all_dirty:
            return
        nbhd = self._nbhd[p]
        self._components.mark_many(nbhd, d)
        self._resync.setdefault(d, set()).update(nbhd)

    def mark_all_dirty(self) -> None:
        """Fall back to a full re-scan and full queue reconciliation at the
        next step — the hatch for mutations outside the notifier hooks.
        The component cache is rebuilt wholesale when the simulator next
        drains :meth:`dirty_after`."""
        log = self.footprint_log
        if log is not None:
            log.add(None)
        self._all_dirty = True
        self._resync.clear()

    def dirty_after(self, selection) -> Optional[Set[ProcId]]:
        if not self._incremental:
            return None
        if self._all_dirty:
            self._all_dirty = False
            self._components.invalidate_all()
            return None
        # Project the component dirt onto processors *without* draining it:
        # each processor's dirty components are reconciled lazily inside
        # :meth:`enabled_actions`.  A processor whose forwarding actions are
        # priority-masked (the routing layer answers first) keeps its dirt
        # until the mask lifts and its components are finally re-evaluated.
        return set(self._components.dirty_pids)

    # -- Protocol interface --------------------------------------------------

    def before_step(self, step: int) -> None:
        """Environment phase: raise requests, reconcile choice queues.

        With the incremental engine, only queues whose candidate sets may
        have changed since the previous step (recorded by the notifier
        hooks) are reconciled; otherwise every destination component that
        can possibly act (occupied buffers or a pending request) is swept —
        idle components have no candidates by definition, and their rules'
        guards are all false.
        """
        self.current_step = step
        self.hl.before_step(step)
        if self._incremental and not self._all_dirty and not self._sync_every_step:
            resync = self._resync
            if resync:
                self._resync = {}
                for d, procs in resync.items():
                    for p in procs:
                        self._sync_queue(d, p)
        else:
            self._resync.clear()
            self._full_reconcile()

    def _full_reconcile(self) -> None:
        """Reconcile every queue of every active destination component."""
        active = self.active_destinations()
        procs = self.net.processors()
        for d in active:
            for p in procs:
                self._sync_queue(d, p)
        if self._incremental and not self._residue_purged and not self._sync_every_step:
            # One-time purge of scrambled initial queue entries in *inactive*
            # components.  The classic engine removes them lazily the step
            # the component activates (with no offered message and no
            # request yet, every stale entry is a non-candidate); purging
            # now is trace-equivalent because guards never read queues of
            # inactive components, and it keeps the incremental resync
            # channel free of pre-execution residue.  Only *materialized*
            # queues can hold residue — an absent queue is clean-empty by
            # construction — so the sweep is O(materialized), not O(n²).
            # aged_fair skips this: it full-reconciles every step, so
            # residue is handled exactly like the classic engine already.
            self._residue_purged = True
            stale = [
                (d, p)
                for d, p, _ in self.queues.iter_materialized()
                if d not in active
            ]
            for d, p in stale:
                self._sync_queue(d, p)

    def _sync_queue(self, d: DestId, p: ProcId) -> None:
        cand = self.candidates(p, d)
        queue = self.queues.peek(d, p)
        if queue is None:
            if not cand:
                return  # absent queue ≡ clean-empty: nothing to reconcile
            queue = self.queues.materialize(d, p)
        if self._aged:
            offered = self.offered_message
            priority = {}
            for q in cand:
                if q != p:
                    msg = offered(d, q)
                    if msg is not None:
                        priority[q] = msg.hops
            queue.sync(cand, priority)
        else:
            queue.sync(cand)
        if not cand:
            # Quiescence eviction: a drained queue with no candidates is
            # indistinguishable from an absent one, so drop it.
            self.queues.evict_if_clean(d, p)

    def active_destinations(self) -> Set[DestId]:
        """Destinations whose component holds messages or has a pending
        generation request — O(active) from the incrementally maintained
        occupancy and request indexes, never an O(n) sweep."""
        return self.bufs.occupied_components() | self.hl.requested_destinations()

    def _active_sorted(self, request_dest: Optional[DestId]) -> List[DestId]:
        """Ascending list of destinations a scan must examine: occupied
        components plus (when raised) the scanning processor's own request
        destination.  Ascending order is part of the enabled-list contract —
        daemons observe it."""
        occ = self.bufs.occupied_components()
        if request_dest is not None and request_dest not in occ:
            return sorted([*occ, request_dest])
        return sorted(occ)

    def _eval_component(self, pid: ProcId, d: DestId) -> List[Action]:
        """Evaluate the protocol's rules at the single component ``(pid, d)``.

        Fast path: with both local buffers empty, only a generation (a
        pending request chosen by the queue) or a forwarding copy (a queued
        neighbor offer) can be enabled — both require a nonempty choice
        queue.  Sound whether or not the component is active, so the
        reconcile path can call this for any dirty component.
        """
        bufs = self.bufs
        if (
            bufs.get_r(d, pid) is None
            and bufs.get_e(d, pid) is None
            and self.queues.head(d, pid) is None
        ):
            return []
        actions: List[Action] = []
        for rule in self.rules:
            action = rule(self, pid, d)
            if action is not None:
                actions.append(action)
        return actions

    def _scan_enabled(self, pid: ProcId, count: bool) -> List[Action]:
        """Classic left-to-right scan over the active destinations (the
        full-scan engine and the pre-cache oracle)."""
        hl = self.hl
        request_dest = hl.next_destination(pid) if hl.request[pid] else None
        active = self._active_sorted(request_dest)
        if count:
            self.component_evals += len(active)
        actions: List[Action] = []
        for d in active:
            actions.extend(self._eval_component(pid, d))
        return actions

    def _rebuild_components(self, pid: ProcId) -> None:
        """(Re)build every component entry of ``pid`` from scratch — same
        cost and same examination order as one classic scan."""
        cache = self._components
        entries = cache.entries[pid]
        entries.clear()
        hl = self.hl
        request_dest = hl.next_destination(pid) if hl.request[pid] else None
        active = self._active_sorted(request_dest)
        self.component_evals += len(active)
        for d in active:
            acts = self._eval_component(pid, d)
            if acts:
                entries[d] = acts
        dirty = cache.dirty.get(pid)
        if dirty:
            dirty.clear()
        cache.valid[pid] = True

    def _reconcile_components(self, pid: ProcId) -> None:
        """Re-evaluate only ``pid``'s dirty components, updating the
        non-empty-entry index in place."""
        cache = self._components
        entries = cache.entries[pid]
        dirty = cache.dirty[pid]
        self.component_evals += len(dirty)
        for d in dirty:
            acts = self._eval_component(pid, d)
            if acts:
                entries[d] = acts
            else:
                entries.pop(d, None)
        dirty.clear()

    def enabled_actions(self, pid: ProcId) -> List[Action]:
        if not self._incremental or self._all_dirty:
            return self._scan_enabled(pid, count=True)
        cache = self._components
        if not cache.valid[pid]:
            self._rebuild_components(pid)
        elif cache.dirty.get(pid):
            self._reconcile_components(pid)
        cache.dirty_pids.discard(pid)
        return cache.assemble(pid)

    def enabled_actions_fresh(self, pid: ProcId) -> List[Action]:
        """The ``debug_check`` oracle: always a full fresh scan, no caches,
        no counting."""
        return self._scan_enabled(pid, count=False)

    # -- introspection -------------------------------------------------------

    def network_is_empty(self) -> bool:
        """True iff no buffer of any component holds a message."""
        return self.bufs.total_occupied() == 0

    def dump(self) -> Dict[str, object]:
        """Compact dump of every occupied buffer, keyed ``bufK_p(d)``."""
        out: Dict[str, object] = {}
        for d, p, kind, msg in self.bufs.iter_messages():
            out[f"buf{kind}_{p}({d})"] = repr(msg)
        return out

    # -- snapshot/restore ----------------------------------------------------

    def snapshot(self) -> StateVector:
        """State vector of the full forwarding layer: buffers, nonempty
        choice queues (sparse, ascending ``(d, p)``), the higher layer, the
        ledger, the uid counters and the current step.  The routing
        provider is *not* included — either it is immutable
        (:class:`~repro.routing.static.StaticRouting`) or it participates
        in the protocol stack and snapshots itself.  Engine caches
        (component dirt, ``next_hop`` cache, resync sets) are derived
        state: :meth:`restore` repairs them through the ordinary change
        notifiers."""
        return (
            self.bufs.snapshot(),
            tuple(self.queues.sorted_states()),
            self.hl.snapshot(),
            self.ledger.snapshot(),
            self.factory.snapshot(),
            self.current_step,
        )

    def restore(self, vec: StateVector) -> None:
        """Reinstate a previously captured :meth:`snapshot`.  Every real
        change flows through the component mutators, so the incremental
        engine's dirty sets end up covering exactly the components that
        differ from the pre-restore configuration."""
        bufs_vec, queues_vec, hl_vec, ledger_vec, factory_vec, step = vec
        self.bufs.restore(bufs_vec)
        target = {(d, p): state for d, p, state in queues_vec}
        empty = ((), ())
        # Materialized queues absent from the target go back to clean-empty
        # (with the same "mutate" notification a dense restore fired) and
        # are then evicted; unmaterialized ones are clean-empty already.
        for d, p, queue in list(self.queues.iter_materialized()):
            if (d, p) not in target:
                if len(queue) or queue.state() != empty:
                    queue.restore(empty)
                self.queues.evict_if_clean(d, p)
        for (d, p), state in target.items():
            self.queues.materialize(d, p).restore(state)
        self.hl.restore(hl_vec)
        self.ledger.restore(ledger_vec)
        self.factory.restore(factory_vec)
        self.current_step = step
