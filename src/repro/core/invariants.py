"""Machine-checked safety invariants (Lemmas 4 & 5 as runtime checks).

:class:`InvariantChecker` scans a
:class:`~repro.core.family.ForwardingProtocol` instance (any family
member — the checks read only the shared buffer/ledger substrate) and
raises :class:`~repro.errors.InvariantViolation` when a
configuration the proofs forbid is reached.  Installed as a per-step strict
hook in the core tests, it turns every simulated execution into thousands of
checked theorems.

The checks (and their preconditions) are:

* **well-formedness** — every stored message has a color in ``{0..Δ}``, a
  ``last`` field in ``N_p ∪ {p}``, and a ``dest`` tag equal to its
  component's destination;
* **no loss** (Lemma 4) — every generated-but-undelivered valid uid has at
  least one stored copy;
* **no duplication** (Lemma 5) — a delivered valid uid has zero stored
  copies (nothing left to deliver again), and the ledger holds at most one
  delivery for it;
* **copy geometry** — all stored copies of a valid uid live in its own
  destination component.

Preconditions for the no-loss/no-duplication checks: the routing protocol
runs with priority (the paper's assumption) and the workload contains no
self-addressed messages (see :mod:`repro.app.higher_layer`).  The
well-formedness checks hold unconditionally.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.family import ForwardingProtocol
from repro.errors import InvariantViolation
from repro.types import ProcId


class InvariantChecker:
    """Scans a forwarding-protocol instance for violations of the paper's
    lemmas."""

    def __init__(self, proto: ForwardingProtocol) -> None:
        self._proto = proto

    def check(self) -> None:
        """Run all checks; raises :class:`InvariantViolation` on failure."""
        self.check_well_formed()
        self.check_no_loss()
        self.check_no_duplication()
        self.check_copy_geometry()

    # Individual checks -------------------------------------------------------

    def check_well_formed(self) -> None:
        """Colors in range, last-hop in ``N_p ∪ {p}``, dest tags match."""
        proto = self._proto
        delta = proto.delta
        for d, p, kind, msg in proto.bufs.iter_messages():
            if not (0 <= msg.color <= delta):
                raise InvariantViolation(
                    f"buf{kind}_{p}({d}) holds color {msg.color} outside 0..{delta}"
                )
            if msg.last != p and msg.last not in proto.net.neighbors(p):
                raise InvariantViolation(
                    f"buf{kind}_{p}({d}) holds last={msg.last}, "
                    f"not in N_{p} ∪ {{{p}}}"
                )
            if msg.dest != d:
                raise InvariantViolation(
                    f"buf{kind}_{p}({d}) holds a message tagged dest={msg.dest}"
                )

    def _valid_copy_locations(self) -> Dict[int, List[Tuple[int, ProcId, str]]]:
        locations: Dict[int, List[Tuple[int, ProcId, str]]] = {}
        for d, p, kind, msg in self._proto.bufs.iter_messages():
            if msg.valid:
                locations.setdefault(msg.uid, []).append((d, p, kind))
        return locations

    def check_no_loss(self) -> None:
        """Every outstanding valid uid is stored somewhere (Lemma 4)."""
        stored: Set[int] = set(self._valid_copy_locations())
        missing = self._proto.ledger.outstanding_uids().difference(stored)
        if missing:
            raise InvariantViolation(
                f"valid messages lost (no stored copy, never delivered): "
                f"uids {sorted(missing)}"
            )

    def check_no_duplication(self) -> None:
        """A delivered valid uid has no residual stored copy (Lemma 5)."""
        ledger = self._proto.ledger
        for uid, locs in self._valid_copy_locations().items():
            if ledger.delivery_record(uid) is not None:
                raise InvariantViolation(
                    f"valid uid {uid} was delivered but copies remain at {locs}"
                )

    def check_copy_geometry(self) -> None:
        """Copies of a valid uid stay inside its destination's component."""
        ledger = self._proto.ledger
        for uid, locs in self._valid_copy_locations().items():
            info = ledger.generation_info(uid)
            if info is None:
                raise InvariantViolation(
                    f"stored valid uid {uid} was never recorded as generated"
                )
            _, dest, _ = info
            wrong = [loc for loc in locs if loc[0] != dest]
            if wrong:
                raise InvariantViolation(
                    f"valid uid {uid} (dest {dest}) has copies in foreign "
                    f"components: {wrong}"
                )

    # Simulator hook -------------------------------------------------------------

    def as_hook(self):
        """Adapter usable as a :class:`~repro.statemodel.Simulator` strict
        hook (ignores the simulator argument)."""

        def hook(_sim) -> None:
            self.check()

        return hook
