"""Shared type aliases and small value types used across the library.

The whole reproduction works with plain integer processor identities
(``ProcId``), matching the paper's assumption of an identified network whose
identity set ``I = {0, ..., n-1}`` is known to every processor.
"""

from __future__ import annotations

from typing import Tuple

#: Identity of a processor.  The paper assumes identities are unique and the
#: full identity set is known network-wide; we use ``0..n-1``.
ProcId = int

#: A destination identity (same space as :data:`ProcId`).
DestId = int

#: An undirected edge, stored with endpoints sorted ascending.
Edge = Tuple[ProcId, ProcId]

#: A color drawn from ``{0, ..., Δ}`` as used by the SSMFP message flag.
Color = int


def normalized_edge(u: ProcId, v: ProcId) -> Edge:
    """Return the canonical (sorted) representation of undirected edge (u, v).

    >>> normalized_edge(3, 1)
    (1, 3)
    """
    return (u, v) if u <= v else (v, u)
