"""Command-line interface.

Entry points (also available via ``python -m repro``):

* ``repro list`` — the experiment registry;
* ``repro experiment <id>`` — regenerate one figure/proposition table
  (``--jsonl`` also writes its tables as a machine-readable artifact);
* ``repro simulate`` — run an SSMFP simulation from declarative flags
  (topology, corruption, workload, daemon, seed) and print the outcome,
  optionally watching one destination component live (``--watch``),
  exporting metrics/lifecycles (``--jsonl``) or printing one message's
  hop-by-hop causal timeline (``--timeline``);
* ``repro obs summarize|diff`` — inspect and compare JSONL artifacts;
* ``repro scenario run|campaign`` — declarative chaos scenarios: one
  TOML/JSON spec (workload + timed fault schedule + budgets + pass
  criteria) compiled onto the simulator's step clock or the runtime's
  wall clock, optionally expanded over matrix axes (``docs/scenarios.md``);
* ``repro runtime`` — run the protocol *live*: an asyncio cluster over an
  in-memory or TCP transport, optionally behind seeded fault injection,
  judged by the conformance oracle (``docs/runtime.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.app.workload import hotspot_workload, uniform_workload
from repro.experiments import EXPERIMENTS, run_experiment
from repro.network.topologies import topology_by_name
from repro.sim.runner import build_simulation, delivered_and_drained
from repro.statemodel.daemon import (
    CentralRandomDaemon,
    DistributedRandomDaemon,
    RoundRobinDaemon,
    SynchronousDaemon,
)
from repro.viz.ascii_art import render_component_state, render_network

_DAEMONS = {
    "synchronous": lambda seed: SynchronousDaemon(),
    "central": CentralRandomDaemon,
    "distributed": DistributedRandomDaemon,
    "round-robin": lambda seed: RoundRobinDaemon(),
}

_TOPOLOGY_ARGS = {
    "line": ("n",),
    "ring": ("n",),
    "star": ("n",),
    "complete": ("n",),
    "hypercube": ("dim",),
    "grid": ("rows", "cols"),
    "torus": ("rows", "cols"),
    "fig1": (),
    "fig3": (),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Snap-stabilizing message forwarding (SSMFP) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the experiments of the registry")

    exp = sub.add_parser("experiment", help="regenerate one experiment")
    exp.add_argument("id", help="experiment id (e.g. F3, P5, T1, X1)")
    exp.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="also write the experiment's tables as a JSONL artifact",
    )

    alla = sub.add_parser("all", help="regenerate every experiment back to back")
    alla.add_argument(
        "--jsonl-dir", default=None, metavar="DIR",
        help="write one JSONL artifact per experiment into DIR",
    )

    rec = sub.add_parser(
        "record", help="run a spec file, write a reproducibility record"
    )
    rec.add_argument("spec", help="path to a JSON simulation spec")
    rec.add_argument("-o", "--output", default=None, help="record output path")
    rec.add_argument("--max-steps", type=int, default=500_000)

    ver = sub.add_parser(
        "verify",
        help="re-run a record and check the fingerprint matches, or "
             "(without a record) model-check an instance exhaustively",
    )
    ver.add_argument(
        "record", nargs="?", default=None,
        help="path to a JSON record; omit to model-check the instance "
             "described by the flags below instead",
    )
    ver.add_argument(
        "--topology", default="line", choices=sorted(_TOPOLOGY_ARGS)
    )
    ver.add_argument("--n", type=int, default=3)
    ver.add_argument("--rows", type=int, default=2)
    ver.add_argument("--cols", type=int, default=2)
    ver.add_argument("--dim", type=int, default=2)
    ver.add_argument(
        "--messages", type=int, default=2,
        help="submissions fed to the instance (round-robin sources, "
             "seeded random destinations)",
    )
    ver.add_argument(
        "--garbage", type=float, default=0.0,
        help="fraction of buffers pre-filled with invalid messages",
    )
    ver.add_argument("--seed", type=int, default=0)
    ver.add_argument(
        "--protocol", default="ssmfp", metavar="NAME",
        help="forwarding protocol to model-check (registry name; "
             "see repro.core.registry)",
    )
    ver.add_argument(
        "--engine", default="snapshot",
        choices=["snapshot", "deepcopy", "parallel"],
    )
    ver.add_argument(
        "--reduction", default="none",
        choices=["none", "por", "symmetry", "full"],
        help="state-space reduction (snapshot/parallel engines only)",
    )
    ver.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for --engine parallel",
    )
    ver.add_argument(
        "--liveness", action="store_true",
        help="also search the reachable graph for fair livelocks",
    )
    ver.add_argument("--max-states", type=int, default=200_000)
    ver.add_argument(
        "--max-width", type=int, default=20_000,
        help="per-state daemon-selection fan-out cap",
    )
    ver.add_argument(
        "--log-every", type=int, default=0, metavar="STATES",
        help="print a progress row every STATES expanded states",
    )
    ver.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="write verify metrics as a repro.obs/v1 JSONL artifact",
    )

    swp = sub.add_parser(
        "sweep", help="run every spec in a JSON file, print a result table"
    )
    swp.add_argument(
        "specs",
        help="JSON file: a list of specs, or {'specs': [...]} with optional "
             "'label' per spec",
    )
    swp.add_argument("--max-steps", type=int, default=500_000)
    swp.add_argument(
        "--protocol", default="ssmfp", metavar="NAME",
        help="default forwarding protocol for specs that don't name one",
    )
    swp.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="fan the specs out over N worker processes (default: serial); "
             "rows are identical to a serial sweep",
    )
    swp.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="also write the result table as a JSONL artifact",
    )

    obs = sub.add_parser(
        "obs", help="inspect schema-versioned JSONL artifacts"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_sum = obs_sub.add_parser("summarize", help="summarize one artifact")
    obs_sum.add_argument("artifact", help="path to a .jsonl artifact")
    obs_diff = obs_sub.add_parser("diff", help="compare two artifacts")
    obs_diff.add_argument("a", help="baseline artifact")
    obs_diff.add_argument("b", help="candidate artifact")
    obs_diff.add_argument(
        "--tolerance", type=float, default=1e-9,
        help="numeric differences at or below this are ignored",
    )

    scn = sub.add_parser(
        "scenario",
        help="run declarative chaos scenarios (docs/scenarios.md)",
    )
    scn_sub = scn.add_subparsers(dest="scenario_command", required=True)
    scn_run = scn_sub.add_parser(
        "run", help="run one scenario spec (TOML or JSON) once"
    )
    scn_run.add_argument("spec", help="path to a scenario spec (.toml/.json)")
    scn_run.add_argument(
        "--target", default=None, choices=["simulate", "runtime"],
        help="override the spec's execution target",
    )
    scn_run.add_argument(
        "--smoke", action="store_true",
        help="shrink workload and budgets for a fast CI-sized run",
    )
    scn_run.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="write the run's metrics + fault timeline as a JSONL artifact",
    )
    scn_camp = scn_sub.add_parser(
        "campaign",
        help="expand the spec's matrix axes and run the whole family",
    )
    scn_camp.add_argument("spec", help="path to a scenario spec (.toml/.json)")
    scn_camp.add_argument(
        "--target", default=None, choices=["simulate", "runtime"],
        help="override the spec's execution target for every run",
    )
    scn_camp.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="fan runs out over N worker processes (default: serial)",
    )
    scn_camp.add_argument(
        "--smoke", action="store_true",
        help="shrink every run's workload and budgets for CI",
    )
    scn_camp.add_argument(
        "--artifact-dir", default=None, metavar="DIR",
        help="write one repro.obs/v1 artifact per run into DIR",
    )
    scn_camp.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="write the campaign summary as a JSONL artifact",
    )

    run = sub.add_parser(
        "runtime",
        help="run a live asyncio cluster and check conformance",
    )
    run.add_argument("--topology", default="ring", choices=sorted(_TOPOLOGY_ARGS))
    run.add_argument("--n", type=int, default=8)
    run.add_argument("--rows", type=int, default=3)
    run.add_argument("--cols", type=int, default=3)
    run.add_argument("--dim", type=int, default=3)
    run.add_argument("--messages", type=int, default=200)
    run.add_argument(
        "--workload", default="uniform", choices=["uniform", "hotspot"]
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--protocol", default="ssmfp", metavar="NAME",
        help="forwarding protocol the cluster runs (registry name; "
             "ssmfp2 caps lanes at window 1 — stop-and-wait hops)",
    )
    run.add_argument("--transport", default="local", choices=["local", "tcp"])
    run.add_argument(
        "--procs", type=int, default=1,
        help="worker processes (>1 requires --transport tcp)",
    )
    run.add_argument(
        "--port-base", type=int, default=0,
        help="first TCP port (0 = auto-allocate free ports)",
    )
    run.add_argument("--loss", type=float, default=0.0, help="frame loss probability")
    run.add_argument("--dup", type=float, default=0.0, help="duplication probability")
    run.add_argument("--reorder", type=float, default=0.0, help="reorder probability")
    run.add_argument(
        "--latency-ms", default=None, metavar="LO:HI",
        help="uniform per-frame latency range in milliseconds",
    )
    run.add_argument(
        "--flap-period", type=float, default=None, metavar="S",
        help="take one random link down every S seconds",
    )
    run.add_argument(
        "--flap-down", type=float, default=0.05, metavar="S",
        help="how long a flapped link stays down",
    )
    run.add_argument("--deadline", type=float, default=60.0, metavar="S")
    run.add_argument(
        "--window", type=int, default=32,
        help="in-flight DATA window per (edge, destination) lane",
    )
    run.add_argument(
        "--max-batch", type=int, default=64,
        help="max records packed into one wire frame",
    )
    run.add_argument(
        "--wire-version", type=int, default=2, choices=[1, 2],
        help="frame encoding: 2 = binary (default), 1 = legacy JSON",
    )
    run.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="write run metrics as a repro.obs/v1 JSONL artifact",
    )

    simp = sub.add_parser("simulate", help="run one simulation")
    simp.add_argument("--topology", default="ring", choices=sorted(_TOPOLOGY_ARGS))
    simp.add_argument("--n", type=int, default=8)
    simp.add_argument("--rows", type=int, default=3)
    simp.add_argument("--cols", type=int, default=3)
    simp.add_argument("--dim", type=int, default=3)
    simp.add_argument("--messages", type=int, default=20)
    simp.add_argument(
        "--workload", default="uniform", choices=["uniform", "hotspot"]
    )
    simp.add_argument("--seed", type=int, default=0)
    simp.add_argument(
        "--protocol", default="ssmfp", metavar="NAME",
        help="forwarding protocol to simulate (registry name)",
    )
    simp.add_argument(
        "--corrupt", default="none", choices=["none", "random", "worst"],
        help="initial routing-table corruption",
    )
    simp.add_argument(
        "--garbage", type=float, default=0.0,
        help="fraction of buffers pre-filled with invalid messages",
    )
    simp.add_argument(
        "--daemon", default="distributed", choices=sorted(_DAEMONS)
    )
    simp.add_argument("--max-steps", type=int, default=500_000)
    simp.add_argument(
        "--watch", type=int, default=None, metavar="DEST",
        help="print DEST's component every 25 steps",
    )
    simp.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="write metrics and message lifecycles as a JSONL artifact",
    )
    simp.add_argument(
        "--timeline", type=int, default=None, metavar="UID",
        help="print the hop-by-hop causal timeline of one message "
             "(0 = every delivered message)",
    )
    return parser


def _make_network(args):
    kwargs = {key: getattr(args, key) for key in _TOPOLOGY_ARGS[args.topology]}
    return topology_by_name(args.topology, **kwargs)


def _cmd_list() -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for exp_id, (description, _) in EXPERIMENTS.items():
        print(f"{exp_id.ljust(width)}  {description}")
    return 0


def _cmd_experiment(args) -> int:
    try:
        if args.jsonl:
            from repro.experiments.registry import run_experiment_with_artifact

            print(run_experiment_with_artifact(args.id, args.jsonl))
            print(f"artifact: {args.jsonl}", file=sys.stderr)
        else:
            print(run_experiment(args.id))
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    return 0


def _cmd_simulate(args) -> int:
    from repro.core.registry import resolve
    from repro.errors import ConfigurationError

    try:
        resolve(args.protocol)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    net = _make_network(args)
    if args.workload == "uniform":
        workload = uniform_workload(net.n, args.messages, seed=args.seed)
    else:
        workload = hotspot_workload(
            net.n, dest=0, per_source=max(1, args.messages // max(net.n - 1, 1)),
            seed=args.seed,
        )
    registry = tracer = None
    if args.jsonl or args.timeline is not None:
        from repro.obs import MessageTracer, MetricsRegistry

        registry = MetricsRegistry()
        tracer = MessageTracer()
    sim = build_simulation(
        net,
        workload=workload,
        routing_corruption=(
            None if args.corrupt == "none"
            else {"kind": args.corrupt, "seed": args.seed}
        ),
        garbage=(
            {"fraction": args.garbage, "seed": args.seed} if args.garbage else None
        ),
        daemon=_DAEMONS[args.daemon](args.seed),
        seed=args.seed,
        protocol=args.protocol,
        obs=registry,
        tracer=tracer,
    )
    print(render_network(net))
    print()
    watched = args.watch
    for _ in range(args.max_steps):
        if delivered_and_drained(sim):
            break
        if watched is not None and sim.sim.step_count % 25 == 0:
            print(f"-- step {sim.sim.step_count}")
            print(render_component_state(sim.forwarding, watched))
        report = sim.step()
        if report.terminal and not sim._fast_forward_workload():
            break
    ledger = sim.ledger
    print(
        f"steps={sim.sim.step_count} rounds={sim.sim.round_count} "
        f"generated={ledger.generated_count} "
        f"delivered={ledger.valid_delivered_count} "
        f"invalid_delivered={ledger.invalid_delivery_count}"
    )
    if tracer is not None and args.timeline is not None:
        uids = tracer.uids() if args.timeline == 0 else [args.timeline]
        for uid in uids:
            print(tracer.format_timeline(uid))
    if registry is not None and args.jsonl:
        from repro.obs.export import write_jsonl

        rows = registry.rows() + tracer.to_rows()
        count = write_jsonl(
            args.jsonl, rows, name="simulate",
            meta={
                "topology": args.topology,
                "protocol": args.protocol,
                "seed": args.seed,
                "messages": args.messages,
            },
        )
        print(f"artifact: {args.jsonl} ({count} rows)", file=sys.stderr)
    if not ledger.all_valid_delivered():
        print("WARNING: undelivered messages remain", file=sys.stderr)
        return 1
    print("all valid messages delivered exactly once")
    return 0


def _cmd_all(args) -> int:
    from repro.experiments.registry import main as run_all

    if args.jsonl_dir:
        import pathlib

        from repro.experiments.registry import run_experiment_with_artifact

        out_dir = pathlib.Path(args.jsonl_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        parts = []
        for exp_id, (description, _) in EXPERIMENTS.items():
            parts.append(f"=== {exp_id}: {description} ===")
            safe = exp_id.replace("/", "_")
            parts.append(
                run_experiment_with_artifact(exp_id, str(out_dir / f"{safe}.jsonl"))
            )
            parts.append("")
        print("\n".join(parts))
        print(f"artifacts: {out_dir}", file=sys.stderr)
        return 0
    print(run_all())
    return 0


def _cmd_obs(args) -> int:
    from repro.obs.export import diff_artifacts, summarize_artifact

    try:
        if args.obs_command == "summarize":
            print(summarize_artifact(args.artifact))
        else:
            print(diff_artifacts(args.a, args.b, tolerance=args.tolerance))
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_record(args) -> int:
    import json
    import pathlib

    from repro.errors import ReproError
    from repro.sim.recording import record_run

    try:
        spec = json.loads(pathlib.Path(args.spec).read_text())
    except OSError as exc:
        print(f"error: cannot read spec: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {args.spec} is not valid JSON: {exc}", file=sys.stderr)
        return 2
    try:
        record = record_run(spec, max_steps=args.max_steps)
    except ReproError as exc:
        print(f"error: spec rejected: {exc}", file=sys.stderr)
        return 2
    out = args.output or (str(pathlib.Path(args.spec).with_suffix("")) + ".record.json")
    pathlib.Path(out).write_text(record.to_json() + "\n")
    print(f"recorded: {out}")
    for key, value in sorted(record.outcome.items()):
        print(f"  {key}: {value}")
    return 0


def _cmd_verify(args) -> int:
    if args.record is None:
        return _cmd_verify_exhaustive(args)
    import json
    import pathlib

    from repro.errors import ReproError
    from repro.sim.recording import RunRecord, verify_record

    try:
        record = RunRecord.from_json(pathlib.Path(args.record).read_text())
    except OSError as exc:
        print(f"error: cannot read record: {exc}", file=sys.stderr)
        return 2
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        print(
            f"error: {args.record} is not a run record: {exc}", file=sys.stderr
        )
        return 2
    try:
        problems = verify_record(record)
    except ReproError as exc:
        print(f"error: record's spec no longer runs: {exc}", file=sys.stderr)
        return 2
    if problems:
        for problem in problems:
            print(f"MISMATCH {problem}", file=sys.stderr)
        return 1
    print("verified: the run reproduces bit-identically")
    return 0


def _cmd_verify_exhaustive(args) -> int:
    """Exhaustive model checking from the command line.

    Exit codes follow the record/verify convention: 0 — the instance is
    exhaustively verified (and livelock-free when ``--liveness``), 1 — a
    violation or fair livelock was found, 2 — the search could not be
    completed (truncation, configuration error)."""
    import random as _random

    from repro.app.higher_layer import HigherLayer
    from repro.core.corruption import plant_invalid_messages
    from repro.core.ledger import DeliveryLedger
    from repro.core.registry import resolve
    from repro.errors import ConfigurationError, ReproError
    from repro.routing.static import StaticRouting
    from repro.verify import LivenessChecker, ModelChecker

    try:
        proto_cls = resolve(args.protocol)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    net = _make_network(args)

    def make():
        proto = proto_cls(
            net, StaticRouting(net), HigherLayer(net.n), DeliveryLedger()
        )
        rng = _random.Random(args.seed)
        for i in range(args.messages):
            src = i % net.n
            dest = rng.randrange(net.n - 1)
            if dest >= src:
                dest += 1
            proto.hl.submit(src, f"m{i}", dest)
        if args.garbage:
            plant_invalid_messages(
                proto, seed=args.seed, fill_fraction=args.garbage
            )
        return proto

    on_progress = None
    if args.log_every:
        def on_progress(row):
            print(
                f"  states={row['states']} frontier={row['frontier']} "
                f"rate={row['states_per_s']}/s dedup={row['dedup_hits']}",
                file=sys.stderr,
            )
    registry = None
    if args.jsonl:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()

    try:
        result = ModelChecker(
            make,
            max_states=args.max_states,
            max_selection_width=args.max_width,
            engine=args.engine,
            reduction=args.reduction,
            workers=args.workers,
            log_every=args.log_every,
            on_progress=on_progress,
            obs=registry,
        ).run()
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"safety: states={result.states} transitions={result.transitions} "
        f"terminal={result.terminal_states} violations={len(result.violations)}"
    )
    if result.reduction != "none":
        print(
            f"reduction: {result.reduction} "
            f"(group={result.group_size}, "
            f"skipped={result.skipped_selections}; {result.reduction_note})"
        )
    for violation in result.violations[:10]:
        print(f"VIOLATION {violation}", file=sys.stderr)

    live = None
    if args.liveness:
        try:
            live = LivenessChecker(
                make,
                max_states=args.max_states,
                max_selection_width=args.max_width,
                engine=args.engine,
                workers=args.workers,
                log_every=args.log_every,
                on_progress=on_progress,
                obs=registry,
            ).run()
        except (ReproError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"liveness: states={live.states} sccs={live.sccs} "
            f"livelocks={len(live.livelocks)}"
        )
        for lock in live.livelocks[:10]:
            print(
                f"LIVELOCK scc of {lock.states} states starving "
                f"{lock.starved_uids}",
                file=sys.stderr,
            )

    if args.jsonl and registry is not None:
        from repro.obs.export import write_jsonl

        count = write_jsonl(
            args.jsonl,
            registry.rows(),
            name="verify",
            meta={
                "topology": args.topology,
                "protocol": proto_cls.name,
                "engine": args.engine,
                "reduction": args.reduction,
                "messages": args.messages,
                "seed": args.seed,
            },
        )
        print(f"artifact: {args.jsonl} ({count} rows)", file=sys.stderr)

    if result.violations or (live is not None and live.livelocks):
        return 1
    if result.truncated or (live is not None and live.truncated):
        note = result.note if result.truncated else live.note
        print(f"error: search truncated: {note}", file=sys.stderr)
        return 2
    print("verified: the instance is exhaustively safe")
    return 0


def _cmd_sweep(args) -> int:
    import json
    import pathlib

    from repro.core.registry import resolve
    from repro.errors import ConfigurationError
    from repro.sim.campaign import run_sweep
    from repro.sim.recording import sweep_outcome_row
    from repro.sim.reporting import format_table

    try:
        resolve(args.protocol)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    data = json.loads(pathlib.Path(args.specs).read_text())
    specs = data["specs"] if isinstance(data, dict) else data
    labels, configs = [], []
    for i, spec in enumerate(specs):
        spec = dict(spec)
        labels.append(spec.pop("label", f"spec[{i}]"))
        spec.setdefault("protocol", args.protocol)
        configs.append({"spec": spec, "max_steps": args.max_steps})
    results = run_sweep(configs, sweep_outcome_row, workers=args.workers)
    rows = []
    for label, outcome in zip(labels, results):
        row = {"label": label}
        row.update(
            {
                k: v
                for k, v in outcome.items()
                if k not in ("spec", "max_steps", "elapsed_s")
            }
        )
        rows.append(row)
    print(format_table(rows, title=f"sweep over {len(rows)} specs"))
    if args.jsonl:
        from repro.obs.export import write_jsonl

        write_jsonl(
            args.jsonl, rows, kind="sweep_row", name="sweep",
            meta={"specs": len(rows), "max_steps": args.max_steps},
        )
        print(f"artifact: {args.jsonl}", file=sys.stderr)
    return 0


def _cmd_runtime(args) -> int:
    from repro.errors import ConfigurationError
    from repro.runtime import ClusterSpec, run_cluster

    netem = {
        "loss": args.loss,
        "dup": args.dup,
        "reorder": args.reorder,
    }
    if args.latency_ms:
        try:
            lo, hi = (float(x) for x in args.latency_ms.split(":"))
        except ValueError:
            print(f"error: --latency-ms wants LO:HI, got {args.latency_ms!r}",
                  file=sys.stderr)
            return 2
        netem["latency"] = (lo / 1000.0, hi / 1000.0)
    if args.flap_period is not None:
        netem["flap_period"] = args.flap_period
        netem["flap_down"] = args.flap_down
    kwargs = {key: getattr(args, key) for key in _TOPOLOGY_ARGS[args.topology]}
    spec = ClusterSpec(
        topology={"name": args.topology, "kwargs": kwargs},
        messages=args.messages,
        seed=args.seed,
        protocol=args.protocol,
        transport=args.transport,
        procs=args.procs,
        workload=args.workload,
        netem=netem,
        deadline=args.deadline,
        port_base=args.port_base,
        window=args.window,
        max_batch=args.max_batch,
        wire_version=args.wire_version,
    )
    try:
        result = run_cluster(spec)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.summary())
    if args.jsonl:
        from repro.obs.export import write_jsonl

        count = write_jsonl(
            args.jsonl,
            result.obs_rows(),
            name="runtime",
            meta={
                "topology": args.topology,
                "protocol": args.protocol,
                "transport": args.transport,
                "procs": args.procs,
                "messages": args.messages,
                "seed": args.seed,
                "partial": result.partial,
            },
        )
        print(f"artifact: {args.jsonl} ({count} rows)", file=sys.stderr)
    return 1 if result.partial else 0


def _cmd_scenario(args) -> int:
    from repro.errors import ReproError
    from repro.scenario import (
        ScenarioSpec,
        load_scenario_file,
        run_campaign,
        run_one_scenario,
    )

    try:
        data = load_scenario_file(args.spec)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.scenario_command == "campaign":
        try:
            campaign = run_campaign(
                data,
                target=args.target,
                smoke=args.smoke,
                workers=args.workers,
                artifact_dir=args.artifact_dir,
                jsonl_path=args.jsonl,
            )
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(campaign.summary())
        if args.jsonl:
            print(f"artifact: {args.jsonl}", file=sys.stderr)
        return 0 if campaign.ok else 1

    try:
        if args.target is not None:
            data = {**data, "target": args.target}
        spec = ScenarioSpec.from_dict(data)
        if args.smoke:
            spec = spec.smoked()
        result = run_one_scenario(spec)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.summary())
    if args.jsonl:
        from repro.obs.export import write_jsonl

        count = write_jsonl(
            args.jsonl,
            result.obs_rows,
            kind="metric",
            name=spec.name,
            meta={
                "scenario": spec.name,
                "target": spec.target,
                "protocol": spec.protocol,
                "verdict": result.verdict,
            },
        )
        print(f"artifact: {args.jsonl} ({count} rows)", file=sys.stderr)
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "all":
        return _cmd_all(args)
    if args.command == "record":
        return _cmd_record(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "runtime":
        return _cmd_runtime(args)
    return _cmd_simulate(args)


if __name__ == "__main__":
    raise SystemExit(main())
