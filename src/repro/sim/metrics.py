"""Metrics: latencies in steps and rounds, moves per delivery.

The paper's complexity statements are in *rounds*; the ledger records
*steps*.  :class:`RoundClock` rebuilds the step→round mapping from the
trace's round markers so both units are available.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Set

from repro.core.ledger import DeliveryLedger
from repro.statemodel.trace import TraceRecorder


class RoundClock:
    """Step→round conversion built from a trace's round markers.

    Round ``k`` (1-based) completes **at** the step carrying the k-th
    marker: the simulator stamps each marker with the step whose execution
    paid the round's last debt, so the marker step is the *last* step of
    round ``k`` and the following step opens round ``k+1``.  A step at or
    before the first marker is in round 1.

    (Historical note: the simulator used to stamp markers with the step at
    which completion was *detected* — one step late — and this class used
    ``bisect_right``, pushing the marker step into round k+1.  The two
    off-by-ones cancelled for engine-produced traces but made both the
    documented semantics and any hand-built trace wrong; both sides are
    now aligned with the documented meaning, pinned by the marker-step
    tests in ``tests/test_sim_metrics.py``.)
    """

    def __init__(self, trace: TraceRecorder) -> None:
        self._boundaries: List[int] = [
            e.step for e in trace.events if e.kind == "round"
        ]

    def round_of_step(self, step: int) -> int:
        """The (1-based) round containing ``step``.  The step carrying the
        k-th marker belongs to round ``k``, not ``k+1``."""
        return bisect.bisect_left(self._boundaries, step) + 1

    @property
    def completed_rounds(self) -> int:
        """Rounds completed in the traced execution."""
        return len(self._boundaries)


def delivery_latency_steps(ledger: DeliveryLedger) -> Dict[int, int]:
    """Map valid uid -> steps from generation to delivery (delivered only)."""
    out: Dict[int, int] = {}
    for uid in _delivered_uids(ledger):
        lat = ledger.latency_steps(uid)
        if lat is not None:
            out[uid] = lat
    return out


def delivery_latency_rounds(
    ledger: DeliveryLedger, clock: RoundClock
) -> Dict[int, int]:
    """Map valid uid -> rounds from generation to delivery."""
    out: Dict[int, int] = {}
    for uid in _delivered_uids(ledger):
        gen = ledger.generation_info(uid)
        rec = ledger.delivery_record(uid)
        if gen is None or rec is None:
            continue
        out[uid] = clock.round_of_step(rec.step) - clock.round_of_step(gen[2])
    return out


def moves_per_delivery(
    rule_counts: Dict[str, int],
    delivered: int,
    forwarding_rules: Optional[Sequence[str]] = None,
) -> Optional[float]:
    """Forwarding moves divided by delivered messages; None when nothing
    was delivered.

    ``forwarding_rules`` names the rules that count as moves — pass the
    protocol's ``forwarding_rules`` attribute for a single-protocol run.
    The default is the union over every registered family member plus the
    baseline labels (``BF``/``NF``), which is correct whenever a run
    executes one protocol (rule labels are disjoint across the family)."""
    if delivered <= 0:
        return None
    if forwarding_rules is None:
        forwarding_rules = _default_forwarding_rules()
    wanted = set(forwarding_rules)
    moves = sum(
        count for rule, count in rule_counts.items() if rule in wanted
    )
    return moves / delivered


def _default_forwarding_rules() -> Set[str]:
    # Imported lazily: repro.core.registry imports the protocol classes,
    # and metrics must stay importable from anywhere in the stack.
    from repro.core.registry import PROTOCOLS

    rules: Set[str] = {"BF", "NF"}
    for cls in PROTOCOLS.values():
        rules.update(cls.forwarding_rules)
    return rules


def amortized_rounds_per_delivery(
    total_rounds: int, delivered: int
) -> Optional[float]:
    """The paper's amortized measure (Proposition 7): rounds of the
    execution divided by messages delivered during it."""
    if delivered <= 0:
        return None
    return total_rounds / delivered


def _delivered_uids(ledger: DeliveryLedger) -> List[int]:
    # Ask the ledger directly: the old "generated minus outstanding" scan
    # over range(1, generated_count + 1) silently dropped uids whenever the
    # ledger's uid space was non-contiguous (strict-mode violations, merged
    # ledgers, externally assigned uids).
    return ledger.delivered_uids()
