"""Parameter sweeps.

A campaign runs one experiment function over a list of configurations and
collects row dictionaries — the raw material of every table the benchmarks
print.  Failures are captured per-row (a diverging configuration must not
take down the whole sweep) unless ``fail_fast`` is set.

``run_sweep(..., workers=N)`` fans work out over a process pool.  The unit
of distribution adapts to the shape of the sweep: normally each
configuration (with all its repeats) runs in one worker, but when the pool
is wider than the configuration list and ``repeat`` > 1, individual
*repetitions* are submitted instead — a single config with ``repeat=20``
saturates 20 workers rather than one.  Either way rows come back in
configuration order, per-repeat seed offsets are identical to a serial
sweep, and repeats reduce through the same aggregation — so a parallel
sweep returns the same rows as a serial one, modulo wall-clock
``elapsed_s``.  The runner must be picklable (a module-level function, not
a lambda or closure).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional

Row = Dict[str, object]


def run_sweep(
    configs: Iterable[Dict[str, object]],
    runner: Callable[..., Row],
    fail_fast: bool = True,
    repeat: int = 1,
    aggregate: Optional[Callable[[List[Row]], Row]] = None,
    workers: Optional[int] = None,
    jsonl_path: Optional[str] = None,
) -> List[Row]:
    """Run ``runner(**config)`` for every configuration.

    ``repeat`` > 1 reruns each configuration with ``seed`` offset by the
    repetition index (configurations without a ``seed`` key are run as-is)
    and reduces the repetitions with ``aggregate`` (default: worst observed
    value per *result* metric via max — matching the worst-case flavor of
    the paper's bounds — with ``elapsed_s`` summed across the repetitions
    and configuration-echo keys left untouched).

    ``workers`` > 1 distributes work over that many worker processes —
    whole configurations normally, individual repetitions when the pool is
    wider than the configuration list (``workers > len(configs)`` with
    ``repeat`` > 1); row order and values are identical to the serial sweep
    (``elapsed_s`` aside).  With ``fail_fast`` the first failing
    repetition's exception (in configuration-then-repetition order) is
    re-raised in the parent.

    ``jsonl_path``, when set, additionally writes the returned rows as a
    schema-versioned JSONL artifact (kind ``sweep_row``) readable by
    ``python -m repro obs``.
    """
    config_list = [dict(c) for c in configs]
    use_pool = (
        workers is not None
        and workers > 1
        and (len(config_list) > 1 or repeat > 1)
    )
    if not use_pool:
        rows = [
            _run_config(config, runner, fail_fast, repeat, aggregate)
            for config in config_list
        ]
    elif repeat > 1 and workers > len(config_list):
        # Repeat-level fan-out: submit every (config, repetition) pair so a
        # few configs with many repeats still saturate the pool.  Seeds are
        # offset per repetition exactly as in the serial loop, repetitions
        # are reduced in the parent with the same aggregation, and results
        # are collected in (config, rep) order so fail_fast re-raises the
        # same first exception a serial sweep would hit.
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                [
                    pool.submit(_run_rep, config, runner, fail_fast, repeat, r)
                    for r in range(repeat)
                ]
                for config in config_list
            ]
            rows = [
                _reduce_reps([f.result() for f in futs], config, aggregate)
                for config, futs in zip(config_list, futures)
            ]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures_flat = [
                pool.submit(_run_config, config, runner, fail_fast, repeat, aggregate)
                for config in config_list
            ]
            # Collect in submission order: rows are deterministic regardless
            # of which worker finishes first.  result() re-raises worker
            # exceptions (only possible with fail_fast; captured errors come
            # back as rows).
            rows = [f.result() for f in futures_flat]
    if jsonl_path is not None:
        from repro.obs.export import write_jsonl

        write_jsonl(
            jsonl_path,
            rows,
            kind="sweep_row",
            meta={"configs": len(config_list), "repeat": repeat},
        )
    return rows


def _run_rep(
    config: Dict[str, object],
    runner: Callable[..., Row],
    fail_fast: bool,
    repeat: int,
    r: int,
) -> Row:
    """One repetition of one configuration: seed offset by the repetition
    index, per-row error capture, elapsed stamp and config echo.
    Module-level (not a closure) so worker processes can unpickle it."""
    cfg = dict(config)
    if repeat > 1 and "seed" in cfg:
        cfg["seed"] = int(cfg["seed"]) + r  # type: ignore[arg-type]
    started = time.perf_counter()
    try:
        row = runner(**cfg)
    except Exception as exc:  # noqa: BLE001 - captured per-row
        if fail_fast:
            raise
        row = {"error": f"{type(exc).__name__}: {exc}"}
    row.setdefault("elapsed_s", round(time.perf_counter() - started, 3))
    for key, value in config.items():
        row.setdefault(key, value)
    return row


def _reduce_reps(
    reps: List[Row],
    config: Dict[str, object],
    aggregate: Optional[Callable[[List[Row]], Row]],
) -> Row:
    """Reduce a configuration's repetition rows to one row (shared by the
    serial loop, the per-config workers and the repeat-level fan-out)."""
    if len(reps) == 1:
        return reps[0]
    if aggregate is not None:
        return aggregate(reps)
    return _max_aggregate(reps, frozenset(config))


def _run_config(
    config: Dict[str, object],
    runner: Callable[..., Row],
    fail_fast: bool,
    repeat: int,
    aggregate: Optional[Callable[[List[Row]], Row]],
) -> Row:
    """All repeats of one configuration, reduced to one row.  Module-level
    (not a closure) so worker processes can unpickle it."""
    reps = [_run_rep(config, runner, fail_fast, repeat, r) for r in range(repeat)]
    return _reduce_reps(reps, config, aggregate)


def _max_aggregate(reps: List[Row], config_keys: FrozenSet[str] = frozenset()) -> Row:
    """Default aggregation: per-key max of numeric *result* fields, first
    value otherwise; adds ``repeats`` and ``errors``.

    Configuration-echo keys are never aggregated (maxing a swept parameter
    like ``seed`` or ``n`` would corrupt the row's identity), and
    ``elapsed_s`` is the *sum* over all repetitions — the cost of producing
    the row — not the max.

    Repetitions that failed (captured ``error`` rows under
    ``fail_fast=False``) are excluded from the metric aggregation: an error
    row carries only ``error``/``elapsed_s``/config echoes, so seeding the
    max from it (or letting its echo keys mask real values) would poison
    the aggregate.  Their count is reported as ``errors``; if *every*
    repetition failed, the first error row is returned (with counts) so the
    failure stays visible in the sweep output.
    """
    ok = [rep for rep in reps if "error" not in rep]
    errors = len(reps) - len(ok)
    base = ok if ok else reps
    out: Row = dict(base[0])
    for rep in base[1:]:
        for key, value in rep.items():
            if key in config_keys or key == "elapsed_s":
                continue
            if isinstance(value, (int, float)) and isinstance(out.get(key), (int, float)):
                out[key] = max(out[key], value)  # type: ignore[type-var]
    elapsed = [
        rep["elapsed_s"] for rep in reps
        if isinstance(rep.get("elapsed_s"), (int, float))
    ]
    if elapsed:
        out["elapsed_s"] = round(sum(elapsed), 3)
    out["repeats"] = len(reps)
    out["errors"] = errors
    return out
