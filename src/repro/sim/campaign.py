"""Parameter sweeps.

A campaign runs one experiment function over a list of configurations and
collects row dictionaries — the raw material of every table the benchmarks
print.  Failures are captured per-row (a diverging configuration must not
take down the whole sweep) unless ``fail_fast`` is set.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional

Row = Dict[str, object]


def run_sweep(
    configs: Iterable[Dict[str, object]],
    runner: Callable[..., Row],
    fail_fast: bool = True,
    repeat: int = 1,
    aggregate: Optional[Callable[[List[Row]], Row]] = None,
) -> List[Row]:
    """Run ``runner(**config)`` for every configuration.

    ``repeat`` > 1 reruns each configuration with ``seed`` offset by the
    repetition index (configurations without a ``seed`` key are run as-is)
    and reduces the repetitions with ``aggregate`` (default: the row of the
    *worst* observed value is kept per-key via max for numeric fields —
    matching the worst-case flavor of the paper's bounds).
    """
    rows: List[Row] = []
    for config in configs:
        reps: List[Row] = []
        for r in range(repeat):
            cfg = dict(config)
            if repeat > 1 and "seed" in cfg:
                cfg["seed"] = int(cfg["seed"]) + r  # type: ignore[arg-type]
            started = time.perf_counter()
            try:
                row = runner(**cfg)
            except Exception as exc:  # noqa: BLE001 - captured per-row
                if fail_fast:
                    raise
                row = {"error": f"{type(exc).__name__}: {exc}"}
            row.setdefault("elapsed_s", round(time.perf_counter() - started, 3))
            for key, value in config.items():
                row.setdefault(key, value)
            reps.append(row)
        if repeat == 1:
            rows.append(reps[0])
        else:
            rows.append((aggregate or _max_aggregate)(reps))
    return rows


def _max_aggregate(reps: List[Row]) -> Row:
    """Default aggregation: per-key max of numeric fields, first value
    otherwise; adds ``repeats``."""
    out: Row = dict(reps[0])
    for rep in reps[1:]:
        for key, value in rep.items():
            if isinstance(value, (int, float)) and isinstance(out.get(key), (int, float)):
                out[key] = max(out[key], value)  # type: ignore[type-var]
    out["repeats"] = len(reps)
    return out
