"""Small, dependency-free summary statistics for experiment outputs.

Pure-Python implementations (exact percentiles by nearest-rank) so the
runtime keeps its zero-dependency promise; the tests cross-check against
statistics/numpy where available.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` for ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not (0.0 <= q <= 100.0):
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if q == 0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[max(rank - 1, 0)]


def summarize(values: Iterable[float]) -> Dict[str, float]:
    """min / p50 / p90 / p99 / max / mean / n of a sample.

    Returns an empty-sample marker (``{"n": 0}``) for no data, so sweep
    rows stay printable.
    """
    data: List[float] = list(values)
    if not data:
        return {"n": 0}
    return {
        "n": len(data),
        "min": min(data),
        "p50": percentile(data, 50),
        "p90": percentile(data, 90),
        "p99": percentile(data, 99),
        "max": max(data),
        "mean": sum(data) / len(data),
    }


def summarize_prefixed(values: Iterable[float], prefix: str) -> Dict[str, float]:
    """Like :func:`summarize` with keys prefixed — ready to merge into a
    sweep row (``latency_p50``, ``latency_max``, ...)."""
    return {f"{prefix}_{k}": v for k, v in summarize(values).items()}


def ratio_of_means(
    numerators: Sequence[float], denominators: Sequence[float]
) -> Optional[float]:
    """Mean(numerators) / mean(denominators); None when undefined."""
    if not numerators or not denominators:
        return None
    denom = sum(denominators) / len(denominators)
    if denom == 0:
        return None
    return (sum(numerators) / len(numerators)) / denom


def jain_index(values: Sequence[float]) -> Optional[float]:
    """Jain's fairness index: (Σx)² / (n · Σx²), in (0, 1]; 1 means all
    equal.  Used to quantify how evenly the ``choice`` fairness spreads
    latency across sources.  None for empty or all-zero samples."""
    if not values:
        return None
    total = sum(values)
    squares = sum(x * x for x in values)
    if squares == 0:
        return None
    return (total * total) / (len(values) * squares)
