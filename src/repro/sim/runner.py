"""Assembling and driving complete simulations.

The paper's full system is: a self-stabilizing routing protocol ``A`` with
priority, SSMFP below it, a higher layer with outboxes, an adversarial
daemon, and an arbitrary initial configuration.  :func:`build_simulation`
assembles exactly that from declarative knobs; :class:`Simulation` runs it
while feeding the workload and exposes the pieces for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.app.higher_layer import HigherLayer
from repro.app.workload import Workload
from repro.baselines.merlin_schweitzer import MerlinSchweitzerForwarding
from repro.baselines.naive import NaiveForwarding
from repro.core.corruption import plant_invalid_messages, scramble_queues
from repro.core.family import ForwardingProtocol
from repro.core.invariants import InvariantChecker
from repro.core.ledger import DeliveryLedger
from repro.core.registry import resolve
from repro.errors import ConfigurationError, SimulationLimitExceeded
from repro.network.graph import Network
from repro.routing.corruption import corrupt_random, corrupt_worst_case
from repro.routing.selfstab_bfs import SelfStabilizingBFSRouting
from repro.routing.static import StaticRouting
from repro.statemodel.composition import PriorityStack
from repro.statemodel.daemon import Daemon, DistributedRandomDaemon
from repro.statemodel.protocol import Protocol
from repro.statemodel.scheduler import RunResult, Simulator
from repro.statemodel.trace import TraceRecorder


@dataclass
class Simulation:
    """A fully assembled system, ready to run.

    The workload is fed into the higher layer as steps elapse (submissions
    scheduled for step k enter the outbox before step k executes).
    """

    net: Network
    routing: Union[StaticRouting, SelfStabilizingBFSRouting]
    forwarding: Protocol
    hl: HigherLayer
    ledger: DeliveryLedger
    sim: Simulator
    workload: Optional[Workload] = None
    #: Metrics registry fed by the simulator (``repro.obs``), if enabled.
    obs: Optional[object] = field(default=None, repr=False)
    #: Message-lifecycle tracer attached to this simulation, if enabled.
    tracer: Optional[object] = field(default=None, repr=False)
    _fed: int = field(default=0, repr=False)

    def _feed_workload(self) -> None:
        if self.workload is None:
            return
        now = self.sim.step_count
        subs = self.workload.submissions
        while self._fed < len(subs) and subs[self._fed][0] <= now:
            _, src, payload, dest = subs[self._fed]
            self.hl.submit(src, payload, dest, step=now)
            self._fed += 1

    def step(self):
        """Feed due workload, then execute one atomic step."""
        self._feed_workload()
        return self.sim.step()

    def _fast_forward_workload(self) -> bool:
        """When the network went idle before the next scheduled submission,
        skip the dead time: feed the earliest outstanding batch now.
        Returns True if anything was fed."""
        if self.workload is None:
            return False
        subs = self.workload.submissions
        if self._fed >= len(subs):
            return False
        next_at = subs[self._fed][0]
        while self._fed < len(subs) and subs[self._fed][0] == next_at:
            _, src, payload, dest = subs[self._fed]
            self.hl.submit(src, payload, dest, step=self.sim.step_count)
            self._fed += 1
        return True

    def run(
        self,
        max_steps: int,
        halt: Optional[Callable[["Simulation"], bool]] = None,
        raise_on_limit: bool = True,
    ) -> RunResult:
        """Run until terminal, halted, or out of budget (then raises by
        default, like :meth:`Simulator.run`)."""
        halted = False
        for _ in range(max_steps):
            if halt is not None and halt(self):
                halted = True
                break
            report = self.step()
            if report.terminal:
                if self._fast_forward_workload():
                    continue
                break
        else:
            if halt is not None and halt(self):
                halted = True
            elif raise_on_limit:
                raise SimulationLimitExceeded(
                    f"simulation did not reach its halt condition in "
                    f"{max_steps} steps; outstanding valid messages: "
                    f"{sorted(self.ledger.outstanding_uids())[:10]}, "
                    f"buffers occupied: {self._occupancy()}, "
                    f"pending submissions: {self.hl.total_pending()}",
                    steps=self.sim.step_count,
                    rounds=self.sim.round_count,
                )
        return RunResult(
            steps=self.sim.step_count,
            rounds=self.sim.round_count,
            terminal=self.sim.terminal,
            halted_by_predicate=halted,
            rule_counts=self.sim.rule_counts,
        )

    def _occupancy(self) -> int:
        fw = self.forwarding
        if isinstance(fw, ForwardingProtocol):
            return fw.bufs.total_occupied()
        if isinstance(fw, MerlinSchweitzerForwarding):
            return sum(1 for row in fw.buf for m in row if m is not None)
        if isinstance(fw, NaiveForwarding):
            return sum(1 for pool in fw.pool for m in pool if m is not None)
        return -1


def delivered_and_drained(simulation: Simulation) -> bool:
    """The standard halt condition: every submitted message generated and
    delivered, no outstanding submissions, and the network empty of valid
    traffic (invalid garbage may still be draining)."""
    if simulation.hl.total_pending() > 0:
        return False
    if simulation.workload is not None:
        if simulation._fed < simulation.workload.size:
            return False
    return simulation.ledger.all_valid_delivered()


def fully_quiescent(simulation: Simulation) -> bool:
    """Stronger halt: delivered_and_drained plus an empty network (all
    invalid garbage consumed or erased too)."""
    if not delivered_and_drained(simulation):
        return False
    fw = simulation.forwarding
    empty = getattr(fw, "network_is_empty", None)
    return bool(empty()) if callable(empty) else True


def _make_routing(
    net: Network,
    routing_mode: str,
    corruption: Optional[Dict],
    seed: int,
):
    if routing_mode == "static":
        if corruption:
            raise ConfigurationError("static routing cannot be corrupted")
        return StaticRouting(net)
    if routing_mode != "selfstab":
        raise ConfigurationError(
            f"routing_mode must be 'static' or 'selfstab', got {routing_mode!r}"
        )
    routing = SelfStabilizingBFSRouting(net)
    if corruption:
        kind = corruption.get("kind", "random")
        if kind == "random":
            corrupt_random(
                routing,
                seed=corruption.get("seed", seed),
                fraction=corruption.get("fraction", 1.0),
            )
        elif kind == "worst":
            corrupt_worst_case(routing, seed=corruption.get("seed", seed))
        else:
            raise ConfigurationError(f"unknown routing corruption kind {kind!r}")
    return routing


def build_simulation(
    net: Network,
    *,
    workload: Optional[Workload] = None,
    daemon: Optional[Daemon] = None,
    seed: int = 0,
    routing_mode: str = "selfstab",
    routing_corruption: Optional[Dict] = None,
    garbage: Optional[Dict] = None,
    scramble_choice_queues: bool = False,
    strict_invariants: bool = False,
    ledger_strict: bool = True,
    trace: Optional[TraceRecorder] = None,
    protocol: str = "ssmfp",
    protocol_options: Optional[Dict] = None,
    ssmfp_options: Optional[Dict] = None,
    full_scan: bool = False,
    debug_check: bool = False,
    obs: Optional[object] = None,
    tracer: Optional[object] = None,
) -> Simulation:
    """Assemble the full forwarding system (SSMFP by default).

    Parameters
    ----------
    routing_mode:
        ``"static"`` (correct constant tables, the Proposition-1 regime) or
        ``"selfstab"`` (the protocol ``A`` composed with priority).
    routing_corruption:
        For ``selfstab``: ``{"kind": "random", "fraction": f, "seed": s}``
        or ``{"kind": "worst", "seed": s}``.
    garbage:
        ``{"seed": s, "fraction": f}`` — plant invalid messages into that
        fraction of all buffers.
    scramble_choice_queues:
        Randomize all ``choice`` queues (arbitrary initial state).
    strict_invariants:
        Install the per-step :class:`InvariantChecker` hook (O(n²)/step —
        for tests, not large benches).
    protocol:
        Registry name of the forwarding protocol to assemble
        (``"ssmfp"``, ``"ssmfp2"``; see :mod:`repro.core.registry`).
    protocol_options:
        Extra keyword arguments for the protocol's constructor (ablation
        knobs).  ``ssmfp_options`` is the legacy spelling and is merged
        underneath.
    full_scan:
        Disable the incremental enabled-set engine: every guard of every
        processor is re-evaluated each step (the classic engine; the oracle
        the equivalence suite compares against).
    debug_check:
        Cross-check the incremental cache against a full scan every step
        (slow; for tests).
    obs:
        Optional :class:`repro.obs.MetricsRegistry` the simulator feeds
        with per-rule counts/wall-time, guard evaluations and round/
        neutralization events.  ``None`` (default) costs nothing.
    tracer:
        Optional :class:`repro.obs.MessageTracer`; attached to the
        assembled simulation (ledger + buffer + submit hooks) so every
        valid message's hop-by-hop lifecycle is recorded.
    """
    routing = _make_routing(net, routing_mode, routing_corruption, seed)
    ledger = DeliveryLedger(strict=ledger_strict)
    hl = HigherLayer(net.n)
    proto_cls = resolve(protocol)
    options = {**(ssmfp_options or {}), **(protocol_options or {})}
    proto = proto_cls(net, routing, hl, ledger, **options)

    if garbage:
        plant_invalid_messages(
            proto,
            seed=garbage.get("seed", seed),
            fill_fraction=garbage.get("fraction", 0.3),
        )
    if scramble_choice_queues:
        scramble_queues(proto, seed=seed + 1)

    protocols: List[Protocol] = (
        [routing, proto] if isinstance(routing, SelfStabilizingBFSRouting) else [proto]
    )
    stack = PriorityStack(protocols)
    if daemon is None:
        daemon = DistributedRandomDaemon(seed=seed)
    hooks = [InvariantChecker(proto).as_hook()] if strict_invariants else None
    sim = Simulator(
        net.n, stack, daemon, trace=trace, strict_hooks=hooks,
        full_scan=full_scan, debug_check=debug_check, obs=obs,
    )
    simulation = Simulation(
        net=net, routing=routing, forwarding=proto, hl=hl,
        ledger=ledger, sim=sim, workload=workload, obs=obs, tracer=tracer,
    )
    if tracer is not None:
        tracer.attach(simulation)
    return simulation


def build_baseline_simulation(
    net: Network,
    *,
    baseline: str = "ms",
    workload: Optional[Workload] = None,
    daemon: Optional[Daemon] = None,
    seed: int = 0,
    routing_mode: str = "selfstab",
    routing_corruption: Optional[Dict] = None,
    naive_buffers: int = 2,
    atomic_moves: bool = True,
    trace: Optional[TraceRecorder] = None,
    obs: Optional[object] = None,
    tracer: Optional[object] = None,
) -> Simulation:
    """Assemble a baseline system (``"ms"`` Merlin-Schweitzer or
    ``"naive"``) under the same routing/daemon machinery as SSMFP.
    ``atomic_moves`` selects the MS hosting semantics (see the baseline's
    module docstring).  ``obs``/``tracer`` as in :func:`build_simulation`
    (baselines lack SSMFP's buffer notifiers, so the tracer records the
    ledger-level lifecycle only)."""
    routing = _make_routing(net, routing_mode, routing_corruption, seed)
    hl = HigherLayer(net.n)
    ledger = DeliveryLedger(strict=False)
    if baseline == "ms":
        proto: Protocol = MerlinSchweitzerForwarding(
            net, routing, hl, ledger, atomic_moves=atomic_moves
        )
    elif baseline == "naive":
        proto = NaiveForwarding(net, routing, hl, naive_buffers, ledger)
    else:
        raise ConfigurationError(f"unknown baseline {baseline!r}")
    protocols: List[Protocol] = (
        [routing, proto] if isinstance(routing, SelfStabilizingBFSRouting) else [proto]
    )
    if daemon is None:
        daemon = DistributedRandomDaemon(seed=seed)
    sim = Simulator(net.n, PriorityStack(protocols), daemon, trace=trace, obs=obs)
    simulation = Simulation(
        net=net, routing=routing, forwarding=proto, hl=hl,
        ledger=ledger, sim=sim, workload=workload, obs=obs, tracer=tracer,
    )
    if tracer is not None:
        tracer.attach(simulation)
    return simulation
