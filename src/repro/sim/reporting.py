"""ASCII table rendering for experiment results.

Every benchmark prints its table through :func:`format_table`, so the
regenerated "figures" of EXPERIMENTS.md all share one format.  An optional
module-level *table sink* (:func:`set_table_sink`) observes every rendered
table as structured data — the observability exporter uses it to capture
experiment tables into JSONL artifacts without touching the experiments.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence

#: Sink signature: (title, columns, rows) for every format_table call.
TableSink = Callable[
    [Optional[str], Sequence[str], Sequence[Dict[str, object]]], None
]

_table_sink: Optional[TableSink] = None


def set_table_sink(sink: Optional[TableSink]) -> Optional[TableSink]:
    """Install (or clear, with None) the module-level table sink; returns
    the previous sink so callers can chain/restore it."""
    global _table_sink
    previous = _table_sink
    _table_sink = sink
    return previous


def _fmt_float(v: float) -> str:
    # Fixed notation with 3 decimals, trailing zeros trimmed.  The old
    # "%.3g" rendering mangled anything >= 1000 into scientific notation
    # ("1.23e+03") and silently rounded away 4th-and-later significant
    # digits; only genuinely tiny magnitudes still fall back to %.3g.
    if math.isnan(v) or math.isinf(v):
        return str(v)
    if v != 0 and abs(v) < 1e-3:
        return f"{v:.3g}"
    return f"{v:.3f}".rstrip("0").rstrip(".")


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return _fmt_float(value)
    if value is None:
        return "-"
    return str(value)


def _is_numeric(value: object) -> bool:
    # bool is an int subclass; True/False cells read as labels, not numbers.
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as a fixed-width ASCII table.

    ``columns`` fixes order and selection; by default the union of keys in
    first-appearance order is used.  A column whose present values are all
    numeric is right-aligned (headers stay left-aligned); everything else
    is left-aligned.
    """
    if columns is None:
        cols: List[str] = []
        for row in rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
    else:
        cols = list(columns)
    if _table_sink is not None:
        _table_sink(title, list(cols), list(rows))
    numeric = {
        c: any(_is_numeric(row.get(c)) for row in rows)
        and all(
            _is_numeric(v)
            for row in rows
            if (v := row.get(c)) is not None
        )
        for c in cols
    }
    widths = {c: len(c) for c in cols}
    rendered: List[List[str]] = []
    for row in rows:
        line = [_fmt(row.get(c)) for c in cols]
        rendered.append(line)
        for c, cell in zip(cols, line):
            widths[c] = max(widths[c], len(cell))
    sep = "+".join("-" * (widths[c] + 2) for c in cols)
    out: List[str] = []
    if title:
        out.append(title)
    out.append(" | ".join(c.ljust(widths[c]) for c in cols))
    out.append(sep)
    for line in rendered:
        out.append(
            " | ".join(
                cell.rjust(widths[c]) if numeric[c] else cell.ljust(widths[c])
                for cell, c in zip(line, cols)
            )
        )
    return "\n".join(out)
