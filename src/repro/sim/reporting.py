"""ASCII table rendering for experiment results.

Every benchmark prints its table through :func:`format_table`, so the
regenerated "figures" of EXPERIMENTS.md all share one format.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    if value is None:
        return "-"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as a fixed-width ASCII table.

    ``columns`` fixes order and selection; by default the union of keys in
    first-appearance order is used.
    """
    if columns is None:
        cols: List[str] = []
        for row in rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
    else:
        cols = list(columns)
    widths = {c: len(c) for c in cols}
    rendered: List[List[str]] = []
    for row in rows:
        line = [_fmt(row.get(c)) for c in cols]
        rendered.append(line)
        for c, cell in zip(cols, line):
            widths[c] = max(widths[c], len(cell))
    sep = "+".join("-" * (widths[c] + 2) for c in cols)
    out: List[str] = []
    if title:
        out.append(title)
    out.append(" | ".join(c.ljust(widths[c]) for c in cols))
    out.append(sep)
    for line in rendered:
        out.append(" | ".join(cell.ljust(widths[c]) for cell, c in zip(line, cols)))
    return "\n".join(out)
