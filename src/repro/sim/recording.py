"""Run records: reproducibility as an artifact.

Because every stochastic element of a simulation is seeded, a *spec*
(:mod:`repro.sim.spec`) determines the execution bit for bit.  A
:class:`RunRecord` couples a spec with the outcome fingerprint of one run —
steps, rounds, per-rule move counts, delivery counts — so anyone can
re-execute the spec and :func:`verify_record` that they got the identical
execution.  Records serialize to JSON (``repro record`` / ``repro verify``
on the command line).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim.runner import delivered_and_drained
from repro.sim.spec import simulation_from_spec


@dataclass
class RunRecord:
    """A spec plus the outcome fingerprint of one deterministic run."""

    spec: Dict[str, Any]
    max_steps: int
    outcome: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """Serialize to a JSON document."""
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        """Parse a record previously produced by :meth:`to_json`."""
        data = json.loads(text)
        return cls(
            spec=data["spec"],
            max_steps=int(data["max_steps"]),
            outcome=data.get("outcome", {}),
        )


def _fingerprint(simulation) -> Dict[str, Any]:
    ledger = simulation.ledger
    return {
        "steps": simulation.sim.step_count,
        "rounds": simulation.sim.round_count,
        "rule_counts": simulation.sim.rule_counts,
        "generated": ledger.generated_count,
        "delivered": ledger.valid_delivered_count,
        "invalid_delivered": ledger.invalid_delivery_count,
        "routing_correct": bool(simulation.routing.is_correct()),
    }


def record_run(spec: Dict[str, Any], max_steps: int = 500_000) -> RunRecord:
    """Execute the spec once and capture its outcome fingerprint."""
    simulation = simulation_from_spec(spec)
    simulation.run(max_steps, halt=delivered_and_drained, raise_on_limit=False)
    return RunRecord(spec=spec, max_steps=max_steps, outcome=_fingerprint(simulation))


def sweep_outcome_row(spec: Dict[str, Any], max_steps: int = 500_000) -> Dict[str, Any]:
    """One sweep row: the outcome fingerprint of ``spec`` minus the bulky
    per-rule counts.  Module-level (not a closure) so
    :func:`repro.sim.campaign.run_sweep` can ship it to worker processes —
    this is the runner behind ``repro sweep --workers N``."""
    record = record_run(spec, max_steps=max_steps)
    return {k: v for k, v in record.outcome.items() if k != "rule_counts"}


def verify_record(record: RunRecord) -> List[str]:
    """Re-run a record's spec; return the list of fingerprint mismatches
    (empty == bit-identical reproduction)."""
    simulation = simulation_from_spec(record.spec)
    simulation.run(
        record.max_steps, halt=delivered_and_drained, raise_on_limit=False
    )
    fresh = _fingerprint(simulation)
    problems: List[str] = []
    for key, expected in record.outcome.items():
        got = fresh.get(key)
        if got != expected:
            problems.append(f"{key}: recorded {expected!r}, reproduced {got!r}")
    return problems
