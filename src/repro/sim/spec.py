"""Declarative simulation specifications.

A *spec* is a plain JSON-able dictionary describing a complete simulation —
topology, workload, corruption, daemon, seed — that
:func:`simulation_from_spec` turns into a ready
:class:`~repro.sim.runner.Simulation`.  Specs power the recording/replay
feature (:mod:`repro.sim.recording`) and make campaign definitions
data, not code.

Schema (all sections optional except ``topology``)::

    {
      "topology": {"name": "ring", "kwargs": {"n": 8}},
      "workload": {"name": "uniform", "kwargs": {"count": 20, "seed": 1}},
      "routing":  {"mode": "selfstab",
                   "corruption": {"kind": "random", "fraction": 1.0}},
      "garbage":  {"fraction": 0.4},
      "scramble_choice_queues": true,
      "daemon":   {"name": "distributed", "kwargs": {"p_select": 0.5}},
      "protocol": "ssmfp",
      "protocol_options": {"choice_policy": "fifo"},
      "seed": 7
    }

``protocol`` is a registry name (:mod:`repro.core.registry`; default
``"ssmfp"``); ``ssmfp`` is the legacy spelling of ``protocol_options``
and is still honored (merged underneath).

The workload ``kwargs`` are passed to the named generator with ``n``
injected; daemon ``kwargs`` likewise get the seed injected unless given.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.app import workload as workload_mod
from repro.errors import ConfigurationError
from repro.network.topologies import topology_by_name
from repro.sim.runner import Simulation, build_simulation
from repro.statemodel.daemon import (
    CentralRandomDaemon,
    DistributedRandomDaemon,
    RoundRobinDaemon,
    SynchronousDaemon,
)

_WORKLOADS = {
    "uniform": workload_mod.uniform_workload,
    "permutation": workload_mod.permutation_workload,
    "hotspot": workload_mod.hotspot_workload,
    "burst": workload_mod.burst_workload,
    "single": workload_mod.single_message_workload,
    "same_payload": workload_mod.adversarial_same_payload_workload,
}

_DAEMONS = {
    "synchronous": lambda **kw: SynchronousDaemon(),
    "round_robin": lambda **kw: RoundRobinDaemon(),
    "central": lambda seed=0, **kw: CentralRandomDaemon(seed=seed, **kw),
    "distributed": lambda seed=0, **kw: DistributedRandomDaemon(seed=seed, **kw),
}

#: Workload generators that take the processor count as first argument.
_N_FIRST = {"uniform", "permutation", "hotspot", "burst"}


def simulation_from_spec(spec: Dict[str, Any]) -> Simulation:
    """Build a :class:`Simulation` from a declarative spec (see module
    docstring for the schema)."""
    if "topology" not in spec:
        raise ConfigurationError("spec needs a 'topology' section")
    seed = int(spec.get("seed", 0))

    topo = spec["topology"]
    net = topology_by_name(topo["name"], **topo.get("kwargs", {}))

    workload = None
    if "workload" in spec:
        wl = spec["workload"]
        name = wl["name"]
        try:
            builder = _WORKLOADS[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown workload {name!r}; known: {sorted(_WORKLOADS)}"
            ) from None
        kwargs = dict(wl.get("kwargs", {}))
        if name in _N_FIRST:
            kwargs.setdefault("seed", seed)
            workload = builder(net.n, **kwargs)
        else:
            workload = builder(**kwargs)

    routing = spec.get("routing", {})
    routing_mode = routing.get("mode", "selfstab")
    corruption = routing.get("corruption")
    if corruption is not None:
        corruption = dict(corruption)
        corruption.setdefault("seed", seed)

    garbage = spec.get("garbage")
    if garbage is not None:
        garbage = dict(garbage)
        garbage.setdefault("seed", seed)

    daemon = None
    if "daemon" in spec:
        d = spec["daemon"]
        try:
            factory = _DAEMONS[d["name"]]
        except KeyError:
            raise ConfigurationError(
                f"unknown daemon {d['name']!r}; known: {sorted(_DAEMONS)}"
            ) from None
        kwargs = dict(d.get("kwargs", {}))
        kwargs.setdefault("seed", seed)
        daemon = factory(**kwargs)

    return build_simulation(
        net,
        workload=workload,
        daemon=daemon,
        seed=seed,
        routing_mode=routing_mode,
        routing_corruption=corruption,
        garbage=garbage,
        scramble_choice_queues=bool(spec.get("scramble_choice_queues", False)),
        ledger_strict=bool(spec.get("ledger_strict", True)),
        protocol=str(spec.get("protocol", "ssmfp")),
        protocol_options=spec.get("protocol_options"),
        ssmfp_options=spec.get("ssmfp"),
    )
