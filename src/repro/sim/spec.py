"""Declarative simulation specifications.

A *spec* is a plain JSON-able dictionary describing a complete simulation —
topology, workload, corruption, daemon, seed — that
:func:`simulation_from_spec` turns into a ready
:class:`~repro.sim.runner.Simulation`.  Specs power the recording/replay
feature (:mod:`repro.sim.recording`) and make campaign definitions
data, not code.

Schema (all sections optional except ``topology``)::

    {
      "topology": {"name": "ring", "kwargs": {"n": 8}},
      "workload": {"name": "uniform", "kwargs": {"count": 20, "seed": 1}},
      "routing":  {"mode": "selfstab",
                   "corruption": {"kind": "random", "fraction": 1.0}},
      "garbage":  {"fraction": 0.4},
      "scramble_choice_queues": true,
      "daemon":   {"name": "distributed", "kwargs": {"p_select": 0.5}},
      "protocol": "ssmfp",
      "protocol_options": {"choice_policy": "fifo"},
      "seed": 7
    }

``protocol`` is a registry name (:mod:`repro.core.registry`; default
``"ssmfp"``); ``ssmfp`` is the legacy spelling of ``protocol_options``
and is still honored (merged underneath).

The workload ``kwargs`` are passed to the named generator with ``n``
injected; daemon ``kwargs`` likewise get the seed injected unless given.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.app import workload as workload_mod
from repro.errors import ConfigurationError
from repro.network.topologies import topology_by_name
from repro.sim.runner import Simulation, build_simulation
from repro.statemodel.daemon import (
    CentralRandomDaemon,
    DistributedRandomDaemon,
    RoundRobinDaemon,
    SynchronousDaemon,
)

_WORKLOADS = {
    "uniform": workload_mod.uniform_workload,
    "permutation": workload_mod.permutation_workload,
    "hotspot": workload_mod.hotspot_workload,
    "burst": workload_mod.burst_workload,
    "single": workload_mod.single_message_workload,
    "same_payload": workload_mod.adversarial_same_payload_workload,
}

_DAEMONS = {
    "synchronous": lambda **kw: SynchronousDaemon(),
    "round_robin": lambda **kw: RoundRobinDaemon(),
    "central": lambda seed=0, **kw: CentralRandomDaemon(seed=seed, **kw),
    "distributed": lambda seed=0, **kw: DistributedRandomDaemon(seed=seed, **kw),
}

#: Workload generators that take the processor count as first argument.
_N_FIRST = {"uniform", "permutation", "hotspot", "burst"}

#: Every key the spec schema understands, per section.  ``label`` is
#: sweep-file metadata (echoed into rows, never interpreted here).
_TOP_KEYS = frozenset(
    {
        "topology", "workload", "routing", "garbage",
        "scramble_choice_queues", "daemon", "protocol", "protocol_options",
        "ssmfp", "seed", "ledger_strict", "label",
    }
)
_TOPOLOGY_KEYS = frozenset({"name", "kwargs"})
_WORKLOAD_KEYS = frozenset({"name", "kwargs"})
_ROUTING_KEYS = frozenset({"mode", "corruption"})
_CORRUPTION_KEYS = frozenset({"kind", "fraction", "seed"})
_GARBAGE_KEYS = frozenset({"fraction", "seed"})
_DAEMON_KEYS = frozenset({"name", "kwargs"})


def _reject_unknown(section: str, mapping: Any, allowed: frozenset) -> None:
    """Fail loudly on unknown keys: a typo must never silently become a
    no-op knob (the netem layer has the same contract)."""
    if not isinstance(mapping, dict):
        raise ConfigurationError(
            f"spec section {section!r} must be an object, "
            f"got {type(mapping).__name__}"
        )
    unknown = sorted(set(mapping) - allowed)
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) {unknown} in spec section {section!r}; "
            f"valid keys: {sorted(allowed)}"
        )


def simulation_from_spec(
    spec: Dict[str, Any], obs=None, tracer=None
) -> Simulation:
    """Build a :class:`Simulation` from a declarative spec (see module
    docstring for the schema).  ``obs``/``tracer`` attach observability
    exactly as in :func:`~repro.sim.runner.build_simulation`."""
    _reject_unknown("<top level>", spec, _TOP_KEYS)
    if "topology" not in spec:
        raise ConfigurationError("spec needs a 'topology' section")
    seed = int(spec.get("seed", 0))

    topo = spec["topology"]
    _reject_unknown("topology", topo, _TOPOLOGY_KEYS)
    if "name" not in topo:
        raise ConfigurationError("spec section 'topology' needs a 'name'")
    net = topology_by_name(topo["name"], **topo.get("kwargs", {}))

    workload = None
    if "workload" in spec:
        wl = spec["workload"]
        _reject_unknown("workload", wl, _WORKLOAD_KEYS)
        if "name" not in wl:
            raise ConfigurationError("spec section 'workload' needs a 'name'")
        name = wl["name"]
        try:
            builder = _WORKLOADS[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown workload {name!r}; known: {sorted(_WORKLOADS)}"
            ) from None
        kwargs = dict(wl.get("kwargs", {}))
        if name in _N_FIRST:
            kwargs.setdefault("seed", seed)
            workload = builder(net.n, **kwargs)
        else:
            workload = builder(**kwargs)

    routing = spec.get("routing", {})
    _reject_unknown("routing", routing, _ROUTING_KEYS)
    routing_mode = routing.get("mode", "selfstab")
    corruption = routing.get("corruption")
    if corruption is not None:
        _reject_unknown("routing.corruption", corruption, _CORRUPTION_KEYS)
        corruption = dict(corruption)
        corruption.setdefault("seed", seed)

    garbage = spec.get("garbage")
    if garbage is not None:
        _reject_unknown("garbage", garbage, _GARBAGE_KEYS)
        garbage = dict(garbage)
        garbage.setdefault("seed", seed)

    daemon = None
    if "daemon" in spec:
        d = spec["daemon"]
        _reject_unknown("daemon", d, _DAEMON_KEYS)
        if "name" not in d:
            raise ConfigurationError("spec section 'daemon' needs a 'name'")
        try:
            factory = _DAEMONS[d["name"]]
        except KeyError:
            raise ConfigurationError(
                f"unknown daemon {d['name']!r}; known: {sorted(_DAEMONS)}"
            ) from None
        kwargs = dict(d.get("kwargs", {}))
        kwargs.setdefault("seed", seed)
        daemon = factory(**kwargs)

    return build_simulation(
        net,
        workload=workload,
        daemon=daemon,
        seed=seed,
        routing_mode=routing_mode,
        routing_corruption=corruption,
        garbage=garbage,
        scramble_choice_queues=bool(spec.get("scramble_choice_queues", False)),
        ledger_strict=bool(spec.get("ledger_strict", True)),
        protocol=str(spec.get("protocol", "ssmfp")),
        protocol_options=spec.get("protocol_options"),
        ssmfp_options=spec.get("ssmfp"),
        obs=obs,
        tracer=tracer,
    )
