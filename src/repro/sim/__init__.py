"""Simulation assembly, metrics, sweeps and reporting.

:func:`build_simulation` wires a network, a routing provider (static or the
self-stabilizing protocol, optionally corrupted), the SSMFP core (or a
baseline), a workload and a daemon into a ready-to-run :class:`Simulation`.
The experiments and benchmarks are thin layers over this module.
"""

from repro.sim.runner import (
    Simulation,
    build_baseline_simulation,
    build_simulation,
    delivered_and_drained,
)
from repro.sim.metrics import (
    RoundClock,
    delivery_latency_rounds,
    delivery_latency_steps,
    moves_per_delivery,
)
from repro.sim.campaign import run_sweep
from repro.sim.reporting import format_table, set_table_sink

__all__ = [
    "Simulation",
    "build_simulation",
    "build_baseline_simulation",
    "delivered_and_drained",
    "RoundClock",
    "delivery_latency_rounds",
    "delivery_latency_steps",
    "moves_per_delivery",
    "run_sweep",
    "format_table",
    "set_table_sink",
]
