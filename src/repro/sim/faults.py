"""Mid-run fault injection.

Snap-stabilization is proved from one arbitrary *initial* configuration,
but the practical promise of the composition ``A ≫ SSMFP`` is stronger:
routing-table corruption may recur at any time (that is what "transient
faults" means operationally), and as long as faults only hit the *routing
variables* — never the forwarding buffers holding in-flight messages —
Lemmas 4 and 5 keep holding: no valid message is lost or duplicated, and
once faults stop, everything outstanding is delivered.

:class:`RoutingFaultInjector` drives exactly that scenario: at scheduled
steps (periodic or seeded-random), it re-corrupts a fraction of the live
routing tables of a running simulation.  The fault-injection tests and the
sustained-faults experiment are built on it.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Set

from repro.routing.corruption import corrupt_random
from repro.routing.selfstab_bfs import SelfStabilizingBFSRouting


class RoutingFaultInjector:
    """Re-corrupts routing tables of a live simulation at chosen steps.

    Parameters
    ----------
    routing:
        The live routing protocol instance (must be the self-stabilizing
        one — static tables cannot be faulted meaningfully).
    at_steps:
        Explicit step numbers at which to inject, or None for periodic
        injection.
    period:
        Inject every ``period`` steps (used when ``at_steps`` is None).
    fraction:
        Fraction of table entries hit per injection.
    seed:
        Seed for the entry selection (deterministic campaigns).
    stop_after:
        No injections at or beyond this step — faults must eventually
        stop for the delivery guarantee to have a deadline.
    obs:
        Optional :class:`repro.obs.MetricsRegistry`; every injection bumps
        the ``faults_injected_total`` counter.
    tracer:
        Optional :class:`repro.obs.MessageTracer`; every injection is
        stamped into the lifecycle timeline as a ``fault_event`` row, so
        exported artifacts show faults interleaved with message hops.
    """

    def __init__(
        self,
        routing: SelfStabilizingBFSRouting,
        *,
        at_steps: Optional[Iterable[int]] = None,
        period: int = 50,
        fraction: float = 0.5,
        seed: int = 0,
        stop_after: Optional[int] = None,
        obs=None,
        tracer=None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._routing = routing
        self._at: Optional[Set[int]] = set(at_steps) if at_steps is not None else None
        self._period = period
        self._fraction = fraction
        self._rng = random.Random(seed)
        self._stop_after = stop_after
        self._obs = obs
        self._tracer = tracer
        #: Steps at which an injection actually happened.
        self.injections: List[int] = []

    def maybe_inject(self, step: int) -> bool:
        """Inject if ``step`` is scheduled; returns True when it did."""
        if self._stop_after is not None and step >= self._stop_after:
            return False
        due = (
            step in self._at
            if self._at is not None
            else step > 0 and step % self._period == 0
        )
        if not due:
            return False
        hits = corrupt_random(
            self._routing,
            seed=self._rng.randrange(1 << 30),
            fraction=self._fraction,
        )
        self.injections.append(step)
        if self._obs is not None:
            self._obs.counter(
                "faults_injected_total", action="corrupt_routing"
            ).inc()
        if self._tracer is not None:
            self._tracer.record_fault(
                "corrupt_routing",
                {"fraction": self._fraction, "entries_hit": hits},
                step=step,
            )
        return True

    def drive(self, simulation, max_steps: int, halt=None) -> bool:
        """Convenience loop: step the simulation, injecting on schedule.

        ``halt`` has :func:`~repro.sim.runner.delivered_and_drained`
        semantics and, mirroring :meth:`Simulation.run`, is evaluated one
        final time when the step budget runs out — a halt condition
        satisfied by the very last step must not be reported as a miss.
        Returns True when the halt condition was met (never raises on
        budget exhaustion — callers inspect the ledger).
        """
        halted = False
        for _ in range(max_steps):
            if halt is not None and halt(simulation):
                halted = True
                break
            self.maybe_inject(simulation.sim.step_count)
            report = simulation.step()
            if report.terminal and not simulation._fast_forward_workload():
                break
        else:
            if halt is not None and halt(simulation):
                halted = True
        return halted
