"""Consistent-hash sharding of the destination space over worker processes.

A multi-process cluster hosts each node (and therefore every lane, queue
and event log whose destination is that node) in exactly one worker.  The
first generation assigned nodes round-robin (``pid % procs``), which is
disjoint but *unstable*: changing the worker count reassigns almost every
destination, so any state keyed by destination (ports, sticky caches,
per-worker sampling) churns wholesale.

:class:`HashRing` is the classic fix: each shard owns many virtual points
on a ring hashed from stable labels, and a destination is owned by the
first point at or after its own hash.  Growing the ring from ``k`` to
``k+1`` shards moves only ~``1/(k+1)`` of the destinations; everything
else stays put.  Hashing uses :mod:`hashlib` (BLAKE2b), never the
builtin ``hash`` — assignments must agree across processes regardless of
``PYTHONHASHSEED``.

``partition`` layers one repro-specific guarantee on top: every shard of a
cluster must host at least one node (a worker with nothing to do would
still hold TCP servers' slots and skew the deadline math), so after the
ring assignment any empty shard deterministically steals the smallest pid
from the currently largest shard.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Sequence

from repro.errors import ConfigurationError

#: Virtual points per shard.  128 keeps the expected per-shard load within
#: a few percent of even for the cluster sizes this repo runs (n <= 10^4).
DEFAULT_REPLICAS = 128


def _point(label: str) -> int:
    """Stable 64-bit ring position for a label (process-independent)."""
    return int.from_bytes(
        hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent mapping ``key -> shard`` for ``shards`` shards."""

    def __init__(self, shards: int, replicas: int = DEFAULT_REPLICAS) -> None:
        if shards < 1:
            raise ConfigurationError(f"a hash ring needs >= 1 shard, got {shards}")
        if replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {replicas}")
        self.shards = shards
        self.replicas = replicas
        points: List[int] = []
        owners: List[int] = []
        seen = {}
        for shard in range(shards):
            for replica in range(replicas):
                point = _point(f"shard:{shard}:{replica}")
                # Collisions are astronomically unlikely at 64 bits but a
                # deterministic tie-break (lowest shard wins) keeps the
                # mapping well-defined anyway.
                if point in seen:
                    if shard < seen[point]:
                        seen[point] = shard
                    continue
                seen[point] = shard
        for point in sorted(seen):
            points.append(point)
            owners.append(seen[point])
        self._points = points
        self._owners = owners

    def owner(self, key: int) -> int:
        """The shard owning ``key``: the first ring point at or after the
        key's hash, wrapping at the top."""
        index = bisect.bisect_left(self._points, _point(f"dest:{key}"))
        if index == len(self._points):
            index = 0
        return self._owners[index]


def partition(
    keys: Iterable[int], shards: int, replicas: int = DEFAULT_REPLICAS
) -> List[List[int]]:
    """Split ``keys`` (node/destination ids) into ``shards`` disjoint groups
    by consistent hash, each group sorted ascending.

    Guarantees, in order:

    * **disjoint cover** — every key lands in exactly one group;
    * **stability** — re-partitioning with ``shards + 1`` moves only
      ~``1/(shards+1)`` of the keys (the consistent-hash property);
    * **no empty shard** — when there are at least as many keys as shards,
      an empty group deterministically steals the smallest key from the
      currently largest group (ties broken toward the lower group index).
    """
    key_list = sorted(set(keys))
    if shards > len(key_list):
        raise ConfigurationError(
            f"cannot partition {len(key_list)} keys into {shards} shards"
        )
    ring = HashRing(shards, replicas=replicas)
    groups: List[List[int]] = [[] for _ in range(shards)]
    for key in key_list:
        groups[ring.owner(key)].append(key)
    for index, group in enumerate(groups):
        while not group:
            donor = max(range(shards), key=lambda i: (len(groups[i]), -i))
            if len(groups[donor]) <= 1:
                break  # nothing stealable without emptying the donor
            group.append(groups[donor].pop(0))
    return groups
