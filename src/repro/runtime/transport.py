"""Pluggable transports for the live runtime.

A :class:`Transport` moves encoded frames (:mod:`repro.runtime.wire`)
between nodes along the edges of a :class:`~repro.network.graph.Network`.
Since the windowed lane protocol, the unit of transfer is a **record
batch**: ``send(src, dst, records)`` packs any number of hop-protocol
records into one length-prefixed frame, so encode and syscall cost
amortize over a node's whole flush.  Delivery is **best-effort**: a
transport may drop, duplicate, delay or reorder frames (the in-memory one
does none of that by itself; the netem decorator and real TCP both do).
End-to-end guarantees are the node protocol's job — windowed ack/retry
plus sequence-number deduplication (:mod:`repro.runtime.node`).

Each transport is locked to one wire protocol version (binary v2 by
default, JSON v1 as the legacy fallback).  A frame of the *other* version
is never silently dropped: it is recorded as a readable entry in
:attr:`Transport.protocol_errors`, which the cluster surfaces as a failed
(and conformance-FAILed) run instead of a hang.

Two implementations:

* :class:`LocalTransport` — per-node asyncio queues.  Batches still go
  through an encode/decode round-trip so serialization bugs surface
  identically on either transport.
* :class:`TcpTransport` — real sockets on the loopback (or any) interface:
  one listening server per locally hosted node, one lazily opened
  connection per *directed edge*, length-prefixed framing, and reconnect
  with capped exponential backoff.  A peer that is down does not block the
  sender: frames queue on the edge (bounded; overflow drops the oldest)
  and a per-edge pump task drains them as soon as the connection is back —
  coalescing every queued frame into a single write.
"""

from __future__ import annotations

import asyncio
from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.network.graph import Network
from repro.runtime.wire import (
    WIRE_V2,
    WireFormatError,
    WireVersionError,
    decode_frame_body,
    encode_records,
    expect_version,
    split_frames,
)
from repro.types import ProcId

#: One inbox item: (sender pid, decoded record batch).
InboxItem = Tuple[ProcId, List[Dict[str, Any]]]

#: Cap on recorded protocol errors (a chatty mismatched peer must not
#: grow the list unboundedly before the cluster reacts).
_MAX_PROTOCOL_ERRORS = 8


class Transport(ABC):
    """Moves hop record batches between nodes along network edges."""

    def __init__(self, net: Network, wire_version: int = WIRE_V2) -> None:
        self.net = net
        self.wire_version = wire_version
        self._inboxes: Dict[ProcId, "asyncio.Queue[InboxItem]"] = {}
        #: Plain counters (exported into the obs registry by the cluster).
        self.stats: Dict[str, int] = {
            "frames_sent": 0,
            "frames_received": 0,
            "frames_dropped": 0,
            "records_sent": 0,
            "records_received": 0,
            "records_dropped": 0,
            "reconnects": 0,
        }
        #: Readable wire-version mismatch reports (mixed-version cluster);
        #: the cluster aborts the run as soon as one appears.
        self.protocol_errors: List[str] = []

    def bind(self, pid: ProcId, inbox: "asyncio.Queue[InboxItem]") -> None:
        """Attach the inbox of a locally hosted node."""
        self._inboxes[pid] = inbox

    def _check_edge(self, src: ProcId, dst: ProcId) -> None:
        if not self.net.are_neighbors(src, dst):
            raise ConfigurationError(f"no edge {src} -> {dst} in the network")

    def _record_protocol_error(self, message: str) -> None:
        if len(self.protocol_errors) < _MAX_PROTOCOL_ERRORS:
            self.protocol_errors.append(message)

    def _dispatch(
        self, src: ProcId, dst: ProcId, records: List[Dict[str, Any]]
    ) -> None:
        """Hand a decoded record batch to a local inbox (drop if unknown)."""
        inbox = self._inboxes.get(dst)
        if inbox is None:
            self.stats["frames_dropped"] += 1
            self.stats["records_dropped"] += len(records)
            return
        self.stats["frames_received"] += 1
        self.stats["records_received"] += len(records)
        inbox.put_nowait((src, records))

    async def start(self) -> None:
        """Bring the transport up (bind sockets, start pumps)."""

    @abstractmethod
    async def send(
        self, src: ProcId, dst: ProcId, records: Sequence[Dict[str, Any]]
    ) -> None:
        """Best-effort: enqueue one record batch from ``src`` to ``dst``."""

    async def close(self) -> None:
        """Tear the transport down; pending frames may be lost."""


class LocalTransport(Transport):
    """In-memory transport: every node lives in this process."""

    async def send(
        self, src: ProcId, dst: ProcId, records: Sequence[Dict[str, Any]]
    ) -> None:
        self._check_edge(src, dst)
        self.stats["frames_sent"] += 1
        self.stats["records_sent"] += len(records)
        # Round-trip through the wire format so both transports reject the
        # same payloads (and measure comparable serialization cost).
        frame = encode_records(src, dst, records, self.wire_version)
        _, f, t, decoded = decode_frame_body(frame[4:])
        self._dispatch(f, t, decoded)


class TcpTransport(Transport):
    """Length-prefixed frames over asyncio TCP streams.

    Parameters
    ----------
    net:
        The topology; sends are restricted to its edges.
    ports:
        Complete map pid -> (host, port) for *every* node of the network
        (local and remote alike).
    local_pids:
        The nodes hosted by this process; one listening server is started
        for each.
    wire_version:
        The frame encoding this process speaks (v2 binary by default).
    backoff_base / backoff_cap:
        Reconnect backoff: ``base * 2**attempt`` seconds, capped.
    edge_queue:
        Bounded per-edge outbound queue; on overflow the oldest frame is
        dropped (best-effort, the hop protocol retries).
    """

    def __init__(
        self,
        net: Network,
        ports: Dict[ProcId, Tuple[str, int]],
        local_pids: Optional[Tuple[ProcId, ...]] = None,
        wire_version: int = WIRE_V2,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        edge_queue: int = 1024,
    ) -> None:
        super().__init__(net, wire_version=wire_version)
        missing = [p for p in net.processors() if p not in ports]
        if missing:
            raise ConfigurationError(f"ports missing for processors {missing}")
        self.ports = dict(ports)
        self.local_pids = tuple(local_pids) if local_pids is not None else tuple(
            net.processors()
        )
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.edge_queue = edge_queue
        self._servers: list = []
        #: Each queued item is (encoded frame, record count): the count
        #: rides along so a drop-oldest overflow can account for the
        #: records it discarded, not just the frame.
        self._edge_queues: Dict[
            Tuple[ProcId, ProcId], "asyncio.Queue[Tuple[bytes, int]]"
        ] = {}
        self._edge_tasks: Dict[Tuple[ProcId, ProcId], "asyncio.Task"] = {}
        self._closing = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Start one server per local pid.  Raises ``OSError`` (e.g.
        ``EADDRINUSE``) if a port cannot be bound — callers surface that as
        a graceful startup failure, not a hang."""
        for pid in self.local_pids:
            host, port = self.ports[pid]
            server = await asyncio.start_server(
                self._conn_handler, host=host, port=port
            )
            self._servers.append(server)

    async def close(self) -> None:
        self._closing = True
        for task in self._edge_tasks.values():
            task.cancel()
        for task in self._edge_tasks.values():
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._edge_tasks.clear()
        for server in self._servers:
            server.close()
        for server in self._servers:
            try:
                await server.wait_closed()
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass
        self._servers.clear()

    # -- receiving -----------------------------------------------------------

    async def _conn_handler(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        buffer = b""
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                buffer += chunk
                try:
                    bodies, buffer = split_frames(buffer)
                except WireFormatError:
                    self.stats["frames_dropped"] += 1
                    break  # corrupted stream: drop the connection
                for body in bodies:
                    try:
                        version, src, dst, records = decode_frame_body(body)
                        expect_version(version, self.wire_version)
                    except WireVersionError as exc:
                        self._record_protocol_error(str(exc))
                        self.stats["frames_dropped"] += 1
                        continue
                    except WireFormatError:
                        self.stats["frames_dropped"] += 1
                        continue
                    self._dispatch(src, dst, records)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass

    # -- sending -------------------------------------------------------------

    async def send(
        self, src: ProcId, dst: ProcId, records: Sequence[Dict[str, Any]]
    ) -> None:
        self._check_edge(src, dst)
        if src not in self._inboxes and src not in self.local_pids:
            raise ConfigurationError(f"processor {src} is not hosted here")
        frame = encode_records(src, dst, records, self.wire_version)
        key = (src, dst)
        queue = self._edge_queues.get(key)
        if queue is None:
            queue = self._edge_queues[key] = asyncio.Queue(maxsize=self.edge_queue)
            self._edge_tasks[key] = asyncio.get_running_loop().create_task(
                self._edge_pump(key)
            )
        if queue.full():  # drop-oldest: the hop protocol retransmits
            # Never silent: both the frame and every record inside it are
            # counted, so a stalled peer shows up in the run's stats (and
            # the conformance report) instead of vanishing into a hang.
            try:
                _, dropped_records = queue.get_nowait()
            except asyncio.QueueEmpty:
                pass
            else:
                self.stats["frames_dropped"] += 1
                self.stats["records_dropped"] += dropped_records
        queue.put_nowait((frame, len(records)))
        self.stats["frames_sent"] += 1
        self.stats["records_sent"] += len(records)

    async def _edge_pump(self, key: Tuple[ProcId, ProcId]) -> None:
        """Drain one directed edge's queue over a persistent connection,
        reconnecting with capped exponential backoff.  Every frame queued
        at write time is coalesced into a single socket write."""
        _, dst = key
        host, port = self.ports[dst]
        queue = self._edge_queues[key]
        writer: Optional[asyncio.StreamWriter] = None
        backoff = self.backoff_base
        try:
            while True:
                blob, _ = await queue.get()
                # Write coalescing: everything queued behind the first
                # frame goes out in the same syscall.
                while True:
                    try:
                        more, _ = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    blob += more
                while not self._closing:
                    if writer is None:
                        try:
                            _, writer = await asyncio.open_connection(host, port)
                            backoff = self.backoff_base
                        except OSError:
                            self.stats["reconnects"] += 1
                            await asyncio.sleep(backoff)
                            backoff = min(backoff * 2, self.backoff_cap)
                            continue
                    try:
                        writer.write(blob)
                        await writer.drain()
                        break
                    except (ConnectionError, OSError):
                        try:
                            writer.close()
                        except Exception:  # noqa: BLE001
                            pass
                        writer = None
        except asyncio.CancelledError:
            pass
        finally:
            if writer is not None:
                try:
                    writer.close()
                except Exception:  # noqa: BLE001
                    pass


def allocate_ports(
    net: Network, host: str = "127.0.0.1", base: int = 0
) -> Dict[ProcId, Tuple[str, int]]:
    """A pid -> (host, port) map for every processor.

    ``base == 0`` asks the OS for free ephemeral ports (bind-then-release;
    the usual small race is acceptable for tests and local runs).  A
    nonzero ``base`` assigns ``base, base+1, ...`` verbatim — collisions
    then surface as ``EADDRINUSE`` at :meth:`TcpTransport.start`.
    """
    import socket

    ports: Dict[ProcId, Tuple[str, int]] = {}
    if base:
        for pid in net.processors():
            ports[pid] = (host, base + pid)
        return ports
    for pid in net.processors():
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            ports[pid] = (host, sock.getsockname()[1])
    return ports
