"""``repro.runtime`` — the live execution path.

Where every other substrate in the repo is a deterministic single-thread
simulator, this package actually *runs* the protocol: nodes are concurrent
asyncio tasks exchanging serialized frames over pluggable transports
(in-memory or real TCP), optionally behind a seeded fault-injecting
network emulator, with an oracle-checked conformance harness judging every
run against the paper's specification.

See ``docs/runtime.md`` for the architecture and the transport contract.
"""

from repro.runtime.cluster import ClusterSpec, RuntimeResult, run_cluster
from repro.runtime.conformance import (
    ConformanceReport,
    RuntimeEvent,
    check_events,
)
from repro.runtime.netem import NetemConfig, NetemTransport
from repro.runtime.node import RuntimeNode, RuntimeParams
from repro.runtime.transport import (
    LocalTransport,
    TcpTransport,
    Transport,
    allocate_ports,
)
from repro.runtime.wire import (
    WIRE_V1,
    WIRE_V2,
    WireFormatError,
    WireVersionError,
)

__all__ = [
    "ClusterSpec",
    "ConformanceReport",
    "LocalTransport",
    "NetemConfig",
    "NetemTransport",
    "RuntimeEvent",
    "RuntimeNode",
    "RuntimeParams",
    "RuntimeResult",
    "TcpTransport",
    "Transport",
    "WIRE_V1",
    "WIRE_V2",
    "WireFormatError",
    "WireVersionError",
    "allocate_ports",
    "check_events",
    "run_cluster",
]
