"""Cluster orchestration: run N live nodes from any repro topology.

Three execution shapes behind one entry point, :func:`run_cluster`:

* ``transport="local"`` — every node is an asyncio task in this process,
  frames move through in-memory queues;
* ``transport="tcp", procs=1`` — same process, but frames cross real
  loopback sockets with length-prefixed framing;
* ``transport="tcp", procs=N`` — the nodes are partitioned over ``N``
  worker *processes* (spawned, so no forked event-loop state), each
  hosting its share of TCP servers; a shared counter reports delivery
  progress and a shared event tells everyone to stop.

The cluster drives a :mod:`repro.app.workload` workload, records every
generate/deliver event for the conformance oracle
(:mod:`repro.runtime.conformance`), and exports per-hop latency
histograms, retry counts and in-flight gauges as ``repro.obs/v1`` rows.

Failure modes are first-class: a port already in use, a worker process
dying mid-run, and KeyboardInterrupt all end the run with a *partial*
:class:`RuntimeResult` (``partial=True``, errors recorded) instead of a
hung event loop — the CLI turns that into a summary plus a nonzero exit.
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.app import workload as workload_mod
from repro.errors import ConfigurationError
from repro.network.graph import Network
from repro.network.topologies import topology_by_name
from repro.routing.static import StaticRouting
from repro.runtime.conformance import ConformanceReport, RuntimeEvent, check_events
from repro.runtime.netem import NetemConfig, NetemTransport
from repro.runtime.node import RuntimeNode, RuntimeParams
from repro.runtime.sharding import partition as shard_destinations
from repro.runtime.transport import (
    LocalTransport,
    TcpTransport,
    Transport,
    allocate_ports,
)
from repro.runtime.wire import WireVersionError

_WORKLOADS = {
    "uniform": workload_mod.uniform_workload,
    "hotspot": workload_mod.hotspot_workload,
    "permutation": workload_mod.permutation_workload,
    "burst": workload_mod.burst_workload,
}


@dataclass
class ClusterSpec:
    """Everything needed to run one live cluster (picklable)."""

    topology: Dict[str, Any]
    messages: int = 100
    seed: int = 0
    #: Forwarding protocol the cluster emulates (registry name).  The live
    #: hop protocol is the same DATA/ACK/REL/RACK lane machinery for every
    #: family member; what differs is the buffer budget, enforced through
    #: the protocol's ``runtime_window_cap`` — SSMFP's two buffers per hop
    #: admit pipelined lanes, SSMFP2's single fused buffer caps every lane
    #: at window 1 (stop-and-wait).
    protocol: str = "ssmfp"
    transport: str = "local"            #: "local" | "tcp"
    procs: int = 1                      #: >1 => multi-process (tcp only)
    workload: str = "uniform"
    netem: Optional[Dict[str, Any]] = None
    deadline: float = 60.0              #: hard wall-clock budget (seconds)
    drain_grace: float = 2.0            #: extra wait for handshakes to settle
    port_base: int = 0                  #: 0 = auto-allocate free ports
    tick: float = 0.005
    retry_base: float = 0.05
    retry_cap: float = 0.4
    window: int = 32                    #: in-flight DATA per (edge, dest) lane
    max_batch: int = 64                 #: max records packed into one frame
    wire_version: int = 2               #: frame encoding: 2 binary, 1 JSON
    #: Test hook: (worker_index, seconds) — that worker hard-exits mid-run.
    kill_worker_after: Optional[Tuple[int, float]] = None
    #: Timed chaos events lowered onto the wall clock by
    #: :mod:`repro.scenario` — dicts ``{"action", "t0", "t1", ...}``
    #: (seconds from run start).  Driven by per-event asyncio tasks in the
    #: hosting process; single-process runs only (a multi-process cluster
    #: has no one place to pause a node or flip a shared netem knob).
    chaos: Optional[List[Dict[str, Any]]] = None

    def build_network(self) -> Network:
        return topology_by_name(
            self.topology["name"], **self.topology.get("kwargs", {})
        )

    def build_params(self) -> RuntimeParams:
        from repro.core.registry import resolve

        window = self.window
        cap = resolve(self.protocol).runtime_window_cap
        if cap is not None:
            window = min(window, cap)
        return RuntimeParams(
            tick=self.tick,
            retry_base=self.retry_base,
            retry_cap=self.retry_cap,
            window=window,
            max_batch=self.max_batch,
        )

    def build_submissions(self) -> List[Tuple[int, int, Any, int]]:
        net = self.build_network()
        if self.workload == "uniform":
            wl = workload_mod.uniform_workload(net.n, self.messages, seed=self.seed)
        elif self.workload == "hotspot":
            per_source = max(1, self.messages // max(net.n - 1, 1))
            wl = workload_mod.hotspot_workload(
                net.n, dest=0, per_source=per_source, seed=self.seed
            )
        elif self.workload in _WORKLOADS:
            wl = _WORKLOADS[self.workload](net.n, seed=self.seed)
        else:
            raise ConfigurationError(f"unknown workload {self.workload!r}")
        return list(wl.submissions)

    def build_netem(self) -> Optional[NetemConfig]:
        if not self.netem:
            return None
        config = NetemConfig.from_spec(self.netem)
        return None if config.is_noop() else config


@dataclass
class RuntimeResult:
    """Outcome of one cluster run (always produced, even on failure)."""

    spec: ClusterSpec
    report: ConformanceReport
    events: List[RuntimeEvent] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)
    transport_stats: Dict[str, int] = field(default_factory=dict)
    netem_stats: Dict[str, int] = field(default_factory=dict)
    hop_latencies: List[float] = field(default_factory=list)
    #: Mono-stamped fault transitions (netem flaps/partitions, crashes,
    #: floods) merged from the transport log and the chaos driver.
    fault_events: List[Dict[str, Any]] = field(default_factory=list)
    in_flight_samples: List[int] = field(default_factory=list)
    rto_samples: List[float] = field(default_factory=list)
    batch_sizes: List[int] = field(default_factory=list)
    ack_coalesce: List[int] = field(default_factory=list)
    window_samples: List[int] = field(default_factory=list)
    elapsed_s: float = 0.0
    errors: List[str] = field(default_factory=list)
    interrupted: bool = False

    @property
    def partial(self) -> bool:
        """True iff the run ended without full, clean delivery."""
        return bool(self.errors) or self.interrupted or not self.report.ok

    @property
    def throughput(self) -> float:
        """Delivered messages per second of wall clock."""
        return self.report.delivered / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def records_dropped(self) -> int:
        """Hop-protocol records discarded by the transport layer (edge-queue
        overflow against a stalled peer, frames for unknown inboxes).  The
        windowed protocol retransmits, so drops cost latency rather than
        messages — but they are never silent."""
        return self.transport_stats.get("records_dropped", 0)

    def summary(self) -> str:
        """Human-readable run summary (printed by the CLI)."""
        status = "PARTIAL" if self.partial else "OK"
        lines = [
            f"runtime [{status}] protocol={self.spec.protocol} "
            f"transport={self.spec.transport} "
            f"procs={self.spec.procs} elapsed={self.elapsed_s:.2f}s "
            f"throughput={self.throughput:.0f} msg/s",
            self.report.summary(),
        ]
        if self.counters:
            lines.append(
                "counters: "
                + " ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
            )
        if self.transport_stats:
            lines.append(
                "transport: "
                + " ".join(
                    f"{k}={v}" for k, v in sorted(self.transport_stats.items())
                )
            )
        if self.netem_stats:
            lines.append(
                "netem: "
                + " ".join(f"{k}={v}" for k, v in sorted(self.netem_stats.items()))
            )
        for error in self.errors:
            lines.append(f"error: {error}")
        if self.interrupted:
            lines.append("run interrupted — results above are partial")
        return "\n".join(lines)

    def obs_rows(self) -> List[Dict[str, object]]:
        """Export the run as ``repro.obs/v1`` metric rows."""
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        for key, value in self.counters.items():
            registry.counter(f"runtime_{key}").inc(value)
        for key, value in self.transport_stats.items():
            registry.counter(f"transport_{key}").inc(value)
        for key, value in self.netem_stats.items():
            registry.counter(key).inc(value)
        hop = registry.histogram("runtime_hop_latency_s")
        for sample in self.hop_latencies:
            hop.observe(sample)
        flight = registry.histogram("runtime_in_flight")
        for sample in self.in_flight_samples:
            flight.observe(sample)
        batch = registry.histogram("runtime_batch_size")
        for sample in self.batch_sizes:
            batch.observe(sample)
        coalesce = registry.histogram("runtime_ack_coalesce")
        for sample in self.ack_coalesce:
            coalesce.observe(sample)
        rto = registry.histogram("runtime_rto_s")
        for sample in self.rto_samples:
            rto.observe(sample)
        occupancy = registry.histogram("runtime_window_occupancy")
        for sample in self.window_samples:
            occupancy.observe(sample)
        msg_latency = registry.histogram("runtime_msg_latency_s")
        # Durations live in the monotonic clock domain: a wall-clock step
        # (NTP) between generate and deliver must not skew the histogram.
        # Events without a monotonic stamp (mono == 0.0, synthetic logs)
        # are skipped rather than silently measured on the wrong clock.
        generated_mono: Dict[int, float] = {}
        for event in self.events:
            if event.kind == "generated":
                if event.mono:
                    generated_mono[event.uid] = event.mono
            elif event.kind == "delivered" and event.mono:
                start = generated_mono.get(event.uid)
                if start is not None:
                    msg_latency.observe(max(0.0, event.mono - start))
        registry.gauge("runtime_partial").set(1 if self.partial else 0)
        registry.gauge("runtime_elapsed_s").set(round(self.elapsed_s, 3))
        registry.gauge("runtime_throughput_msgs").set(round(self.throughput, 1))
        registry.counter("faults_injected_total").inc(len(self.fault_events))
        rows = registry.rows()
        from repro.obs.registry import SCHEMA

        for event in self.fault_events:
            row: Dict[str, object] = {"schema": SCHEMA, "kind": "fault_event"}
            row.update(event)
            rows.append(row)
        return rows


# -- in-process execution ------------------------------------------------------


def _merge_counts(into: Dict[str, int], add: Dict[str, int]) -> None:
    for key, value in add.items():
        into[key] = into.get(key, 0) + value


def _build_transport(
    spec: ClusterSpec,
    net: Network,
    local_pids: Optional[Tuple[int, ...]] = None,
    ports: Optional[Dict[int, Tuple[str, int]]] = None,
    netem_seed: int = 0,
) -> Transport:
    if spec.wire_version not in (1, 2):
        raise ConfigurationError(
            f"unknown wire version {spec.wire_version!r} (expected 1 or 2)"
        )
    if spec.transport == "local":
        base: Transport = LocalTransport(net, wire_version=spec.wire_version)
    elif spec.transport == "tcp":
        ports = ports or allocate_ports(net, base=spec.port_base)
        base = TcpTransport(
            net, ports, local_pids=local_pids, wire_version=spec.wire_version
        )
    else:
        raise ConfigurationError(f"unknown transport {spec.transport!r}")
    netem = spec.build_netem()
    if netem is None and spec.chaos:
        # Chaos schedules drive edge state / knob changes through the
        # netem decorator, so a scheduled run always gets one — a noop
        # config until the first event fires.
        netem = NetemConfig()
    if netem is not None:
        return NetemTransport(base, netem, seed=spec.seed + netem_seed)
    return base


def chaos_extra_messages(chaos: Optional[List[Dict[str, Any]]]) -> int:
    """Messages that scheduled ``flood`` events will inject on top of the
    workload — they count toward the delivery target and the conformance
    oracle's expected-generated total."""
    return sum(
        int(event.get("count", 0))
        for event in chaos or ()
        if event.get("action") == "flood"
    )


async def _drive_chaos_event(
    event: Dict[str, Any],
    index: int,
    spec: ClusterSpec,
    net: Network,
    transport: Transport,
    by_pid: Dict[int, RuntimeNode],
    fault_log: List[Dict[str, Any]],
) -> None:
    """Sleep until the event's window, apply it, undo it at window end.

    One task per event; the scenario layer has already validated actions,
    nodes and edges and lowered ``at``/``until`` to seconds (``t0``/``t1``
    from run start).
    """
    import random as _random

    netem = transport if isinstance(transport, NetemTransport) else None
    action = event["action"]
    t0 = float(event.get("t0", 0.0))
    t1 = event.get("t1")
    hold = max(0.0, float(t1) - t0) if t1 is not None else None

    def log(kind: str, **detail: Any) -> None:
        fault_log.append(
            {
                "mono": time.monotonic(),
                "t": time.time(),
                "action": kind,
                **detail,
            }
        )

    await asyncio.sleep(t0)
    if action == "flood":
        node = by_pid.get(int(event["source"]))
        count = int(event.get("count", 0))
        if node is not None:
            prefix = event.get("payload", "flood")
            for i in range(count):
                node.submit(f"{prefix}-{index}-{i}", int(event["dest"]))
        log("flood", source=event["source"], dest=event["dest"], count=count)
    elif action == "crash":
        node = by_pid.get(int(event["node"]))
        if node is not None:
            node.pause()
            log("crash", node=event["node"])
        await asyncio.sleep(hold or 0.0)
        if node is not None:
            node.resume()
            log("restart", node=event["node"])
    elif action == "partition":
        assert netem is not None
        for u, v in event["edges"]:
            netem.force_down(int(u), int(v))
        await asyncio.sleep(hold or 0.0)
        for u, v in event["edges"]:
            netem.force_up(int(u), int(v))
    elif action == "netem":
        assert netem is not None
        previous = netem.config
        netem.reconfigure(NetemConfig.from_spec(event["config"]))
        if hold is not None:
            await asyncio.sleep(hold)
            netem.reconfigure(previous)
    elif action == "link_flap":
        assert netem is not None
        rng = _random.Random(int(event.get("seed", 0)))
        period = max(float(event.get("period", 1.0)), 0.01)
        down = min(max(float(event.get("down", 0.05)), 0.01), period)
        edges = [tuple(e) for e in event.get("edges") or []] or list(net.edges)
        loop = asyncio.get_running_loop()
        end = loop.time() + (hold if hold is not None else 0.0)
        while loop.time() < end:
            u, v = edges[rng.randrange(len(edges))]
            netem.force_down(int(u), int(v))
            await asyncio.sleep(min(down, max(0.0, end - loop.time())))
            netem.force_up(int(u), int(v))
            remainder = period - down
            if remainder > 0:
                await asyncio.sleep(min(remainder, max(0.0, end - loop.time())))
    else:  # pragma: no cover - the scenario layer validates actions
        raise ConfigurationError(f"unknown chaos action {action!r}")


class _Progress:
    """Delivery progress shared between nodes and the monitor loop."""

    __slots__ = ("delivered",)

    def __init__(self) -> None:
        self.delivered = 0

    def __call__(self) -> None:
        self.delivered += 1


async def _run_nodes(
    spec: ClusterSpec,
    net: Network,
    transport: Transport,
    submissions: List[Tuple[int, int, Any, int]],
    holder: Dict[str, Any],
    target: int,
    progress: _Progress,
    stop_check=None,
) -> None:
    """Host a set of nodes until the workload drains, the deadline passes,
    or ``stop_check`` fires.  ``holder`` keeps the live objects reachable
    for partial-result assembly even if this coroutine dies."""
    params = spec.build_params()
    routing = StaticRouting(net)
    local_pids = getattr(transport, "local_pids", None)
    pids = list(local_pids) if local_pids is not None else list(net.processors())
    nodes = [RuntimeNode(p, net, routing, transport, params) for p in pids]
    for node in nodes:
        node._delivered_hook = progress
    holder["nodes"] = nodes
    holder["transport"] = transport
    await transport.start()
    holder["started"] = True
    by_pid = {node.pid: node for node in nodes}
    for _, src, payload, dest in submissions:
        if src in by_pid:
            by_pid[src].submit(payload, dest)
    tasks = [asyncio.get_running_loop().create_task(node.run()) for node in nodes]
    holder["tasks"] = tasks
    chaos_tasks: List["asyncio.Task"] = []
    if spec.chaos:
        fault_log = holder.setdefault("fault_events", [])
        chaos_tasks = [
            asyncio.get_running_loop().create_task(
                _drive_chaos_event(
                    dict(event), index, spec, net, transport, by_pid, fault_log
                )
            )
            for index, event in enumerate(spec.chaos)
        ]
    started = time.monotonic()
    deadline = started + spec.deadline
    try:
        while time.monotonic() < deadline:
            if stop_check is not None and stop_check():
                break
            if progress.delivered >= target and target >= 0:
                break
            for task in tasks:
                if task.done() and task.exception() is not None:
                    raise task.exception()  # a node crashed: abort the run
            for task in chaos_tasks:
                if task.done() and task.exception() is not None:
                    raise task.exception()  # a chaos driver bug: surface it
            if transport.protocol_errors:
                # Mixed wire versions: no progress is possible — abort now
                # with the readable report instead of idling to deadline.
                raise WireVersionError(transport.protocol_errors[0])
            holder.setdefault("in_flight", []).append(
                sum(node.in_flight() for node in nodes)
            )
            window = holder.setdefault("window_samples", [])
            for node in nodes:
                window.extend(node.window_occupancy())
            await asyncio.sleep(0.02)
        # Grace period: let REL/RACK handshakes settle so the network is
        # actually empty, not merely delivered.
        grace_end = min(time.monotonic() + spec.drain_grace, deadline)
        while time.monotonic() < grace_end:
            if all(node.is_idle() for node in nodes):
                break
            await asyncio.sleep(0.02)
    finally:
        for node in nodes:
            node.stop()
        for task in chaos_tasks + tasks:
            task.cancel()
        for task in chaos_tasks + tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        await transport.close()


def _collect_inprocess(
    spec: ClusterSpec, holder: Dict[str, Any], result: RuntimeResult
) -> None:
    nodes = holder.get("nodes", [])
    for node in nodes:
        result.events.extend(node.events)
        _merge_counts(result.counters, node.counters)
        result.hop_latencies.extend(node.hop_latencies)
        result.rto_samples.extend(node.rto_samples)
        result.batch_sizes.extend(node.batch_sizes)
        result.ack_coalesce.extend(node.ack_coalesce)
    transport = holder.get("transport")
    if transport is not None:
        _merge_counts(result.transport_stats, transport.stats)
        if isinstance(transport, NetemTransport):
            _merge_counts(result.netem_stats, transport.fault_stats)
            _merge_counts(result.transport_stats, transport.base.stats)
            result.fault_events.extend(transport.fault_events)
    result.fault_events.extend(holder.get("fault_events", []))
    result.fault_events.sort(key=lambda e: e.get("mono", 0.0))
    result.in_flight_samples = holder.get("in_flight", [])
    result.window_samples = holder.get("window_samples", [])


# -- multi-process execution ---------------------------------------------------


def _worker_main(worker_args: Dict[str, Any], stop_event, delivered, result_q) -> None:
    """Entry point of one spawned worker: host a node subset over TCP."""
    spec: ClusterSpec = worker_args["spec"]
    pids: Tuple[int, ...] = tuple(worker_args["pids"])
    ports = worker_args["ports"]
    submissions = worker_args["submissions"]
    index = worker_args["index"]
    net = spec.build_network()

    class _SharedProgress(_Progress):
        def __call__(self) -> None:
            self.delivered += 1
            with delivered.get_lock():
                delivered.value += 1

    progress = _SharedProgress()
    holder: Dict[str, Any] = {}
    error: Optional[str] = None

    async def body() -> None:
        transport = _build_transport(
            spec, net, local_pids=pids, ports=ports, netem_seed=1000 * (index + 1)
        )
        if spec.kill_worker_after is not None and spec.kill_worker_after[0] == index:
            asyncio.get_running_loop().call_later(
                spec.kill_worker_after[1], os._exit, 3
            )
        await _run_nodes(
            spec, net, transport, submissions, holder,
            target=-1,  # workers never know the global target ...
            progress=progress,
            stop_check=stop_event.is_set,  # ... the parent tells them to stop
        )

    try:
        asyncio.run(body())
    except Exception as exc:  # noqa: BLE001 - shipped to the parent
        error = f"{type(exc).__name__}: {exc}"
    payload: Dict[str, Any] = {
        "index": index,
        "pids": pids,
        "error": error,
        "events": [],
        "counters": {},
        "transport_stats": {},
        "netem_stats": {},
        "hop_latencies": [],
        "rto_samples": [],
        "batch_sizes": [],
        "ack_coalesce": [],
        "in_flight": holder.get("in_flight", []),
        "window_samples": holder.get("window_samples", []),
    }
    for node in holder.get("nodes", []):
        payload["events"].extend(node.events)
        _merge_counts(payload["counters"], node.counters)
        payload["hop_latencies"].extend(node.hop_latencies)
        payload["rto_samples"].extend(node.rto_samples)
        payload["batch_sizes"].extend(node.batch_sizes)
        payload["ack_coalesce"].extend(node.ack_coalesce)
    transport = holder.get("transport")
    if transport is not None:
        _merge_counts(payload["transport_stats"], transport.stats)
        if isinstance(transport, NetemTransport):
            _merge_counts(payload["netem_stats"], transport.fault_stats)
            _merge_counts(payload["transport_stats"], transport.base.stats)
    try:
        result_q.put(payload)
    except Exception:  # noqa: BLE001 - parent may already be gone
        pass


def _run_multiprocess(spec: ClusterSpec, result: RuntimeResult) -> None:
    import multiprocessing as mp

    net = spec.build_network()
    if spec.procs > net.n:
        raise ConfigurationError(
            f"more worker processes ({spec.procs}) than nodes ({net.n})"
        )
    submissions = spec.build_submissions()
    target = len(submissions)
    ports = allocate_ports(net, base=spec.port_base)
    # Destination sharding by consistent hash: worker i hosts exactly the
    # nodes (= destinations) its ring shard owns, so the per-destination
    # state of the whole cluster is partitioned disjointly, and changing
    # the worker count relocates only ~1/procs of the destinations.
    groups = shard_destinations(net.processors(), spec.procs)
    ctx = mp.get_context("spawn")
    stop_event = ctx.Event()
    delivered = ctx.Value("i", 0)
    result_q = ctx.Queue()
    workers = []
    for index, pids in enumerate(groups):
        worker_args = {
            "spec": spec,
            "pids": tuple(pids),
            "ports": ports,
            "submissions": [s for s in submissions if s[1] in set(pids)],
            "index": index,
        }
        proc = ctx.Process(
            target=_worker_main,
            args=(worker_args, stop_event, delivered, result_q),
            daemon=True,
        )
        proc.start()
        workers.append(proc)
    started = time.monotonic()
    deadline = started + spec.deadline
    try:
        while time.monotonic() < deadline:
            if delivered.value >= target:
                break
            dead = [
                (i, p.exitcode)
                for i, p in enumerate(workers)
                if p.exitcode is not None and p.exitcode != 0
            ]
            if dead:
                for index, code in dead:
                    result.errors.append(
                        f"worker {index} (pids {groups[index]}) died "
                        f"with exit code {code}"
                    )
                break
            time.sleep(0.05)
        else:
            result.errors.append(
                f"deadline of {spec.deadline}s reached with "
                f"{delivered.value}/{target} deliveries"
            )
    except KeyboardInterrupt:
        result.interrupted = True
    finally:
        # Drain grace, then stop everyone and harvest whatever exists.
        if not result.errors and not result.interrupted:
            time.sleep(min(spec.drain_grace, max(0.0, deadline - time.monotonic())))
        stop_event.set()
        harvested = 0
        harvest_deadline = time.monotonic() + 10.0
        while harvested < len(workers) and time.monotonic() < harvest_deadline:
            try:
                payload = result_q.get(timeout=0.25)
            except Exception:  # noqa: BLE001 - queue.Empty and EOF alike
                if all(p.exitcode is not None for p in workers):
                    break
                continue
            harvested += 1
            if payload.get("error"):
                result.errors.append(
                    f"worker {payload['index']}: {payload['error']}"
                )
            result.events.extend(payload["events"])
            _merge_counts(result.counters, payload["counters"])
            _merge_counts(result.transport_stats, payload["transport_stats"])
            _merge_counts(result.netem_stats, payload["netem_stats"])
            result.hop_latencies.extend(payload["hop_latencies"])
            result.rto_samples.extend(payload.get("rto_samples", []))
            result.batch_sizes.extend(payload.get("batch_sizes", []))
            result.ack_coalesce.extend(payload.get("ack_coalesce", []))
            result.in_flight_samples.extend(payload["in_flight"])
            result.window_samples.extend(payload.get("window_samples", []))
        for proc in workers:
            proc.join(timeout=2.0)
        for index, proc in enumerate(workers):
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
                result.errors.append(f"worker {index} had to be terminated")
        if harvested < len(workers):
            missing = len(workers) - harvested
            result.errors.append(
                f"{missing} worker(s) returned no results — counts are partial"
            )
    result.report = check_events(result.events, expect_generated=target)


# -- entry point ---------------------------------------------------------------


def run_cluster(spec: ClusterSpec) -> RuntimeResult:
    """Run one live cluster to completion (or graceful failure).

    Never hangs and never loses the partial picture: startup failures
    (e.g. a TCP port already in use), node crashes, dead worker processes,
    deadline exhaustion and KeyboardInterrupt all come back as a
    :class:`RuntimeResult` with ``partial=True`` and the errors listed.
    """
    if spec.procs > 1 and spec.transport != "tcp":
        raise ConfigurationError("multi-process clusters require transport='tcp'")
    if spec.procs < 1:
        raise ConfigurationError("procs must be >= 1")
    if spec.chaos and spec.procs > 1:
        raise ConfigurationError(
            "chaos schedules require procs=1 (a multi-process cluster has "
            "no single place to pause a node or reconfigure the transport)"
        )
    from repro.core.registry import resolve

    resolve(spec.protocol)  # raises ConfigurationError on unknown names
    started = time.monotonic()
    result = RuntimeResult(spec=spec, report=ConformanceReport())
    if spec.procs > 1:
        _run_multiprocess(spec, result)
        result.elapsed_s = time.monotonic() - started
        return result

    net = spec.build_network()
    submissions = spec.build_submissions()
    target = len(submissions) + chaos_extra_messages(spec.chaos)
    holder: Dict[str, Any] = {}
    progress = _Progress()
    try:
        transport = _build_transport(spec, net)
        asyncio.run(
            _run_nodes(spec, net, transport, submissions, holder, target, progress)
        )
    except KeyboardInterrupt:
        result.interrupted = True
    except OSError as exc:
        result.errors.append(f"transport start failed: {exc}")
    except ConfigurationError:
        raise
    except Exception as exc:  # noqa: BLE001 - a node crash must not hang
        result.errors.append(f"{type(exc).__name__}: {exc}")
    result.elapsed_s = time.monotonic() - started
    _collect_inprocess(spec, holder, result)
    result.report = check_events(result.events, expect_generated=target)
    return result
