"""Wire formats of the live runtime.

On the network every transmission is one *frame* — a 4-byte big-endian
length prefix followed by a frame body.  A body holds an **envelope**
(protocol version, sender pid, receiver pid) and a **batch** of hop
protocol records, so one flush of a node's outgoing buffer amortizes
syscall and encode cost over the whole congestion window.

Two body encodings exist behind one seam:

* **v2 (default)** — compact binary: a struct-packed header
  ``(version, src, dst, count)`` followed by ``count`` struct-packed
  records; ``DATA`` payloads travel as length-prefixed JSON bytes.
* **v1 (legacy / fallback)** — the original JSON object encoding,
  batched under a ``"ms"`` key.

The first body byte discriminates: ``0x7B`` (``{``) is a v1 JSON object,
``0x02`` is the v2 version tag.  :func:`decode_frame_body` parses either
and reports which it saw, so a node locked to one version can raise a
*readable* :class:`WireVersionError` on a mixed-version cluster instead
of a struct traceback or a silent hang.

Hop protocol record kinds (see :mod:`repro.runtime.node` for the window
protocol that produces them):

``DATA``
    Carries one stored message ``(dest, seq, uid, payload, valid)`` one
    hop toward its destination.  ``seq`` is a per-(sender, receiver,
    dest) lane sequence number; ``rel`` piggybacks the sender's
    cumulative release level (every seq <= ``rel`` has been erased
    upstream, so the receiver may commit those records — rule R2's
    guard, carried over the wire).
``ACK``
    Cumulative: the receiver has accepted every seq <= ``cum`` in order,
    plus the out-of-order seqs flagged in the 64-bit ``sack`` bitmap
    (bit *i* = seq ``cum + 1 + i``).  ``rel_seen`` echoes the highest
    release level the receiver has applied, confirming REL delivery.
``REL``
    Standalone cumulative release (used when no DATA is in flight to
    piggyback on): every seq <= ``rel`` is erased at the sender.
``RACK``
    Reply to a standalone ``REL``: the receiver has applied releases up
    to ``rel`` — the sender may stop retransmitting the REL.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ReproError

#: Hop-protocol record kinds.
DATA, ACK, REL, RACK = "DATA", "ACK", "REL", "RACK"

#: Wire protocol versions.
WIRE_V1, WIRE_V2 = 1, 2

_LEN = struct.Struct(">I")

#: Frames above this are rejected (a corrupted length prefix must not make
#: a reader allocate gigabytes).
MAX_FRAME = 1 << 20


class WireFormatError(ReproError, ValueError):
    """A frame body that cannot be decoded: truncated, corrupted, or
    structurally invalid.  Always carries a readable message — codec
    internals (``struct.error``, ``json.JSONDecodeError``) never leak."""


class WireVersionError(WireFormatError):
    """A well-formed frame of the *wrong* protocol version reached a node
    locked to another one (mixed-version cluster)."""


# -- record constructors (plain dicts; kept tiny and allocation-light) --------


def data_rec(
    dest: int, seq: int, uid: int, payload: Any, valid: bool, rel: int = 0
) -> Dict[str, Any]:
    """A ``DATA`` record (``rel`` piggybacks the cumulative release)."""
    return {"k": DATA, "d": dest, "s": seq, "u": uid, "p": payload,
            "v": valid, "r": rel}


def ack_rec(dest: int, cum: int, sack: int = 0, rel_seen: int = 0) -> Dict[str, Any]:
    """An ``ACK`` record: cumulative + selective-ack bitmap."""
    return {"k": ACK, "d": dest, "c": cum, "b": sack, "r": rel_seen}


def rel_rec(dest: int, rel: int) -> Dict[str, Any]:
    """A standalone cumulative ``REL`` record."""
    return {"k": REL, "d": dest, "r": rel}


def rack_rec(dest: int, rel: int) -> Dict[str, Any]:
    """A ``RACK`` record confirming releases up to ``rel``."""
    return {"k": RACK, "d": dest, "r": rel}


def kind_of(rec: Dict[str, Any]) -> Optional[str]:
    """The hop-protocol kind of a decoded record (None if malformed)."""
    kind = rec.get("k")
    return kind if kind in (DATA, ACK, REL, RACK) else None


# -- v2 binary codec ----------------------------------------------------------

_HEADER = struct.Struct(">BHHH")          # version, src, dst, record count
_KIND_DATA, _KIND_ACK, _KIND_REL, _KIND_RACK = 1, 2, 3, 4
_DATA_HDR = struct.Struct(">BHIQBII")     # kind, d, seq, uid, flags, rel, plen
_ACK_REC = struct.Struct(">BHIQI")        # kind, d, cum, sack, rel_seen
_REL_REC = struct.Struct(">BHI")          # kind, d, rel
_FLAG_VALID = 1
#: Payload encoding tag, stored in flags bits 1-2.  Plain strings and ints
#: (the overwhelmingly common payloads) skip JSON on both sides of the
#: wire; everything else falls back to compact JSON.
_PTYPE_JSON, _PTYPE_STR, _PTYPE_INT = 0, 1, 2


def _encode_v2(src: int, dst: int, records: Sequence[Dict[str, Any]]) -> bytes:
    parts: List[bytes] = [_HEADER.pack(WIRE_V2, src, dst, len(records))]
    try:
        for rec in records:
            kind = rec["k"]
            if kind == DATA:
                ptype, payload = _payload_bytes(rec["p"])
                flags = (_FLAG_VALID if rec["v"] else 0) | (ptype << 1)
                parts.append(
                    _DATA_HDR.pack(
                        _KIND_DATA, rec["d"], rec["s"], rec["u"],
                        flags, rec["r"], len(payload),
                    )
                )
                parts.append(payload)
            elif kind == ACK:
                parts.append(
                    _ACK_REC.pack(_KIND_ACK, rec["d"], rec["c"], rec["b"], rec["r"])
                )
            elif kind == REL:
                parts.append(_REL_REC.pack(_KIND_REL, rec["d"], rec["r"]))
            elif kind == RACK:
                parts.append(_REL_REC.pack(_KIND_RACK, rec["d"], rec["r"]))
            else:
                raise WireFormatError(f"unknown record kind {kind!r}")
    except (struct.error, KeyError, TypeError) as exc:
        raise WireFormatError(f"record not encodable as wire v2: {exc}") from None
    return b"".join(parts)


def _payload_bytes(payload: Any) -> Tuple[int, bytes]:
    if type(payload) is str:
        return _PTYPE_STR, payload.encode("utf-8")
    if type(payload) is int:  # bool is excluded: it must round-trip as bool
        return _PTYPE_INT, b"%d" % payload
    try:
        return _PTYPE_JSON, json.dumps(payload, separators=(",", ":")).encode(
            "utf-8"
        )
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"payload is not JSON-serializable: {exc}"
        ) from None


def _decode_v2(body: bytes) -> Tuple[int, int, List[Dict[str, Any]]]:
    try:
        _, src, dst, count = _HEADER.unpack_from(body, 0)
    except struct.error:
        raise WireFormatError("truncated v2 frame header") from None
    offset = _HEADER.size
    records: List[Dict[str, Any]] = []
    try:
        for _ in range(count):
            kind = body[offset]
            if kind == _KIND_DATA:
                _, d, seq, uid, flags, rel, plen = _DATA_HDR.unpack_from(
                    body, offset
                )
                offset += _DATA_HDR.size
                if plen > MAX_FRAME or offset + plen > len(body):
                    raise WireFormatError(
                        f"DATA payload length {plen} overruns the frame"
                    )
                raw = body[offset : offset + plen]
                ptype = (flags >> 1) & 0x3
                try:
                    if ptype == _PTYPE_STR:
                        payload = raw.decode("utf-8")
                    elif ptype == _PTYPE_INT:
                        payload = int(raw)
                    else:
                        payload = json.loads(raw)
                except (ValueError, UnicodeDecodeError):
                    raise WireFormatError(
                        f"DATA payload does not decode as type {ptype}"
                    ) from None
                offset += plen
                records.append(
                    data_rec(d, seq, uid, payload, bool(flags & _FLAG_VALID), rel)
                )
            elif kind == _KIND_ACK:
                _, d, cum, sack, rel_seen = _ACK_REC.unpack_from(body, offset)
                offset += _ACK_REC.size
                records.append(ack_rec(d, cum, sack, rel_seen))
            elif kind in (_KIND_REL, _KIND_RACK):
                _, d, rel = _REL_REC.unpack_from(body, offset)
                offset += _REL_REC.size
                records.append(
                    rel_rec(d, rel) if kind == _KIND_REL else rack_rec(d, rel)
                )
            else:
                raise WireFormatError(f"unknown v2 record tag {kind}")
    except struct.error:
        raise WireFormatError("truncated v2 record") from None
    except IndexError:
        raise WireFormatError("truncated v2 frame body") from None
    if offset != len(body):
        raise WireFormatError(
            f"{len(body) - offset} trailing bytes after {count} records"
        )
    return src, dst, records


# -- v1 JSON codec (legacy; also the mixed-version negotiation partner) -------


def _encode_v1(src: int, dst: int, records: Sequence[Dict[str, Any]]) -> bytes:
    try:
        return json.dumps(
            {"f": src, "t": dst, "ms": list(records)}, separators=(",", ":")
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"payload is not JSON-serializable: {exc}"
        ) from None


def _decode_v1(body: bytes) -> Tuple[int, int, List[Dict[str, Any]]]:
    try:
        envelope = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        raise WireFormatError("frame body is not valid JSON") from None
    if not isinstance(envelope, dict):
        raise WireFormatError("v1 frame body is not a JSON object")
    try:
        src, dst = int(envelope["f"]), int(envelope["t"])
    except (KeyError, TypeError, ValueError):
        raise WireFormatError("v1 envelope is missing f/t routing fields") from None
    if "ms" in envelope:
        records = envelope["ms"]
    elif "m" in envelope:  # pre-batching single-record form
        records = [envelope["m"]]
    else:
        raise WireFormatError("v1 envelope carries no records")
    if not isinstance(records, list) or not all(
        isinstance(r, dict) for r in records
    ):
        raise WireFormatError("v1 record batch is not a list of objects")
    return src, dst, records


# -- the codec seam -----------------------------------------------------------


def encode_records(
    src: int, dst: int, records: Sequence[Dict[str, Any]], version: int = WIRE_V2
) -> bytes:
    """Serialize one record batch to a length-prefixed frame."""
    if version == WIRE_V2:
        body = _encode_v2(src, dst, records)
    elif version == WIRE_V1:
        body = _encode_v1(src, dst, records)
    else:
        raise ConfigurationError(f"unknown wire version {version!r}")
    if len(body) > MAX_FRAME:
        raise ConfigurationError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    return _LEN.pack(len(body)) + body


def decode_frame_body(body: bytes) -> Tuple[int, int, int, List[Dict[str, Any]]]:
    """Parse one frame body of *either* version.

    Returns ``(version, src, dst, records)``.  Raises
    :class:`WireFormatError` on anything undecodable — never a raw
    ``struct.error`` or ``json`` traceback.
    """
    if not body:
        raise WireFormatError("empty frame body")
    tag = body[0]
    if tag == WIRE_V2:
        src, dst, records = _decode_v2(body)
        return WIRE_V2, src, dst, records
    if tag == 0x7B:  # '{' — a v1 JSON object
        src, dst, records = _decode_v1(body)
        return WIRE_V1, src, dst, records
    raise WireFormatError(
        f"unrecognized frame body (first byte {tag:#04x} is neither the "
        f"v2 tag nor a JSON object)"
    )


def expect_version(got: int, expected: int) -> None:
    """Raise a readable :class:`WireVersionError` on a version mismatch."""
    if got != expected:
        raise WireVersionError(
            f"received a wire format v{got} frame but this node speaks "
            f"v{expected} — mixed protocol versions in one cluster? "
            f"Run every node with the same --wire-version."
        )


def split_frames(buffer: bytes) -> Tuple[list, bytes]:
    """Split ``buffer`` into complete frame bodies plus the unconsumed
    tail (stream parsing for the TCP transport)."""
    bodies = []
    offset = 0
    while len(buffer) - offset >= _LEN.size:
        (length,) = _LEN.unpack_from(buffer, offset)
        if length > MAX_FRAME:
            raise WireFormatError(f"frame length {length} exceeds MAX_FRAME")
        if len(buffer) - offset - _LEN.size < length:
            break
        start = offset + _LEN.size
        bodies.append(buffer[start : start + length])
        offset = start + length
    return bodies, buffer[offset:]


def sack_bitmap(cum: int, out_of_order: Sequence[int]) -> int:
    """The 64-bit selective-ack bitmap for seqs held above ``cum``."""
    bits = 0
    for seq in out_of_order:
        i = seq - cum - 1
        if 0 <= i < 64:
            bits |= 1 << i
    return bits


def sack_seqs(cum: int, bits: int) -> List[int]:
    """The seqs flagged by a selective-ack bitmap."""
    seqs = []
    i = 0
    while bits:
        if bits & 1:
            seqs.append(cum + 1 + i)
        bits >>= 1
        i += 1
    return seqs
