"""Wire format of the live runtime.

Every hop-level protocol message is a small JSON object; on the network it
travels as one *frame* — a 4-byte big-endian length prefix followed by the
UTF-8 JSON body.  Both transports speak frames (the in-memory transport
round-trips them too, so a payload that cannot be serialized fails
identically on either transport instead of only in production).

Hop protocol message kinds (see :mod:`repro.runtime.node` for the rules):

``DATA``
    Carries one stored message ``(dest, seq, uid, payload, valid)`` one hop
    toward its destination.  ``seq`` is a per-(sender, receiver, dest) lane
    sequence number; the receiver uses it to deduplicate retransmissions
    and transport-level duplicates.
``ACK``
    The receiver accepted ``(dest, seq)`` into its reception buffer (or
    already had) — the sender may erase its emission buffer.
``REL``
    The sender has erased its copy of ``(dest, seq)``; the receiver may
    commit the reception buffer to its emission buffer (rule R2's guard,
    carried over the wire).
``RACK``
    The receiver processed the ``REL`` — the sender's lane is free for the
    next message.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError

#: Hop-protocol message kinds.
DATA, ACK, REL, RACK = "DATA", "ACK", "REL", "RACK"

_LEN = struct.Struct(">I")

#: Frames above this are rejected (a corrupted length prefix must not make
#: a reader allocate gigabytes).
MAX_FRAME = 1 << 20


def encode_frame(msg: Dict[str, Any]) -> bytes:
    """Serialize one message dict to a length-prefixed frame."""
    try:
        body = json.dumps(msg, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"payload is not JSON-serializable: {exc}"
        ) from None
    if len(body) > MAX_FRAME:
        raise ConfigurationError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    return _LEN.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, Any]:
    """Parse one frame body back into a message dict."""
    msg = json.loads(body.decode("utf-8"))
    if not isinstance(msg, dict):
        raise ValueError("frame body is not a JSON object")
    return msg


def split_frames(buffer: bytes) -> Tuple[list, bytes]:
    """Split ``buffer`` into complete frame bodies plus the unconsumed
    tail (stream parsing for the TCP transport)."""
    bodies = []
    offset = 0
    while len(buffer) - offset >= _LEN.size:
        (length,) = _LEN.unpack_from(buffer, offset)
        if length > MAX_FRAME:
            raise ValueError(f"frame length {length} exceeds MAX_FRAME")
        if len(buffer) - offset - _LEN.size < length:
            break
        start = offset + _LEN.size
        bodies.append(buffer[start : start + length])
        offset = start + length
    return bodies, buffer[offset:]


# -- hop message constructors (kept tiny and allocation-light) ---------------


def data_msg(dest: int, seq: int, uid: int, payload: Any, valid: bool) -> Dict[str, Any]:
    """A ``DATA`` hop message."""
    return {"k": DATA, "d": dest, "s": seq, "u": uid, "p": payload, "v": valid}


def ack_msg(dest: int, seq: int) -> Dict[str, Any]:
    """An ``ACK`` hop message."""
    return {"k": ACK, "d": dest, "s": seq}


def rel_msg(dest: int, seq: int) -> Dict[str, Any]:
    """A ``REL`` hop message."""
    return {"k": REL, "d": dest, "s": seq}


def rack_msg(dest: int, seq: int) -> Dict[str, Any]:
    """A ``RACK`` hop message."""
    return {"k": RACK, "d": dest, "s": seq}


def kind_of(msg: Dict[str, Any]) -> Optional[str]:
    """The hop-protocol kind of a decoded message (None if malformed)."""
    kind = msg.get("k")
    return kind if kind in (DATA, ACK, REL, RACK) else None
