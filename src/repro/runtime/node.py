"""A live SSMFP node: the per-(processor, destination) rules on an event loop.

:class:`RuntimeNode` ports the two-buffer forwarding scheme (the state
model's rules R1-R6, via the message-passing translation of
:mod:`repro.messagepassing.forwarding`) onto asyncio, hardened for *real*
channels that may drop, duplicate, delay and reorder frames.  Where the
first runtime generation ran each hop lane stop-and-wait (one
DATA/ACK/REL/RACK round trip per message), every lane is now a
**sliding window**:

===========  ================================================================
state model  live runtime
===========  ================================================================
R1           ``generate``: outbox heads are sequenced straight into the
             outgoing lane while the lane's window has space
R2           a record is *released* (committable downstream) once the
             upstream copy is erased; the release level travels as a
             cumulative ``rel`` watermark piggybacked on DATA (or as a
             standalone ``REL`` when the lane is quiet)
R3           ``DATA(d, seq, ...)`` pipelined up to ``window`` in flight per
             (neighbor, destination) lane; the receiver accepts any seq
             inside the window (out-of-order ones are held and selectively
             acknowledged), acknowledges with one *coalesced* cumulative
             ACK + SACK bitmap per burst, and the sender retransmits on an
             RTT-estimated timeout (RFC 6298 SRTT/RTTVAR)
R4           a (cumulative or selective) ACK erases the sender's copy;
             the release watermark then advances to the cumulative level
R2's guard   the receiver forwards/delivers a record only once the
             sender's ``rel`` watermark covers it — at most one *live*
             copy of each message per hop, exactly as in the paper
R6           ``deliver``: at the destination, released records are consumed
             and delivery events appended to the conformance log
===========  ================================================================

The sequence-number discipline is what upgrades best-effort transports to
exactly-once: a retransmitted or transport-duplicated ``DATA`` carries a
seq at or below the receiver's cumulative level (or one already held out
of order) and is answered with a harmless repeat ACK instead of a second
acceptance.  Pipelining does not weaken that claim — the journal version
of the paper (arXiv:0905.2540) derives the delivery guarantee from the
erase/duplication discipline, not from per-message lockstep — and the
conformance harness (:mod:`repro.runtime.conformance`) re-checks it from
the event log of every run.

The same node class serves every member of the protocol family: the
fused single-buffer protocol (``repro.core.protocol2``) differs only in
its buffer budget, which :class:`~repro.runtime.cluster.ClusterSpec`
enforces by clamping ``params.window`` to the protocol's declared
``runtime_window_cap`` (1 for SSMFP2 — each lane degenerates to the
stop-and-wait handshake, the faithful live analogue of one fused buffer
per hop).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

from repro.network.graph import Network
from repro.routing.table import RoutingService
from repro.runtime.conformance import RuntimeEvent
from repro.runtime.transport import InboxItem, Transport
from repro.runtime.wire import (
    ACK,
    DATA,
    RACK,
    REL,
    ack_rec,
    data_rec,
    rack_rec,
    rel_rec,
    sack_bitmap,
    sack_seqs,
)
from repro.types import DestId, ProcId

#: The SACK bitmap is 64 bits wide, so no window may exceed it.
MAX_WINDOW = 64


@dataclass
class RuntimeParams:
    """Knobs of the windowed hop protocol (times in seconds)."""

    tick: float = 0.005         #: event-loop heartbeat / stop-poll period
    retry_base: float = 0.05    #: RTO floor (clamps the RFC 6298 estimate)
    retry_cap: float = 0.4      #: RTO ceiling (also caps timeout backoff)
    rto_initial: float = 0.25   #: RTO before the first RTT sample
    window: int = 32            #: max in-flight DATA per (neighbor, dest) lane
    max_batch: int = 64         #: max records packed into one frame
    recv_queue: int = 256       #: per-destination reception backlog ceiling
    max_attempts: int = 0       #: 0 = retry forever (drain deadline bounds it)


@dataclass(slots=True)
class RuntimeRecord:
    """One stored message (uid preserved across hops, as in the model)."""

    payload: Any
    uid: int
    valid: bool
    src: ProcId     #: who handed it to us (self for generated)
    seq: int        #: lane sequence it arrived under (-1 for generated)


@dataclass(slots=True)
class _Pending:
    """One unacknowledged DATA record of an outgoing lane."""

    rec: Dict[str, Any]
    first_sent: float
    last_sent: float
    retx: bool = False
    sack_skips: int = 0  #: ACKs that SACKed records beyond this one


@dataclass(slots=True)
class _OutLane:
    """Sender half of one (neighbor, destination) window lane."""

    nbr: ProcId
    dest: DestId
    next_seq: int = 1
    #: seq -> pending, ascending insertion order (dicts preserve it).
    unacked: Dict[int, _Pending] = field(default_factory=dict)
    rel_cum: int = 0        #: every seq <= this is erased here (released)
    cum_seen: int = 0       #: highest cumulative ACK received on the lane
    rel_confirmed: int = 0  #: highest release level the receiver confirmed
    rel_sent: int = 0       #: release level last announced standalone
    rel_backoff: int = 1
    rel_expiry: float = 0.0
    srtt: Optional[float] = None
    rttvar: float = 0.0
    rtt_max: float = 0.0    #: decayed max RTT — scheduling-stall tail guard
    samples: int = 0        #: RTT samples taken (warmup holds RTO high)
    rto: float = 0.25
    backoff: int = 1
    attempts: int = 0       #: consecutive timeout events (max_attempts cap)
    expiry: Optional[float] = None


@dataclass(slots=True)
class _InLane:
    """Receiver half of one (sender, destination) window lane."""

    cum: int = 0        #: highest seq accepted in order
    rel_cum: int = 0    #: highest release level applied
    #: out-of-order accepted records, seq -> record.
    ooo: Dict[int, RuntimeRecord] = field(default_factory=dict)
    #: in-order accepted records not yet released by the sender.
    pending: Deque[Tuple[int, RuntimeRecord]] = field(default_factory=deque)
    ack_due: bool = False
    coalesced: int = 0  #: DATA records covered since the last ACK went out


class _DestQueues:
    """Sparse ``dest -> deque`` store for the forwarding/outbox queues.

    A runtime node talks to a handful of live destinations at a time, so
    the per-destination queues materialize on first use and are evicted
    once drained — memory tracks the live set, not ``n``.  Reads through
    ``[d]`` never materialize: an absent destination reads as the empty
    sequence, the same absent≡empty invariant the state model's sparse
    buffers rely on.
    """

    __slots__ = ("_queues",)

    def __init__(self) -> None:
        self._queues: Dict[DestId, Deque] = {}

    def __getitem__(self, d: DestId):
        """The live deque, or ``()`` (read-only empty) when absent."""
        return self._queues.get(d, ())

    def ensure(self, d: DestId) -> Deque:
        """Get-or-create the real mutable deque for ``d``."""
        queue = self._queues.get(d)
        if queue is None:
            queue = self._queues[d] = deque()
        return queue

    def size(self, d: DestId) -> int:
        queue = self._queues.get(d)
        return 0 if queue is None else len(queue)

    def evict(self, d: DestId) -> None:
        """Drop ``d``'s queue iff it is drained (no-op otherwise)."""
        queue = self._queues.get(d)
        if queue is not None and not queue:
            del self._queues[d]

    def live(self) -> Set[DestId]:
        """Destinations with a materialized queue (footprint index)."""
        return set(self._queues)

    def empty(self) -> bool:
        return all(not queue for queue in self._queues.values())


class RuntimeNode:
    """One live processor: window lanes, an inbox, and a run loop."""

    def __init__(
        self,
        pid: ProcId,
        net: Network,
        routing: RoutingService,
        transport: Transport,
        params: Optional[RuntimeParams] = None,
    ) -> None:
        self.pid = pid
        self.net = net
        self.routing = routing
        self.transport = transport
        self.params = params or RuntimeParams()
        self._window = max(1, min(self.params.window, MAX_WINDOW))
        self._rto_floor = max(0.0, self.params.retry_base)
        self._rto_ceil = max(self.params.retry_cap, self._rto_floor)
        self._rto_start = min(
            max(self.params.rto_initial, self._rto_floor), self._rto_ceil
        )
        #: Released records awaiting forwarding (or delivery), per dest —
        #: sparse: queues exist only for destinations with live traffic.
        self.fwd = _DestQueues()
        self.outbox = _DestQueues()
        self._out_lanes: Dict[Tuple[ProcId, DestId], _OutLane] = {}
        self._in_lanes: Dict[Tuple[ProcId, DestId], _InLane] = {}
        self._ack_dirty: Set[Tuple[ProcId, DestId]] = set()
        self._active: Set[DestId] = set()
        self.inbox: "asyncio.Queue[InboxItem]" = asyncio.Queue()
        transport.bind(pid, self.inbox)
        #: Conformance event log (generated / delivered), in node order.
        self.events: List[RuntimeEvent] = []
        self._event_order = 0
        self._next_uid = pid + 1  # stride n keeps uids globally unique
        self._stopping = False
        self._paused = False
        #: Plain counters; the cluster publishes them into the obs registry.
        self.counters: Dict[str, int] = {
            "generated": 0,
            "delivered": 0,
            "retries": 0,
            "frames_out": 0,
            "records_out": 0,
            "dup_data_acked": 0,
            "stale_records_dropped": 0,
            "recv_backpressure": 0,
        }
        #: Hop latencies (DATA first sent -> first covering ACK), seconds.
        self.hop_latencies: List[float] = []
        #: RTO estimate after each RTT sample, seconds.
        self.rto_samples: List[float] = []
        #: Records per flushed frame.
        self.batch_sizes: List[int] = []
        #: DATA records covered by each coalesced ACK.
        self.ack_coalesce: List[int] = []
        self._delivered_hook = None  # cluster progress callback

    # -- application interface -----------------------------------------------

    def submit(self, payload: Any, dest: DestId) -> None:
        """Queue an application send (FIFO per destination)."""
        if dest == self.pid:
            raise ValueError("self-addressed messages never enter the network")
        self.outbox.ensure(dest).append(payload)
        self._active.add(dest)

    def stop(self) -> None:
        """Ask the run loop to exit at the next heartbeat."""
        self._stopping = True

    def pause(self) -> None:
        """Freeze the run loop (scenario ``crash`` action): no rules fire,
        no timers run, nothing is sent or received until :meth:`resume`.

        This is the *fail-pause* crash model: lane sequence numbers and
        release watermarks survive, so the hop protocol's exactly-once
        bookkeeping stays intact across the outage — peers simply see an
        unresponsive neighbor and retransmit into its inbox, which drains
        on resume.  (A fail-recover model with fresh state would need
        stable-storage lane state; the paper's fault model corrupts
        *routing* variables, never the forwarding buffers.)
        """
        self._paused = True

    def resume(self) -> None:
        """Thaw a :meth:`pause`-d node; the backlog drains immediately."""
        self._paused = False

    def is_idle(self) -> bool:
        """True iff no queue, lane or inbox item holds anything."""
        return (
            self.fwd.empty()
            and self.outbox.empty()
            and all(
                not lane.unacked and lane.rel_confirmed >= lane.rel_cum
                for lane in self._out_lanes.values()
            )
            and all(
                not lane.pending and not lane.ooo
                for lane in self._in_lanes.values()
            )
            and self.inbox.empty()
        )

    def in_flight(self) -> int:
        """DATA records currently awaiting acknowledgement."""
        return sum(len(lane.unacked) for lane in self._out_lanes.values())

    def window_occupancy(self) -> List[int]:
        """Per-lane unacked counts (observability sampling)."""
        return [len(lane.unacked) for lane in self._out_lanes.values()]

    # -- run loop ------------------------------------------------------------

    async def run(self) -> None:
        """Drive the node until :meth:`stop`: handle inbound record batches,
        fire local rules, flush coalesced outgoing batches, keep timers."""
        tick = self.params.tick
        inbox = self.inbox
        out: List[Tuple[ProcId, Dict[str, Any]]] = []
        try:
            while not self._stopping:
                if self._paused:
                    # Crashed (fail-pause): hold all state, touch nothing.
                    await asyncio.sleep(tick)
                    continue
                # Drain the inbox *before* firing rules and timers: an ACK
                # that arrived while this task was starved of the event
                # loop must cancel a retransmission, not race it.
                drained = False
                now = 0.0
                while True:
                    try:
                        src, records = inbox.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if not drained:
                        drained = True
                        now = time.monotonic()
                    self._handle_batch(src, records, now, out)
                self._advance(out)
                if out:
                    await self._flush(out)
                if not drained:
                    try:
                        src, records = await asyncio.wait_for(inbox.get(), tick)
                    except asyncio.TimeoutError:
                        continue
                    self._handle_batch(src, records, time.monotonic(), out)
        except asyncio.CancelledError:
            pass

    async def _flush(self, out: List[Tuple[ProcId, Dict[str, Any]]]) -> None:
        """Group queued records by neighbor and ship them as batched
        frames (at most ``max_batch`` records each)."""
        max_batch = self.params.max_batch
        counters = self.counters
        if len(out) == 1:
            dst, rec = out[0]
            out.clear()
            counters["frames_out"] += 1
            counters["records_out"] += 1
            self.batch_sizes.append(1)
            await self.transport.send(self.pid, dst, (rec,))
            return
        batches: Dict[ProcId, List[Dict[str, Any]]] = {}
        for dst, rec in out:
            batches.setdefault(dst, []).append(rec)
        out.clear()
        for dst, recs in batches.items():
            for i in range(0, len(recs), max_batch):
                chunk = recs[i : i + max_batch]
                counters["frames_out"] += 1
                counters["records_out"] += len(chunk)
                self.batch_sizes.append(len(chunk))
                await self.transport.send(self.pid, dst, chunk)

    # -- wire handlers ---------------------------------------------------------

    def _handle_batch(
        self,
        src: ProcId,
        records,
        now: float,
        out: List[Tuple[ProcId, Dict[str, Any]]],
    ) -> None:
        for rec in records:
            try:
                kind = rec.get("k")
                if kind == DATA:
                    self._on_data(src, rec)
                elif kind == ACK:
                    self._on_ack(src, rec, now, out)
                elif kind == REL:
                    self._on_rel(src, rec, out)
                elif kind == RACK:
                    self._on_rack(src, rec)
                else:
                    self.counters["stale_records_dropped"] += 1
            except (KeyError, TypeError, AttributeError):
                self.counters["stale_records_dropped"] += 1

    def _in_lane(self, src: ProcId, d: DestId) -> _InLane:
        lane = self._in_lanes.get((src, d))
        if lane is None:
            lane = self._in_lanes[(src, d)] = _InLane()
        return lane

    def _on_data(self, src: ProcId, rec: Dict[str, Any]) -> None:
        d = rec["d"]
        seq = rec["s"]
        if not (isinstance(d, int) and 0 <= d < self.net.n):
            self.counters["stale_records_dropped"] += 1
            return
        key = (src, d)
        lane = self._in_lane(src, d)
        if seq <= lane.cum:
            # Retransmission (or transport duplicate) of something already
            # accepted: the repeat ACK is harmless and idempotent.
            self.counters["dup_data_acked"] += 1
            lane.ack_due = True
            self._ack_dirty.add(key)
        elif seq == lane.cum + 1:
            if len(lane.pending) + self.fwd.size(d) >= self.params.recv_queue:
                # Backpressure: stay silent, the sender's timer retries.
                self.counters["recv_backpressure"] += 1
                return
            lane.cum = seq
            lane.pending.append((seq, self._record_of(src, rec)))
            lane.coalesced += 1
            while lane.cum + 1 in lane.ooo:
                lane.cum += 1
                lane.pending.append((lane.cum, lane.ooo.pop(lane.cum)))
                lane.coalesced += 1
            lane.ack_due = True
            self._ack_dirty.add(key)
        elif seq <= lane.cum + MAX_WINDOW:
            # Accept the full SACK-bitmap width beyond cum (not just the
            # sender's configured window): SACK pops let the sender's new
            # sequence numbers run ahead of the cumulative frontier.
            if seq in lane.ooo:
                self.counters["dup_data_acked"] += 1
            elif (
                len(lane.ooo) + len(lane.pending) + self.fwd.size(d)
                >= self.params.recv_queue
            ):
                self.counters["recv_backpressure"] += 1
                return
            else:
                lane.ooo[seq] = self._record_of(src, rec)
                lane.coalesced += 1
            lane.ack_due = True
            self._ack_dirty.add(key)
        else:
            # Beyond the window: forged, wildly reordered, or stale.
            self.counters["stale_records_dropped"] += 1
            return
        self._apply_release(lane, d, rec["r"])

    def _record_of(self, src: ProcId, rec: Dict[str, Any]) -> RuntimeRecord:
        return RuntimeRecord(
            payload=rec.get("p"),
            uid=int(rec.get("u", 0)),
            valid=bool(rec.get("v", False)),
            src=src,
            seq=rec["s"],
        )

    def _apply_release(self, lane: _InLane, d: DestId, rel: int) -> None:
        """Commit every pending record the sender has erased (<= ``rel``) —
        rule R2's guard, now a cumulative watermark."""
        if rel <= lane.rel_cum:
            return
        effective = min(rel, lane.cum)
        if effective <= lane.rel_cum:
            return
        lane.rel_cum = effective
        pending = lane.pending
        if pending and pending[0][0] <= effective:
            fwd = self.fwd.ensure(d)
            while pending and pending[0][0] <= effective:
                fwd.append(pending.popleft()[1])
            self._active.add(d)

    def _on_ack(
        self,
        src: ProcId,
        rec: Dict[str, Any],
        now: float,
        out: List[Tuple[ProcId, Dict[str, Any]]],
    ) -> None:
        d = rec["d"]
        lane = self._out_lanes.get((src, d))
        if lane is None:
            return  # stale ACK for a lane we never opened
        cum = rec["c"]
        newly: List[int] = []
        for seq in lane.unacked:  # ascending: inserted in seq order
            if seq > cum:
                break
            newly.append(seq)
        bits = rec["b"]
        sacked_max = 0
        if bits:
            for seq in sack_seqs(cum, bits):
                sacked_max = seq
                if seq in lane.unacked:
                    newly.append(seq)
        if newly:
            for seq in newly:
                pending = lane.unacked.pop(seq)
                self.hop_latencies.append(now - pending.first_sent)
                if not pending.retx:
                    self._rtt_sample(lane, now - pending.first_sent)
        if cum > lane.cum_seen:
            lane.cum_seen = cum
            # Only *cumulative* progress restarts the retransmission timer:
            # a hole at the head must not be starved by SACKs for the
            # traffic flowing past it.
            lane.backoff = 1
            lane.attempts = 0
            lane.expiry = (now + lane.rto) if lane.unacked else None
        elif not lane.unacked:
            lane.expiry = None
        if sacked_max:
            # Fast retransmit: records the receiver SACKed around are holes.
            # Three strikes (dup-ack threshold), then resend without waiting
            # for the RTO — but give each resend one RTT to land first.
            grace = lane.srtt if lane.srtt is not None else lane.rto
            for seq, pending in lane.unacked.items():
                if seq >= sacked_max:
                    break
                pending.sack_skips += 1
                if pending.sack_skips >= 3 and now - pending.last_sent >= grace:
                    pending.sack_skips = 0
                    pending.retx = True
                    pending.last_sent = now
                    pending.rec["r"] = lane.rel_cum
                    out.append((lane.nbr, pending.rec))
                    self.counters["retries"] += 1
        if cum > lane.rel_cum:
            # R4, cumulative: everything <= cum is erased here, so the
            # release watermark may advance (piggybacked on the next DATA,
            # or announced standalone by the timer loop).
            lane.rel_cum = cum
        rel_seen = rec["r"]
        if rel_seen > lane.rel_confirmed:
            lane.rel_confirmed = rel_seen
            lane.rel_backoff = 1

    def _on_rel(
        self,
        src: ProcId,
        rec: Dict[str, Any],
        out: List[Tuple[ProcId, Dict[str, Any]]],
    ) -> None:
        d = rec["d"]
        if not (isinstance(d, int) and 0 <= d < self.net.n):
            self.counters["stale_records_dropped"] += 1
            return
        rel = rec["r"]
        lane = self._in_lanes.get((src, d))
        if lane is None or rel > lane.cum:
            # Release for records we never accepted: forged or reordered
            # across a reset.  Never confirm more than we applied.
            self.counters["stale_records_dropped"] += 1
            return
        self._apply_release(lane, d, rel)
        # Idempotent: a REL for an already-released level still RACKs.
        out.append((src, rack_rec(d, lane.rel_cum)))

    def _on_rack(self, src: ProcId, rec: Dict[str, Any]) -> None:
        lane = self._out_lanes.get((src, rec["d"]))
        if lane is None:
            return
        rel = rec["r"]
        if rel > lane.rel_confirmed:
            lane.rel_confirmed = rel
            lane.rel_backoff = 1

    # -- local rules -----------------------------------------------------------

    def _out_lane(self, nbr: ProcId, d: DestId) -> _OutLane:
        lane = self._out_lanes.get((nbr, d))
        if lane is None:
            lane = self._out_lanes[(nbr, d)] = _OutLane(
                nbr=nbr, dest=d, rto=self._rto_start
            )
        return lane

    def _advance(self, out: List[Tuple[ProcId, Dict[str, Any]]]) -> None:
        now = time.monotonic()
        if self._ack_dirty:
            self._emit_acks(out)
        if self._active:
            for d in list(self._active):
                fwd = self.fwd[d]
                box = self.outbox[d]
                if d == self.pid:
                    # R6: consume at the destination.
                    while fwd:
                        record = fwd.popleft()
                        self.counters["delivered"] += 1
                        self._append_event(
                            "delivered", record.uid, dest=d, valid=record.valid
                        )
                        if self._delivered_hook is not None:
                            self._delivered_hook()
                    self._active.discard(d)
                    self.fwd.evict(d)
                    continue
                lane = self._out_lane(self.routing.next_hop(self.pid, d), d)
                window = self._window
                unacked = lane.unacked
                # Two send gates: the in-flight window, and the receiver's
                # acceptance horizon (cum + MAX_WINDOW, the bitmap width).
                while (
                    len(unacked) < window
                    and lane.next_seq <= lane.cum_seen + MAX_WINDOW
                    and (fwd or box)
                ):
                    if fwd:
                        record = fwd.popleft()
                    else:
                        # R1: generate straight into the lane (born released).
                        payload = box.popleft()
                        uid = self._next_uid
                        self._next_uid += self.net.n
                        record = RuntimeRecord(
                            payload=payload, uid=uid, valid=True,
                            src=self.pid, seq=-1,
                        )
                        self.counters["generated"] += 1
                        self._append_event("generated", uid, dest=d)
                    # R3: pipeline into the window.
                    seq = lane.next_seq
                    lane.next_seq = seq + 1
                    rec = data_rec(
                        d, seq, record.uid, record.payload, record.valid,
                        lane.rel_cum,
                    )
                    unacked[seq] = _Pending(rec, now, now)
                    if lane.expiry is None:
                        lane.expiry = now + lane.rto
                    out.append((lane.nbr, rec))
                if not fwd and not box:
                    self._active.discard(d)
                    self.fwd.evict(d)
                    self.outbox.evict(d)
        self._timers(now, out)

    def _emit_acks(self, out: List[Tuple[ProcId, Dict[str, Any]]]) -> None:
        """One coalesced ACK per dirty lane: cumulative + SACK bitmap +
        the applied release level."""
        for key in self._ack_dirty:
            src, d = key
            lane = self._in_lanes[key]
            if not lane.ack_due:
                continue
            lane.ack_due = False
            bits = sack_bitmap(lane.cum, lane.ooo) if lane.ooo else 0
            out.append((src, ack_rec(d, lane.cum, bits, lane.rel_cum)))
            self.ack_coalesce.append(lane.coalesced)
            lane.coalesced = 0
        self._ack_dirty.clear()

    def _rtt_sample(self, lane: _OutLane, rtt: float) -> None:
        """RFC 6298: SRTT/RTTVAR smoothing, RTO clamped to the configured
        floor/ceiling.  Only never-retransmitted records sample (Karn)."""
        if lane.srtt is None:
            lane.srtt = rtt
            lane.rttvar = rtt / 2.0
        else:
            lane.rttvar = 0.75 * lane.rttvar + 0.25 * abs(lane.srtt - rtt)
            lane.srtt = 0.875 * lane.srtt + 0.125 * rtt
        # Smoothed estimators forget tail spikes quickly, but a cooperative
        # event loop stalls in bursts — keep a slowly decaying max so the
        # RTO stays above the recently observed worst case.
        lane.rtt_max = max(rtt, lane.rtt_max * 0.999)
        rto = max(
            lane.srtt + max(4.0 * lane.rttvar, self.params.tick),
            lane.rtt_max * 2.0,
        )
        lane.samples += 1
        if lane.samples < 64:
            # Warmup: the startup burst is the most contended stretch of
            # the whole run, and a handful of fast early samples must not
            # collapse the RTO before the lane has seen its tail.
            rto = max(rto, self._rto_start)
        lane.rto = min(max(rto, self._rto_floor), self._rto_ceil)
        self.rto_samples.append(lane.rto)

    def _timers(
        self, now: float, out: List[Tuple[ProcId, Dict[str, Any]]]
    ) -> None:
        params = self.params
        for lane in self._out_lanes.values():
            if lane.unacked:
                if lane.expiry is None or now < lane.expiry:
                    continue
                if params.max_attempts and lane.attempts >= params.max_attempts:
                    continue
                lane.attempts += 1
                if lane.backoff == 1:
                    # First expiry since the lane last made progress: this
                    # is far more often a scheduling stall than a loss, so
                    # probe with the head-of-line record only (tail-loss
                    # probe).  A real head loss is repaired by exactly this
                    # record; a spurious timeout costs one duplicate.
                    head = next(iter(lane.unacked))
                    resend = [lane.unacked[head]]
                else:
                    # Still no progress after the probe: assume the window
                    # is gone and retransmit everything old enough that an
                    # ACK for it should already have arrived.  (SACKed
                    # records were erased from ``unacked`` on arrival, so
                    # nothing is resent needlessly.)
                    resend = [
                        p
                        for p in lane.unacked.values()
                        if now - p.last_sent >= lane.rto
                    ]
                for pending in resend:
                    pending.retx = True
                    pending.last_sent = now
                    pending.rec["r"] = lane.rel_cum
                    out.append((lane.nbr, pending.rec))
                    self.counters["retries"] += 1
                lane.backoff = min(lane.backoff * 2, 64)
                lane.expiry = now + min(lane.rto * lane.backoff, self._rto_ceil)
            elif lane.rel_confirmed < lane.rel_cum:
                # Quiet lane with unconfirmed releases: standalone REL,
                # retransmitted on its own backed-off timer.
                if now < lane.rel_expiry:
                    continue
                out.append((lane.nbr, rel_rec(lane.dest, lane.rel_cum)))
                if lane.rel_sent == lane.rel_cum:
                    self.counters["retries"] += 1
                    lane.rel_backoff = min(lane.rel_backoff * 2, 64)
                else:
                    lane.rel_sent = lane.rel_cum
                    lane.rel_backoff = 1
                lane.rel_expiry = now + min(
                    lane.rto * lane.rel_backoff, self._rto_ceil
                )

    # -- events ----------------------------------------------------------------

    def _append_event(
        self, kind: str, uid: int, dest: DestId, valid: bool = True
    ) -> None:
        # Two clock domains, never mixed: ``t`` (wall) is for exported
        # report rows only; ``mono`` (CLOCK_MONOTONIC, shared by every
        # process on the machine) is what durations are computed from, so
        # an NTP step mid-run cannot skew the latency histograms.
        self.events.append(
            RuntimeEvent(
                kind=kind,
                uid=uid,
                node=self.pid,
                dest=dest,
                valid=valid,
                t=time.time(),
                order=self._event_order,
                mono=time.monotonic(),
            )
        )
        self._event_order += 1
