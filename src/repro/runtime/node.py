"""A live SSMFP node: the per-(processor, destination) rules on an event loop.

:class:`RuntimeNode` ports the two-buffer forwarding scheme (the state
model's rules R1-R6, via the message-passing translation of
:mod:`repro.messagepassing.forwarding`) onto asyncio, hardened for *real*
channels that may drop, duplicate, delay and reorder frames:

===========  ================================================================
state model  live runtime
===========  ================================================================
R1           ``generate(d)``: the head of the per-destination outbox enters
             the free reception buffer ``buf_r[d]`` (born released)
R2           ``commit(d)``: a *released* ``buf_r[d]`` moves to the free
             emission buffer ``buf_e[d]``
R3           ``DATA(d, seq, ...)`` to the next hop, retransmitted on a
             capped-exponential timer until the matching ``ACK`` arrives;
             the receiver accepts into ``buf_r[d]`` only the *expected*
             lane sequence number (stop-and-wait + dedup), re-ACKs the
             previous one (lost-ACK recovery), drops everything else
R4           on the ``ACK`` the sender erases ``buf_e[d]`` and emits
             ``REL``, retransmitted until the matching ``RACK``
R2's guard   the receiver marks ``buf_r[d]`` released only when the ``REL``
             arrives (so at most one live copy per hop, as in the paper)
R6           ``deliver()``: at the destination, ``buf_e[pid]`` is consumed
             and a delivery event is appended to the conformance log
===========  ================================================================

The sequence-number discipline is what upgrades best-effort transports to
exactly-once: a retransmitted or transport-duplicated ``DATA`` carries an
already-consumed ``seq`` and is answered with a (harmless, idempotent)
``ACK`` instead of a second acceptance.  The conformance harness
(:mod:`repro.runtime.conformance`) re-checks that claim from the event log
of every run.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.network.graph import Network
from repro.routing.table import RoutingService
from repro.runtime.conformance import RuntimeEvent
from repro.runtime.transport import InboxItem, Transport
from repro.runtime.wire import (
    ACK,
    DATA,
    RACK,
    REL,
    ack_msg,
    data_msg,
    kind_of,
    rack_msg,
    rel_msg,
)
from repro.types import DestId, ProcId


@dataclass
class RuntimeParams:
    """Timers of the hop protocol (seconds)."""

    tick: float = 0.01          #: event-loop heartbeat / stop-poll period
    retry_base: float = 0.05    #: first retransmit timeout
    retry_cap: float = 0.4      #: retransmit timeout ceiling
    max_attempts: int = 0       #: 0 = retry forever (drain deadline bounds it)


@dataclass
class RuntimeRecord:
    """One stored message (uid preserved across hops, as in the model)."""

    payload: Any
    uid: int
    valid: bool
    src: ProcId     #: who handed it to us (self for generated)
    seq: int        #: lane sequence it arrived under (-1 for generated)
    released: bool  #: the upstream copy is erased; commit allowed


#: Lane phases: awaiting the ACK for a DATA, or the RACK for a REL.
_DATA_WAIT, _REL_WAIT = "data", "rel"


@dataclass
class _Lane:
    """Outstanding hop transfer for one destination (stop-and-wait)."""

    nbr: ProcId
    seq: int
    phase: str
    frame: Dict[str, Any]
    first_sent: float
    last_sent: float
    attempts: int = 0


class RuntimeNode:
    """One live processor: protocol state, an inbox, and a run loop."""

    def __init__(
        self,
        pid: ProcId,
        net: Network,
        routing: RoutingService,
        transport: Transport,
        params: Optional[RuntimeParams] = None,
    ) -> None:
        self.pid = pid
        self.net = net
        self.routing = routing
        self.transport = transport
        self.params = params or RuntimeParams()
        n = net.n
        self.buf_r: List[Optional[RuntimeRecord]] = [None] * n
        self.buf_e: List[Optional[RuntimeRecord]] = [None] * n
        self.outbox: List[Deque[Tuple[Any, DestId]]] = [deque() for _ in range(n)]
        self._lanes: Dict[DestId, _Lane] = {}
        self._out_seq: Dict[Tuple[ProcId, DestId], int] = {}
        self._in_expected: Dict[Tuple[ProcId, DestId], int] = {}
        self.inbox: "asyncio.Queue[InboxItem]" = asyncio.Queue()
        transport.bind(pid, self.inbox)
        #: Conformance event log (generated / delivered), in node order.
        self.events: List[RuntimeEvent] = []
        self._event_order = 0
        self._next_uid = pid + 1  # stride n keeps uids globally unique
        self._stopping = False
        #: Plain counters; the cluster publishes them into the obs registry.
        self.counters: Dict[str, int] = {
            "generated": 0,
            "delivered": 0,
            "retries": 0,
            "frames_out": 0,
            "dup_data_acked": 0,
            "stale_frames_dropped": 0,
        }
        #: Hop round-trip latencies (DATA first sent -> ACK), seconds.
        self.hop_latencies: List[float] = []
        self._delivered_hook = None  # cluster progress callback

    # -- application interface -----------------------------------------------

    def submit(self, payload: Any, dest: DestId) -> None:
        """Queue an application send (FIFO per destination)."""
        if dest == self.pid:
            raise ValueError("self-addressed messages never enter the network")
        self.outbox[dest].append((payload, dest))

    def stop(self) -> None:
        """Ask the run loop to exit at the next heartbeat."""
        self._stopping = True

    def is_idle(self) -> bool:
        """True iff no buffer, outbox, lane or inbox item holds anything."""
        return (
            all(r is None for r in self.buf_r)
            and all(e is None for e in self.buf_e)
            and all(not q for q in self.outbox)
            and not self._lanes
            and self.inbox.empty()
        )

    def in_flight(self) -> int:
        """Lanes currently awaiting an ACK or RACK."""
        return len(self._lanes)

    # -- run loop ------------------------------------------------------------

    async def run(self) -> None:
        """Drive the node until :meth:`stop`: handle inbound frames, fire
        local rules, retransmit on timeout."""
        tick = self.params.tick
        out: List[Tuple[ProcId, Dict[str, Any]]] = []
        try:
            while not self._stopping:
                self._advance(out)
                await self._flush(out)
                try:
                    src, msg = await asyncio.wait_for(self.inbox.get(), tick)
                except asyncio.TimeoutError:
                    continue
                self._handle(src, msg, out)
                # Drain the burst that arrived while we slept.
                while True:
                    try:
                        src, msg = self.inbox.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    self._handle(src, msg, out)
        except asyncio.CancelledError:
            pass

    async def _flush(self, out: List[Tuple[ProcId, Dict[str, Any]]]) -> None:
        if not out:
            return
        for dst, msg in out:
            self.counters["frames_out"] += 1
            await self.transport.send(self.pid, dst, msg)
        out.clear()

    # -- wire handlers ---------------------------------------------------------

    def _handle(
        self, src: ProcId, msg: Dict[str, Any],
        out: List[Tuple[ProcId, Dict[str, Any]]],
    ) -> None:
        kind = kind_of(msg)
        if kind is None:
            self.counters["stale_frames_dropped"] += 1
            return
        try:
            d = int(msg["d"])
            seq = int(msg["s"])
        except (KeyError, TypeError, ValueError):
            self.counters["stale_frames_dropped"] += 1
            return
        if not 0 <= d < self.net.n:
            self.counters["stale_frames_dropped"] += 1
            return
        if kind == DATA:
            self._on_data(src, d, seq, msg, out)
        elif kind == ACK:
            self._on_ack(src, d, seq, out)
        elif kind == REL:
            self._on_rel(src, d, seq, out)
        else:  # RACK
            self._on_rack(src, d, seq)

    def _on_data(
        self, src: ProcId, d: DestId, seq: int, msg: Dict[str, Any],
        out: List[Tuple[ProcId, Dict[str, Any]]],
    ) -> None:
        expected = self._in_expected.get((src, d), 1)
        if seq == expected:
            if self.buf_r[d] is None:
                self.buf_r[d] = RuntimeRecord(
                    payload=msg.get("p"),
                    uid=int(msg.get("u", 0)),
                    valid=bool(msg.get("v", False)),
                    src=src,
                    seq=seq,
                    released=False,
                )
                self._in_expected[(src, d)] = expected + 1
                out.append((src, ack_msg(d, seq)))
            # else: buffer busy — stay silent, the sender's timer retries.
        elif seq == expected - 1:
            # Retransmission (or transport duplicate) of the accepted
            # message: the acceptance already happened, re-ACK idempotently.
            self.counters["dup_data_acked"] += 1
            out.append((src, ack_msg(d, seq)))
        else:
            self.counters["stale_frames_dropped"] += 1

    def _on_ack(
        self, src: ProcId, d: DestId, seq: int,
        out: List[Tuple[ProcId, Dict[str, Any]]],
    ) -> None:
        lane = self._lanes.get(d)
        if (
            lane is None
            or lane.phase != _DATA_WAIT
            or lane.nbr != src
            or lane.seq != seq
        ):
            return  # duplicate/stale ACK
        self.hop_latencies.append(time.monotonic() - lane.first_sent)
        self.buf_e[d] = None  # R4: erase our copy
        now = time.monotonic()
        lane.phase = _REL_WAIT
        lane.frame = rel_msg(d, seq)
        lane.first_sent = now
        lane.last_sent = now
        lane.attempts = 0
        out.append((src, lane.frame))

    def _on_rel(
        self, src: ProcId, d: DestId, seq: int,
        out: List[Tuple[ProcId, Dict[str, Any]]],
    ) -> None:
        if seq >= self._in_expected.get((src, d), 1):
            self.counters["stale_frames_dropped"] += 1
            return  # REL for a DATA we never accepted: forged or reordered
        rec = self.buf_r[d]
        if rec is not None and rec.src == src and rec.seq == seq:
            rec.released = True
        # Idempotent: a REL for an already-committed record still RACKs.
        out.append((src, rack_msg(d, seq)))

    def _on_rack(self, src: ProcId, d: DestId, seq: int) -> None:
        lane = self._lanes.get(d)
        if (
            lane is not None
            and lane.phase == _REL_WAIT
            and lane.nbr == src
            and lane.seq == seq
        ):
            del self._lanes[d]  # lane free: next message may go out

    # -- local rules -----------------------------------------------------------

    def _advance(self, out: List[Tuple[ProcId, Dict[str, Any]]]) -> None:
        now = time.monotonic()
        for d in range(self.net.n):
            rec = self.buf_r[d]
            # R1: generate into a free reception buffer (born released).
            if rec is None and self.outbox[d]:
                payload, _ = self.outbox[d].popleft()
                uid = self._next_uid
                self._next_uid += self.net.n
                rec = self.buf_r[d] = RuntimeRecord(
                    payload=payload, uid=uid, valid=True,
                    src=self.pid, seq=-1, released=True,
                )
                self.counters["generated"] += 1
                self._append_event("generated", uid, dest=d)
            # R2: commit a released reception buffer to a free emission one.
            if rec is not None and rec.released and self.buf_e[d] is None:
                self.buf_e[d] = rec
                self.buf_r[d] = None
            held = self.buf_e[d]
            if held is None:
                continue
            if d == self.pid:
                # R6: consume at the destination.
                self.buf_e[d] = None
                self.counters["delivered"] += 1
                self._append_event("delivered", held.uid, dest=d, valid=held.valid)
                if self._delivered_hook is not None:
                    self._delivered_hook()
            elif d not in self._lanes:
                # R3: offer to the next hop, stop-and-wait per destination.
                nbr = self.routing.next_hop(self.pid, d)
                seq = self._out_seq.get((nbr, d), 1)
                self._out_seq[(nbr, d)] = seq + 1
                frame = data_msg(d, seq, held.uid, held.payload, held.valid)
                self._lanes[d] = _Lane(
                    nbr=nbr, seq=seq, phase=_DATA_WAIT, frame=frame,
                    first_sent=now, last_sent=now,
                )
                out.append((nbr, frame))
        self._retransmit(now, out)

    def _retransmit(
        self, now: float, out: List[Tuple[ProcId, Dict[str, Any]]]
    ) -> None:
        params = self.params
        for lane in self._lanes.values():
            timeout = min(
                params.retry_base * (2 ** lane.attempts), params.retry_cap
            )
            if now - lane.last_sent < timeout:
                continue
            if params.max_attempts and lane.attempts >= params.max_attempts:
                continue
            lane.last_sent = now
            lane.attempts += 1
            self.counters["retries"] += 1
            out.append((lane.nbr, lane.frame))

    # -- events ----------------------------------------------------------------

    def _append_event(
        self, kind: str, uid: int, dest: DestId, valid: bool = True
    ) -> None:
        self.events.append(
            RuntimeEvent(
                kind=kind,
                uid=uid,
                node=self.pid,
                dest=dest,
                valid=valid,
                t=time.time(),
                order=self._event_order,
            )
        )
        self._event_order += 1
