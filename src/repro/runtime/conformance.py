"""Conformance: checking a live run against the paper's specification.

A live run is not deterministic — asyncio scheduling, OS timers and real
sockets see to that — so unlike the state-model verifiers we cannot replay
it bit for bit.  What we *can* do is record every generate/deliver event
and check the properties the specification SP demands of any execution:

* **SP-2 / exactly-once** — every valid generated message is delivered at
  its destination, and only once.  Retrying senders and duplicating
  transports make "only once" a real claim: one deduplication bug and the
  oracle sees a double delivery.
* **No phantoms** — nothing is delivered that was never generated.
* **Sequence consistency** — for each (source, destination) pair,
  deliveries occur in generation order (the per-destination lanes are
  FIFO, so the runtime must preserve per-pair order end to end).

The oracle reuses :class:`~repro.core.ledger.DeliveryLedger` in non-strict
mode — the exact same accounting the state-model engine trusts — so the
simulated and live execution paths are judged by one specification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.ledger import DeliveryLedger
from repro.statemodel.message import Message
from repro.types import DestId, ProcId


@dataclass(frozen=True)
class RuntimeEvent:
    """One conformance event from a live node.

    ``order`` is the node-local event index: events of one node are totally
    ordered, which is all sequence consistency needs (generations order at
    the source, deliveries order at the destination).  Two timestamps, two
    jobs: ``t`` is a wall-clock stamp for human-readable report rows only;
    ``mono`` is ``time.monotonic()`` (CLOCK_MONOTONIC — comparable across
    processes on one machine) and is the *only* stamp durations may be
    computed from — a wall-clock step (NTP, manual adjustment) between two
    events must never skew a latency metric.  Neither is used for
    correctness.  ``mono == 0.0`` marks an event from a source that does
    not stamp monotonic time (synthetic test events); duration metrics
    skip such pairs.
    """

    kind: str       #: "generated" | "delivered"
    uid: int
    node: ProcId    #: source for generations, destination for deliveries
    dest: DestId
    valid: bool
    t: float        #: wall clock — for exported rows, never for durations
    order: int
    mono: float = 0.0  #: monotonic clock — the duration domain


@dataclass
class ConformanceReport:
    """The verdict over one live run's event log."""

    generated: int = 0
    delivered: int = 0
    invalid_delivered: int = 0
    duplicates: int = 0
    undelivered: List[int] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    sequence_violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff the run satisfies every checked property."""
        return (
            not self.violations
            and not self.sequence_violations
            and not self.undelivered
            and self.duplicates == 0
        )

    def summary(self) -> str:
        """Human-readable verdict."""
        lines = [
            f"conformance: generated={self.generated} "
            f"delivered={self.delivered} duplicates={self.duplicates} "
            f"undelivered={len(self.undelivered)} "
            f"invalid_delivered={self.invalid_delivered}"
        ]
        for text in self.violations[:20]:
            lines.append(f"  VIOLATION {text}")
        for text in self.sequence_violations[:20]:
            lines.append(f"  SEQUENCE  {text}")
        hidden = (
            len(self.violations) + len(self.sequence_violations) - 40
        )
        if hidden > 0:
            lines.append(f"  ... {hidden} more")
        if self.undelivered:
            shown = ", ".join(str(u) for u in self.undelivered[:10])
            more = "" if len(self.undelivered) <= 10 else ", ..."
            lines.append(f"  UNDELIVERED uids: {shown}{more}")
        lines.append("verdict: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def _as_message(event: RuntimeEvent, source: Optional[ProcId]) -> Message:
    return Message(
        payload=None,
        last=event.node,
        color=0,
        dest=event.dest,
        uid=event.uid,
        valid=event.valid,
        source=source,
        born_step=0,
    )


def check_events(
    events: Iterable[RuntimeEvent],
    expect_generated: Optional[int] = None,
) -> ConformanceReport:
    """Judge a run's event log; see the module docstring for the claims.

    ``expect_generated``, when given, additionally checks that the run
    generated exactly that many messages (a soak that silently failed to
    submit its workload must not pass vacuously).
    """
    # Node-local order is the only order that exists (there is no global
    # clock in a live run); the ledger only needs generations known before
    # deliveries, so feed the two kinds in separate passes.
    ordered = sorted(events, key=lambda e: (e.node, e.order))
    report = ConformanceReport()
    ledger = DeliveryLedger(strict=False)
    delivered_seen: Dict[int, int] = {}
    per_pair_generated: Dict[Tuple[ProcId, DestId], List[int]] = {}
    per_dest_delivered: Dict[DestId, List[int]] = {}
    gen_source: Dict[int, ProcId] = {}
    for event in ordered:
        if event.kind == "generated":
            report.generated += 1
            gen_source[event.uid] = event.node
            per_pair_generated.setdefault((event.node, event.dest), []).append(
                event.uid
            )
            ledger.record_generated(_as_message(event, source=event.node))
    for event in ordered:
        if event.kind == "delivered":
            if not event.valid:
                report.invalid_delivered += 1
                continue
            report.delivered += 1
            delivered_seen[event.uid] = delivered_seen.get(event.uid, 0) + 1
            per_dest_delivered.setdefault(event.node, []).append(event.uid)
            ledger.record_delivery(
                event.node, _as_message(event, source=None), step=event.order
            )
        elif event.kind != "generated":
            report.violations.append(f"unknown event kind {event.kind!r}")
    report.duplicates = sum(c - 1 for c in delivered_seen.values() if c > 1)
    report.violations.extend(ledger.violations)
    report.undelivered = sorted(ledger.outstanding_uids())
    if expect_generated is not None and report.generated != expect_generated:
        report.violations.append(
            f"generated {report.generated} messages, expected {expect_generated}"
        )
    _check_sequences(report, per_pair_generated, per_dest_delivered, gen_source)
    return report


def _check_sequences(
    report: ConformanceReport,
    per_pair_generated: Dict[Tuple[ProcId, DestId], List[int]],
    per_dest_delivered: Dict[DestId, List[int]],
    gen_source: Dict[int, ProcId],
) -> None:
    """Per (source, dest) pair: the delivered subsequence must equal a
    prefix-closed subsequence of the generation order (FIFO lanes)."""
    for dest, uids in per_dest_delivered.items():
        # Project the destination's delivery order onto each source.
        per_source: Dict[ProcId, List[int]] = {}
        for uid in uids:
            source = gen_source.get(uid)
            if source is None:
                continue  # phantom: already flagged by the ledger
            per_source.setdefault(source, []).append(uid)
        for source, got in per_source.items():
            expected = [
                uid
                for uid in per_pair_generated.get((source, dest), [])
                if uid in set(got)
            ]
            if got != expected:
                report.sequence_violations.append(
                    f"pair {source}->{dest}: delivered order {got[:12]} != "
                    f"generation order {expected[:12]}"
                )
