"""Network emulation: a fault-injecting transport decorator.

:class:`NetemTransport` wraps any :class:`~repro.runtime.transport.Transport`
and perturbs its ``send`` path with seeded faults — the live-runtime
counterpart of the state model's adversarial daemon:

Faults are drawn **per record**, not per frame: batching many DATA/ACK
records into one frame must not weaken the adversary, so every record in
a batch gets its own independent loss/dup/reorder/latency draws.  The
records that survive with no delay are re-batched and forwarded in one
``base.send``; each delayed record travels as its own single-record frame
(which is exactly how it reorders against the rest of the batch).

* **latency** — each record is delayed by a uniform draw from
  ``latency=(lo, hi)`` seconds; unequal delays reorder records naturally;
* **loss** — a record is dropped with probability ``loss``;
* **duplication** — with probability ``dup`` a record is delivered twice,
  each copy with an independent delay;
* **reordering** — with probability ``reorder`` a record is additionally
  held for ``reorder_extra`` seconds, pushing it behind later traffic;
* **link flaps** — every ``flap_period`` seconds one random edge goes down
  for ``flap_down`` seconds (records on a down edge are dropped);
* **partitions** — ``blocked_edges`` silences a static set of undirected
  edges for the whole run.

All randomness comes from one ``random.Random(seed)``, so a scenario is
reproducible up to asyncio scheduling.  The hop protocol of
:mod:`repro.runtime.node` must deliver exactly once *despite* all of the
above — that is precisely what the conformance harness checks.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.runtime.transport import Transport
from repro.types import Edge, ProcId, normalized_edge

#: Every key :meth:`NetemConfig.from_spec` understands — anything else in a
#: spec is rejected, so a typo ("los") cannot silently become a no-op run.
NETEM_SPEC_KEYS = (
    "loss",
    "dup",
    "reorder",
    "reorder_extra",
    "latency",
    "flap_period",
    "flap_down",
    "blocked_edges",
)


@dataclass(frozen=True)
class NetemConfig:
    """Fault-injection knobs (all off by default)."""

    loss: float = 0.0
    dup: float = 0.0
    reorder: float = 0.0
    latency: Tuple[float, float] = (0.0, 0.0)
    reorder_extra: float = 0.01
    flap_period: Optional[float] = None
    flap_down: float = 0.05
    blocked_edges: FrozenSet[Edge] = field(default_factory=frozenset)

    def is_noop(self) -> bool:
        """True iff this configuration perturbs nothing."""
        return (
            self.loss == 0.0
            and self.dup == 0.0
            and self.reorder == 0.0
            and self.latency == (0.0, 0.0)
            and self.flap_period is None
            and not self.blocked_edges
        )

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "NetemConfig":
        """Build from a plain dict (CLI / JSON spec form).

        Unknown keys are rejected: netem specs configure an *adversary*,
        and a misspelled knob that silently does nothing would make a
        chaos run vacuously green.
        """
        unknown = sorted(set(spec) - set(NETEM_SPEC_KEYS))
        if unknown:
            raise ConfigurationError(
                f"unknown netem key(s) {unknown}; "
                f"valid keys: {sorted(NETEM_SPEC_KEYS)}"
            )
        kwargs: Dict[str, Any] = {}
        for key in ("loss", "dup", "reorder", "reorder_extra", "flap_down"):
            if key in spec:
                kwargs[key] = float(spec[key])
        if "latency" in spec:
            lo, hi = spec["latency"]
            kwargs["latency"] = (float(lo), float(hi))
        if spec.get("flap_period") is not None:
            kwargs["flap_period"] = float(spec["flap_period"])
        if "blocked_edges" in spec:
            kwargs["blocked_edges"] = frozenset(
                normalized_edge(int(u), int(v)) for u, v in spec["blocked_edges"]
            )
        return cls(**kwargs)


class NetemTransport(Transport):
    """Decorates a transport with seeded fault injection.

    The decorator shares the wrapped transport's network and inbox
    registry, so nodes bind to the *decorator* and never see the base.
    """

    def __init__(self, base: Transport, config: NetemConfig, seed: int = 0) -> None:
        super().__init__(base.net, wire_version=base.wire_version)
        self.base = base
        # Version mismatches are detected by the base transport's receive
        # path; share the list so the cluster sees them on the decorator.
        self.protocol_errors = base.protocol_errors
        self.config = config
        self._rng = random.Random(seed)
        self._down: Set[Edge] = set(config.blocked_edges)
        self._pending: Set["asyncio.Task"] = set()
        self._flap_task: Optional["asyncio.Task"] = None
        self._closing = False
        #: Fault accounting, exported next to the base transport's stats.
        self.fault_stats: Dict[str, int] = {
            "netem_dropped": 0,
            "netem_duplicated": 0,
            "netem_reordered": 0,
            "netem_flaps": 0,
        }
        #: Timeline of discrete fault transitions (flaps, forced edge
        #: state, reconfigurations) — mono+wall stamped so the obs layer
        #: can correlate them with message-latency spikes.
        self.fault_events: List[Dict[str, Any]] = []

    def _log_fault(self, action: str, **detail: Any) -> None:
        self.fault_events.append(
            {"mono": time.monotonic(), "t": time.time(), "action": action, **detail}
        )

    # -- live chaos hooks ----------------------------------------------------

    def force_down(self, u: ProcId, v: ProcId) -> None:
        """Take one undirected edge down until :meth:`force_up` — the
        scenario driver's partition/flap primitive."""
        edge = normalized_edge(u, v)
        if edge not in self._down:
            self._down.add(edge)
            self.fault_stats["netem_flaps"] += 1
            self._log_fault("link_down", edge=list(edge))

    def force_up(self, u: ProcId, v: ProcId) -> None:
        """Bring a forced-down edge back (statically blocked edges stay
        down: the config is the floor, chaos only adds on top)."""
        edge = normalized_edge(u, v)
        if edge in self.config.blocked_edges:
            return
        if edge in self._down:
            self._down.discard(edge)
            self._log_fault("link_up", edge=list(edge))

    def reconfigure(self, config: NetemConfig) -> None:
        """Swap the fault knobs mid-run (scenario ``netem`` action).

        Loss/dup/reorder/latency draws pick up the new values on the next
        record; the periodic flap task re-reads ``self.config`` each cycle.
        Statically blocked edges of the old/new configs are re-based while
        chaos-forced edges are left alone.
        """
        old = self.config
        self.config = config
        for edge in old.blocked_edges - config.blocked_edges:
            self._down.discard(edge)
        for edge in config.blocked_edges - old.blocked_edges:
            self._down.add(edge)
        self._log_fault(
            "netem_change",
            loss=config.loss,
            dup=config.dup,
            reorder=config.reorder,
            latency=list(config.latency),
        )

    # Nodes bind to the decorator; forward inboxes to the base so its
    # receive path (TCP servers) can still dispatch.
    def bind(self, pid: ProcId, inbox) -> None:  # type: ignore[override]
        super().bind(pid, inbox)
        self.base.bind(pid, inbox)

    async def start(self) -> None:
        await self.base.start()
        if self.config.flap_period is not None:
            self._flap_task = asyncio.get_running_loop().create_task(self._flap())

    async def close(self) -> None:
        self._closing = True
        if self._flap_task is not None:
            self._flap_task.cancel()
            try:
                await self._flap_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        for task in list(self._pending):
            task.cancel()
        for task in list(self._pending):
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._pending.clear()
        await self.base.close()

    # -- fault pipeline ------------------------------------------------------

    async def send(
        self, src: ProcId, dst: ProcId, records: Sequence[Dict[str, Any]]
    ) -> None:
        self._check_edge(src, dst)
        cfg = self.config
        rng = self._rng
        if normalized_edge(src, dst) in self._down:
            self.fault_stats["netem_dropped"] += len(records)
            return
        # Per-record fault draws: the batch is torn apart, each record
        # faulted independently, and the undelayed survivors re-batched.
        now_batch: List[Dict[str, Any]] = []
        for rec in records:
            if cfg.loss and rng.random() < cfg.loss:
                self.fault_stats["netem_dropped"] += 1
                continue
            copies = 1
            if cfg.dup and rng.random() < cfg.dup:
                copies = 2
                self.fault_stats["netem_duplicated"] += 1
            for _ in range(copies):
                delay = (
                    rng.uniform(*cfg.latency)
                    if cfg.latency != (0.0, 0.0)
                    else 0.0
                )
                if cfg.reorder and rng.random() < cfg.reorder:
                    delay += cfg.reorder_extra
                    self.fault_stats["netem_reordered"] += 1
                if delay <= 0.0:
                    now_batch.append(rec)
                else:
                    task = asyncio.get_running_loop().create_task(
                        self._deliver_later(delay, src, dst, rec)
                    )
                    self._pending.add(task)
                    task.add_done_callback(self._pending.discard)
        if now_batch:
            await self.base.send(src, dst, now_batch)

    async def _deliver_later(
        self, delay: float, src: ProcId, dst: ProcId, rec: Dict[str, Any]
    ) -> None:
        try:
            await asyncio.sleep(delay)
            if not self._closing:
                await self.base.send(src, dst, [rec])
        except asyncio.CancelledError:
            pass

    async def _flap(self) -> None:
        """Every ``flap_period`` seconds take one random (non-statically-
        blocked) edge down for ``flap_down`` seconds.  ``self.config`` is
        re-read each cycle so :meth:`reconfigure` changes take effect."""
        try:
            while True:
                cfg = self.config
                await asyncio.sleep(cfg.flap_period or 0.05)
                cfg = self.config
                candidates = [
                    e for e in self.net.edges if e not in cfg.blocked_edges
                ]
                if not candidates:
                    continue
                edge = self._rng.choice(candidates)
                self._down.add(edge)
                self.fault_stats["netem_flaps"] += 1
                self._log_fault("flap_down", edge=list(edge))
                await asyncio.sleep(cfg.flap_down)
                self._down.discard(edge)
                self._log_fault("flap_up", edge=list(edge))
        except asyncio.CancelledError:
            pass
