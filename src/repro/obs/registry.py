"""The metrics registry: counters, gauges and histograms.

``repro.obs`` is the structured observability layer: where the ledger and
the trace recorder capture *what happened* in one execution, the registry
captures *how much and how expensive* — per-rule/per-protocol execution
counts and wall-time, guard-evaluation counts, round and neutralization
events — as named, labeled instruments that export to schema-versioned
JSONL rows (:mod:`repro.obs.export`).

Instrumentation is strictly opt-in.  The :class:`Simulator` takes an
optional registry and guards every record with a single ``is not None``
check, so a run without a registry pays nothing; :class:`NullRegistry`
additionally lets library code hold a registry-shaped object
unconditionally and still do no work (the same trick as the trace
recorder's ``kinds`` gate).

Histograms use the repo's exact nearest-rank percentiles
(:func:`repro.sim.stats.summarize`) — no new numeric dependencies.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

#: Version tag stamped on every exported row; bump on breaking changes.
SCHEMA = "repro.obs/v1"

#: Canonical (sorted) label form used as part of instrument keys.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value (int or float — wall-clock
    accumulators are counters too)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative to stay a counter)."""
        self.value += amount


class Gauge:
    """A point-in-time value, overwritten on every set."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """A sample distribution summarized by nearest-rank percentiles.

    Keeps every observation (runs that enable observability are
    measurement runs); ``summary()`` is computed on demand.
    """

    __slots__ = ("samples",)

    def __init__(self) -> None:
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.samples.append(value)

    def summary(self) -> Dict[str, float]:
        """min/p50/p90/p99/max/mean/n of the sample (``{"n": 0}`` empty)."""
        from repro.sim.stats import summarize

        return summarize(self.samples)


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for :class:`NullRegistry`."""

    __slots__ = ()
    value = 0
    samples: List[float] = []

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def summary(self) -> Dict[str, float]:
        return {"n": 0}


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named, labeled instruments with JSONL export.

    Instruments are created on first use and shared thereafter:
    ``registry.counter("rule_executions", protocol=proto.name, rule="R2")``
    always returns the same :class:`Counter` for the same name/labels
    (label by the protocol's ``name`` attribute, never a hardcoded string,
    so family members stay distinguishable in exported artifacts).
    Hot paths should hold the returned instrument instead of re-resolving
    it every event.
    """

    #: False only on :class:`NullRegistry`; producers may skip expensive
    #: derivations (timing calls, dict builds) when the registry is off.
    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # -- instrument access -------------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        """Get or create the counter ``name{labels}``."""
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Get or create the gauge ``name{labels}``."""
        key = (name, _label_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str, **labels: object) -> Histogram:
        """Get or create the histogram ``name{labels}``."""
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram()
        return inst

    # -- one-shot conveniences ---------------------------------------------------

    def inc(self, name: str, amount: float = 1, **labels: object) -> None:
        """Increment the counter ``name{labels}`` by ``amount``."""
        self.counter(name, **labels).inc(amount)

    def set(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge ``name{labels}``."""
        self.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Add one observation to the histogram ``name{labels}``."""
        self.histogram(name, **labels).observe(value)

    # -- queries -----------------------------------------------------------------

    def value(self, name: str, **labels: object) -> Optional[float]:
        """Current value of a counter or gauge, None if never touched."""
        key = (name, _label_key(labels))
        inst = self._counters.get(key) or self._gauges.get(key)
        return None if inst is None else inst.value

    def counters(self) -> Iterator[Tuple[str, Dict[str, str], float]]:
        """Yield ``(name, labels, value)`` for every counter, sorted."""
        for (name, labels), inst in sorted(self._counters.items()):
            yield name, dict(labels), inst.value

    # -- export ------------------------------------------------------------------

    def rows(self) -> List[Dict[str, object]]:
        """Every instrument as a schema-versioned JSONL-ready row."""
        out: List[Dict[str, object]] = []
        for (name, labels), counter in sorted(self._counters.items()):
            out.append(
                {
                    "schema": SCHEMA,
                    "kind": "metric",
                    "type": "counter",
                    "metric": name,
                    "labels": dict(labels),
                    "value": counter.value,
                }
            )
        for (name, labels), gauge in sorted(self._gauges.items()):
            out.append(
                {
                    "schema": SCHEMA,
                    "kind": "metric",
                    "type": "gauge",
                    "metric": name,
                    "labels": dict(labels),
                    "value": gauge.value,
                }
            )
        for (name, labels), hist in sorted(self._histograms.items()):
            row: Dict[str, object] = {
                "schema": SCHEMA,
                "kind": "metric",
                "type": "histogram",
                "metric": name,
                "labels": dict(labels),
            }
            row.update(hist.summary())
            out.append(row)
        return out

    def clear(self) -> None:
        """Drop every instrument (fresh registry for the next run)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class NullRegistry(MetricsRegistry):
    """A registry that records nothing and allocates nothing.

    Every instrument accessor returns one shared no-op object, so code can
    be written unconditionally against a registry and still cost only the
    (inlined) method dispatch when observability is off.
    """

    enabled = False

    def counter(self, name: str, **labels: object):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: object):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: object):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def rows(self) -> List[Dict[str, object]]:
        return []


#: Shared process-wide null registry.
NULL_REGISTRY = NullRegistry()
