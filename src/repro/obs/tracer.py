"""Per-message lifecycle tracing: the Figure-3 story for every message.

The paper's worked execution (Figure 3) follows one message hop by hop
through the two-buffer graph: generated into ``bufR`` by R1, moved to
``bufE`` by R2, copied downstream by R3, the original erased by R4, and
finally consumed by R6 at the destination.  :class:`MessageTracer` records
exactly that causal timeline for *every* valid message of a run, keyed by
the hidden uid, with step and round stamps on every event.

The tracer is a pure subscriber: it attaches to an assembled
:class:`~repro.sim.runner.Simulation` through the hooks the incremental
engine already established —

* the :class:`~repro.core.ledger.DeliveryLedger` observer stream
  (``generated`` / ``delivered`` / ``lost``),
* the :class:`~repro.core.buffers.ForwardingBuffers` write notifier
  (chained after the forwarding protocol's own dirty-set hook, never
  replacing it),
* the :class:`~repro.app.higher_layer.HigherLayer` submit notifier.

Nothing in the protocol or the engine knows the tracer exists; a run
without one pays zero cost.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs.registry import SCHEMA

#: Display/sort priority of event kinds sharing a step: causal order of
#: one atomic step (a generation's ledger event precedes its bufR write
#: even though the callbacks fire in the opposite order).
_KIND_ORDER = {
    "submit": 0,
    "generated": 1,
    "buffer": 2,
    "cleared": 3,
    "delivered": 4,
    "lost": 5,
}


@dataclass(frozen=True)
class LifecycleEvent:
    """One stop on a message's causal timeline.

    ``kind`` is one of ``submit`` (handed to the higher layer),
    ``generated`` (rule R1), ``buffer`` (a copy appeared in
    ``buf<buffer>_proc(dest)``), ``cleared`` (that copy was erased — R4's
    release, R5's duplicate cleanup, or R6's consumption), ``delivered``
    (rule R6 handed it up) and ``lost`` (a baseline/ablation erased the
    last copy).
    """

    step: int
    round: int
    kind: str
    dest: Optional[int] = None
    proc: Optional[int] = None
    buffer: Optional[str] = None
    info: Dict[str, Any] = field(default_factory=dict)


class MessageTracer:
    """Records hop-by-hop lifecycles of messages, keyed by hidden uid.

    Parameters
    ----------
    include_invalid:
        Also trace invalid messages (negative uids — the pre-planted
        garbage of an arbitrary initial configuration).  Off by default:
        the valid traffic is the Figure-3 story.
    """

    def __init__(self, include_invalid: bool = False) -> None:
        self.include_invalid = include_invalid
        self._events: Dict[int, List[Tuple[int, int, int, LifecycleEvent]]] = {}
        self._seq = 0
        #: Per-source queue of submissions not yet matched to a generation.
        self._pending_submits: Dict[int, Deque[Tuple[int, int, Any, int]]] = {}
        self._slots: Dict[Tuple[int, int, str], int] = {}
        self._sim = None
        self._bufs = None
        #: The attached forwarding protocol's ``name`` (stamped on rows).
        self._protocol = None
        #: Fault injections stamped into the timeline (scenario drivers and
        #: :class:`~repro.sim.faults.RoutingFaultInjector` call
        #: :meth:`record_fault`), exported as ``fault_event`` rows.
        self._faults: List[Dict[str, Any]] = []

    # -- attachment --------------------------------------------------------------

    def attach(self, simulation) -> "MessageTracer":
        """Subscribe to a :class:`~repro.sim.runner.Simulation`'s hooks.

        Chains behind any hooks already installed (notably the forwarding
        protocol's own incremental-engine notifiers).  Baselines without
        family-style buffers still get the ledger-level lifecycle
        (generated / delivered / lost), just no per-buffer hops.  The
        forwarding protocol's ``name`` is captured here and stamped on
        every exported row, so arena artifacts stay distinguishable per
        protocol.
        """
        if self._sim is not None:
            raise RuntimeError("tracer is already attached to a simulation")
        self._sim = simulation.sim
        self._protocol = getattr(simulation.forwarding, "name", None)
        simulation.ledger.add_observer(self._on_ledger_event)
        hl = getattr(simulation, "hl", None)
        if hl is not None and hasattr(hl, "bind_submit_notifier"):
            hl.bind_submit_notifier(self._on_submit)
        bufs = getattr(simulation.forwarding, "bufs", None)
        if bufs is not None and hasattr(bufs, "add_notifier"):
            self._bufs = bufs
            bufs.add_notifier(self._on_buffer_write)
        return self

    @property
    def attached(self) -> bool:
        """True once :meth:`attach` ran."""
        return self._sim is not None

    # -- stamps ------------------------------------------------------------------

    def _stamp(self) -> Tuple[int, int]:
        """(step, current 1-based round) at this instant."""
        sim = self._sim
        if sim is None:
            return (-1, 0)
        return (sim.step_count, sim.round_count + 1)

    def _append(self, uid: int, event: LifecycleEvent) -> None:
        self._seq += 1
        self._events.setdefault(uid, []).append(
            (event.step, _KIND_ORDER.get(event.kind, 9), self._seq, event)
        )

    def _wants(self, uid: int) -> bool:
        return uid > 0 or self.include_invalid

    # -- subscription sinks ------------------------------------------------------

    def _on_submit(self, p: int, payload: Any, dest: int, step: int) -> None:
        """A higher-layer submission (uid not assigned yet — held until the
        matching R1 generation claims it; outboxes are FIFO per source)."""
        _, rnd = self._stamp()
        self._pending_submits.setdefault(p, deque()).append(
            (step, rnd, payload, dest)
        )

    def _on_ledger_event(self, kind: str, uid: int, info: Dict[str, Any]) -> None:
        if not self._wants(uid):
            return
        step = int(info.get("step", self._stamp()[0]))
        _, rnd = self._stamp()
        if kind == "generated":
            source = info.get("source")
            pending = self._pending_submits.get(source)
            if pending:
                sub_step, sub_round, payload, sub_dest = pending.popleft()
                self._append(
                    uid,
                    LifecycleEvent(
                        step=sub_step, round=sub_round, kind="submit",
                        dest=sub_dest, proc=source,
                        info={"payload": payload},
                    ),
                )
            self._append(
                uid,
                LifecycleEvent(
                    step=step, round=rnd, kind="generated",
                    dest=info.get("dest"), proc=source, info=dict(info),
                ),
            )
        elif kind == "delivered":
            self._append(
                uid,
                LifecycleEvent(
                    step=step, round=rnd, kind="delivered",
                    dest=info.get("at"), proc=info.get("at"), info=dict(info),
                ),
            )
        elif kind == "lost":
            self._append(
                uid,
                LifecycleEvent(
                    step=step, round=rnd, kind="lost", info=dict(info),
                ),
            )

    def _on_buffer_write(self, d: int, p: int, kind: str) -> None:
        """A buffer of ``p`` in component ``d`` was written.  Reconcile the
        tracer's view of that slot — and, for "E" notifications, also the
        R slot (rule R2's ``move_r_to_e`` fills E and empties R under a
        single notification)."""
        self._reconcile_slot(d, p, kind)
        if kind == "E":
            self._reconcile_slot(d, p, "R")

    def _reconcile_slot(self, d: int, p: int, kind: str) -> None:
        bufs = self._bufs
        row = bufs.R[d] if kind == "R" else bufs.E[d]
        msg = row[p]
        key = (d, p, kind)
        previous = self._slots.get(key)
        current = msg.uid if msg is not None else None
        if current == previous:
            return
        step, rnd = self._stamp()
        if previous is not None and self._wants(previous):
            self._append(
                previous,
                LifecycleEvent(
                    step=step, round=rnd, kind="cleared",
                    dest=d, proc=p, buffer=kind,
                ),
            )
        if current is None:
            self._slots.pop(key, None)
        else:
            self._slots[key] = current
            if self._wants(current):
                self._append(
                    current,
                    LifecycleEvent(
                        step=step, round=rnd, kind="buffer",
                        dest=d, proc=p, buffer=kind,
                        info={
                            "last": msg.last,
                            "color": msg.color,
                            "hops": msg.hops,
                        },
                    ),
                )

    def record_fault(
        self,
        action: str,
        detail: Optional[Dict[str, Any]] = None,
        step: Optional[int] = None,
    ) -> None:
        """Stamp a fault injection into the timeline.

        ``step`` defaults to the attached simulation's current step, so a
        fault lands between the message events it actually interleaved
        with — that is what lets ``repro obs summarize`` correlate faults
        with latency spikes.
        """
        at_step, rnd = self._stamp()
        self._faults.append(
            {
                "step": at_step if step is None else step,
                "round": rnd,
                "action": action,
                **(detail or {}),
            }
        )

    @property
    def fault_count(self) -> int:
        """Number of faults recorded so far."""
        return len(self._faults)

    # -- queries -----------------------------------------------------------------

    def uids(self) -> List[int]:
        """Every traced uid, ascending."""
        return sorted(self._events)

    def timeline(self, uid: int) -> List[LifecycleEvent]:
        """The causal timeline of one uid, in step order (ties broken by
        the causal order of one atomic step, then by arrival)."""
        return [e for *_, e in sorted(self._events.get(uid, []))]

    def timelines(self) -> Dict[int, List[LifecycleEvent]]:
        """All timelines, keyed by uid."""
        return {uid: self.timeline(uid) for uid in self.uids()}

    def is_complete(self, uid: int) -> bool:
        """True iff the uid's timeline runs generation → delivery."""
        kinds = {e.kind for *_, e in self._events.get(uid, [])}
        return "generated" in kinds and "delivered" in kinds

    def complete_uids(self) -> List[int]:
        """Uids whose full generation → delivery lifecycle was captured."""
        return [uid for uid in self.uids() if self.is_complete(uid)]

    def hop_path(self, uid: int) -> List[Tuple[int, str]]:
        """The buffer hops ``(processor, "R"|"E")`` in arrival order —
        the compact route the message actually took."""
        return [
            (e.proc, e.buffer)
            for e in self.timeline(uid)
            if e.kind == "buffer"
        ]

    # -- rendering / export ------------------------------------------------------

    def format_timeline(self, uid: int) -> str:
        """Human-readable causal timeline of one uid."""
        events = self.timeline(uid)
        if not events:
            return f"uid {uid}: no events traced"
        lines = [f"uid {uid} — {len(events)} events"]
        for e in events:
            place = ""
            if e.proc is not None:
                place = f" p={e.proc}"
                if e.buffer is not None:
                    place = f" buf{e.buffer}_{e.proc}({e.dest})"
            detail = ""
            if e.kind == "buffer":
                detail = f" last={e.info.get('last')} color={e.info.get('color')}"
            elif e.kind == "submit":
                detail = f" -> dest {e.dest}"
            elif e.kind == "lost":
                detail = f" ({e.info.get('reason', '?')})"
            lines.append(
                f"  step {e.step:>6}  round {e.round:>4}  {e.kind:<9}{place}{detail}"
            )
        return "\n".join(lines)

    def to_rows(self) -> List[Dict[str, object]]:
        """Every traced event as a schema-versioned JSONL-ready row."""
        out: List[Dict[str, object]] = []
        for uid in self.uids():
            for seq, e in enumerate(self.timeline(uid)):
                row: Dict[str, object] = {
                    "schema": SCHEMA,
                    "kind": "trace_event",
                    "uid": uid,
                    "seq": seq,
                    "step": e.step,
                    "round": e.round,
                    "event": e.kind,
                }
                if self._protocol is not None:
                    row["protocol"] = self._protocol
                if e.dest is not None:
                    row["dest"] = e.dest
                if e.proc is not None:
                    row["proc"] = e.proc
                if e.buffer is not None:
                    row["buffer"] = e.buffer
                for key, value in e.info.items():
                    row.setdefault(key, value)
                out.append(row)
        for fault in self._faults:
            row = {"schema": SCHEMA, "kind": "fault_event"}
            if self._protocol is not None:
                row["protocol"] = self._protocol
            row.update(fault)
            out.append(row)
        return out
