"""``repro.obs`` — the structured observability layer.

Three zero-dependency pieces, all strictly opt-in (a run that enables none
of them pays nothing):

* :class:`MetricsRegistry` / :class:`NullRegistry` — counters, gauges and
  histograms the :class:`~repro.statemodel.scheduler.Simulator` feeds with
  per-rule/per-protocol execution counts and wall-time, guard-evaluation
  counts, and round/neutralization events;
* :class:`MessageTracer` — per-message causal timelines (submit → R1 →
  bufE/bufR hops → R4 release → R6 delivery) built from ledger + buffer
  notifier hooks;
* :mod:`repro.obs.export` — schema-versioned JSONL artifacts
  (write/validate/summarize/diff) plus :func:`capture_tables`, which turns
  every ASCII table in the repo into a machine-readable twin.

See ``docs/observability.md`` for the full story and the overhead numbers.
"""

from repro.obs.export import (
    Artifact,
    capture_tables,
    diff_artifacts,
    read_artifact,
    summarize_artifact,
    tables_to_rows,
    write_jsonl,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.tracer import LifecycleEvent, MessageTracer

__all__ = [
    "SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "MessageTracer",
    "LifecycleEvent",
    "Artifact",
    "write_jsonl",
    "read_artifact",
    "summarize_artifact",
    "diff_artifacts",
    "capture_tables",
    "tables_to_rows",
]
