"""Schema-versioned JSONL artifacts: write, validate, summarize, diff.

Every ASCII table the repo prints can now leave a machine-readable twin
next to it.  An artifact is one JSON object per line:

* a leading **header** row ``{"schema": "repro.obs/v1", "kind": "header",
  "artifact": <name>, "meta": {...}}``;
* data rows, each carrying ``schema`` and a ``kind`` (``table_row``,
  ``sweep_row``, ``metric``, ``trace_event``, ...) plus the payload.

Readers reject rows whose schema tag is missing or unknown, so a consumer
can never silently misinterpret an old artifact after a schema bump.

:func:`capture_tables` hooks :func:`repro.sim.reporting.format_table`'s
table sink, so *every* experiment and benchmark — none of which know about
JSONL — can emit artifacts without per-experiment changes.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.obs.registry import SCHEMA
from repro.sim import reporting
from repro.sim.stats import summarize


@dataclass
class Artifact:
    """A parsed JSONL artifact: header metadata plus data rows."""

    path: str
    name: Optional[str] = None
    meta: Dict[str, object] = field(default_factory=dict)
    rows: List[Dict[str, object]] = field(default_factory=list)

    def rows_of_kind(self, kind: str) -> List[Dict[str, object]]:
        """The data rows whose ``kind`` matches."""
        return [r for r in self.rows if r.get("kind") == kind]

    def kinds(self) -> Dict[str, int]:
        """Histogram kind -> row count."""
        hist: Dict[str, int] = {}
        for row in self.rows:
            kind = str(row.get("kind"))
            hist[kind] = hist.get(kind, 0) + 1
        return hist


def write_jsonl(
    path,
    rows: Iterable[Dict[str, object]],
    kind: str = "row",
    name: Optional[str] = None,
    meta: Optional[Dict[str, object]] = None,
) -> int:
    """Write ``rows`` as a schema-versioned JSONL artifact; returns the
    number of data rows written.

    Rows already carrying a ``kind`` (registry/tracer exports) keep it;
    bare rows (sweep/table dictionaries) are tagged with ``kind``.
    Non-JSON values fall back to their ``str()`` form — an artifact must
    always be writable.
    """
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with target.open("w", encoding="utf-8") as fh:
        header = {
            "schema": SCHEMA,
            "kind": "header",
            "artifact": name or target.stem,
            "meta": meta or {},
        }
        fh.write(json.dumps(header, sort_keys=True, default=str) + "\n")
        for row in rows:
            tagged: Dict[str, object] = {"schema": SCHEMA, "kind": kind}
            tagged.update(row)
            tagged["schema"] = SCHEMA
            fh.write(json.dumps(tagged, sort_keys=True, default=str) + "\n")
            count += 1
    return count


def read_artifact(path) -> Artifact:
    """Parse and validate a JSONL artifact.

    Raises :class:`ValueError` on malformed JSON, a missing/unknown schema
    tag, or a row without a ``kind``.
    """
    artifact = Artifact(path=str(path))
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from None
        if not isinstance(row, dict):
            raise ValueError(f"{path}:{lineno}: row is not an object")
        if row.get("schema") != SCHEMA:
            raise ValueError(
                f"{path}:{lineno}: schema {row.get('schema')!r} "
                f"(this reader understands {SCHEMA!r})"
            )
        if "kind" not in row:
            raise ValueError(f"{path}:{lineno}: row has no 'kind'")
        if row["kind"] == "header" and artifact.name is None:
            artifact.name = row.get("artifact")
            meta = row.get("meta")
            if isinstance(meta, dict):
                artifact.meta = meta
        else:
            artifact.rows.append(row)
    return artifact


# -- summaries -----------------------------------------------------------------

_SKIP_KEYS = ("schema", "kind")


def _numeric_fields(rows: Sequence[Dict[str, object]]) -> Dict[str, List[float]]:
    fields: Dict[str, List[float]] = {}
    for row in rows:
        for key, value in row.items():
            if key in _SKIP_KEYS:
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            fields.setdefault(key, []).append(float(value))
    return fields


def _metric_table(rows: Sequence[Dict[str, object]]) -> str:
    """One line per named metric: counters/gauges show their value,
    histograms their distribution summary."""
    table = []
    for row in sorted(rows, key=lambda r: str(r.get("metric"))):
        entry: Dict[str, object] = {
            "metric": row.get("metric"),
            "type": row.get("type"),
        }
        for key in ("value", "n", "min", "p50", "p90", "p99", "max", "mean"):
            if key in row:
                entry[key] = row[key]
        table.append(entry)
    return reporting.format_table(
        table,
        columns=["metric", "type", "value", "n", "min", "p50", "p90", "p99",
                 "max", "mean"],
        title="[metric] by name",
    )


def summarize_artifact(path) -> str:
    """A human summary of one artifact: row counts per kind, a per-name
    metric table, then nearest-rank summaries of every numeric field per
    kind."""
    artifact = read_artifact(path)
    lines = [f"artifact: {artifact.name or artifact.path}  ({len(artifact.rows)} rows)"]
    if artifact.meta:
        lines.append(f"meta: {json.dumps(artifact.meta, sort_keys=True, default=str)}")
    kind_rows = []
    for kind, count in sorted(artifact.kinds().items()):
        kind_rows.append({"kind": kind, "rows": count})
    lines.append(reporting.format_table(kind_rows, columns=["kind", "rows"]))
    metric_rows = artifact.rows_of_kind("metric")
    if metric_rows:
        lines.append("")
        lines.append(_metric_table(metric_rows))
    for kind in sorted(artifact.kinds()):
        rows = artifact.rows_of_kind(kind)
        fields = _numeric_fields(rows)
        if not fields:
            continue
        table = []
        for name in sorted(fields):
            summary = summarize(fields[name])
            table.append({"field": name, **summary})
        lines.append("")
        lines.append(
            reporting.format_table(
                table,
                columns=["field", "n", "min", "p50", "p90", "p99", "max", "mean"],
                title=f"[{kind}] numeric fields",
            )
        )
    return "\n".join(lines)


# -- diffing -------------------------------------------------------------------


def _row_identity(row: Dict[str, object]) -> tuple:
    """Identity of a row for cross-artifact alignment: its kind plus every
    non-numeric field (the configuration echo / labels), in sorted order."""
    ident = [("kind", str(row.get("kind")))]
    for key, value in sorted(row.items()):
        if key in _SKIP_KEYS:
            continue
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            ident.append((key, str(value)))
    return tuple(ident)


def diff_artifacts(path_a, path_b, tolerance: float = 1e-9) -> str:
    """Compare two artifacts row by row.

    Rows are aligned by kind + non-numeric fields; numeric fields of
    aligned rows are compared and differences beyond ``tolerance``
    reported with deltas and ratios.  Rows present on only one side are
    listed as added/removed.
    """
    a, b = read_artifact(path_a), read_artifact(path_b)

    def index(artifact: Artifact) -> Dict[tuple, Dict[str, object]]:
        out: Dict[tuple, Dict[str, object]] = {}
        for i, row in enumerate(artifact.rows):
            key = _row_identity(row)
            while key in out:  # duplicate identities keep file order
                key = key + (("#", str(i)),)
            out[key] = row
        return out

    rows_a, rows_b = index(a), index(b)
    only_a = [k for k in rows_a if k not in rows_b]
    only_b = [k for k in rows_b if k not in rows_a]
    diffs: List[Dict[str, object]] = []
    compared = 0
    for key, row_a in rows_a.items():
        row_b = rows_b.get(key)
        if row_b is None:
            continue
        compared += 1
        label = " ".join(
            f"{k}={v}" for k, v in key if k not in ("kind", "#")
        ) or str(dict(key).get("kind"))
        for field_name in sorted(set(row_a) | set(row_b)):
            if field_name in _SKIP_KEYS:
                continue
            va, vb = row_a.get(field_name), row_b.get(field_name)
            if isinstance(va, bool) or isinstance(vb, bool):
                continue
            if not isinstance(va, (int, float)) or not isinstance(vb, (int, float)):
                continue
            if abs(vb - va) <= tolerance:
                continue
            diffs.append(
                {
                    "row": label,
                    "field": field_name,
                    "a": va,
                    "b": vb,
                    "delta": vb - va,
                    "ratio": (vb / va) if va else None,
                }
            )
    lines = [
        f"diff: {a.name or path_a} vs {b.name or path_b} — "
        f"{compared} rows aligned, {len(only_a)} only in A, "
        f"{len(only_b)} only in B, {len(diffs)} numeric differences"
    ]
    if diffs:
        lines.append(
            reporting.format_table(
                diffs, columns=["row", "field", "a", "b", "delta", "ratio"]
            )
        )
    for side, keys in (("A", only_a), ("B", only_b)):
        for key in keys[:20]:
            lines.append(f"only in {side}: {dict(key)}")
        if len(keys) > 20:
            lines.append(f"only in {side}: ... {len(keys) - 20} more")
    return "\n".join(lines)


# -- table capture -------------------------------------------------------------


@contextmanager
def capture_tables() -> Iterator[List[Dict[str, object]]]:
    """Capture every table rendered by
    :func:`repro.sim.reporting.format_table` inside the block.

    Yields a list that fills with ``{"title", "columns", "rows"}`` entries
    — the machine-readable twin of each printed table.  The previous sink
    (if any) keeps seeing the tables too, so captures nest.
    """
    captured: List[Dict[str, object]] = []
    previous = None

    def sink(title, columns, rows) -> None:
        captured.append(
            {
                "title": title,
                "columns": list(columns),
                "rows": [dict(r) for r in rows],
            }
        )
        if previous is not None:
            previous(title, columns, rows)

    previous = reporting.set_table_sink(sink)
    try:
        yield captured
    finally:
        reporting.set_table_sink(previous)


def tables_to_rows(
    captured: Sequence[Dict[str, object]]
) -> List[Dict[str, object]]:
    """Flatten captured tables into JSONL-ready ``table_row`` rows (each
    stamped with its table's title)."""
    out: List[Dict[str, object]] = []
    for table in captured:
        title = table.get("title")
        for row in table["rows"]:
            tagged: Dict[str, object] = {"kind": "table_row"}
            if title:
                tagged["table"] = title
            tagged.update(row)
            out.append(tagged)
    return out
