"""Graph properties used by the paper's analysis: Δ, D, dist(p, q).

All computations are exact BFS-based routines on :class:`~repro.network.Network`
instances.  They are used both by the routing substrate (ground truth for
table correctness) and by the experiment harness (the complexity bounds of
Propositions 5-7 are phrased in Δ, D and dist).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.network.graph import Network
from repro.types import ProcId

_UNREACHED = -1

#: Brute-force automorphism search is O(n!) — beyond this the search
#: falls back to the cyclic/dihedral candidate families (which cover the
#: symmetric topologies the zoo actually builds: rings, complete graphs).
_MAX_BRUTE_N = 8


def bfs_distances(net: Network, source: ProcId) -> List[int]:
    """Shortest-path (hop) distances from ``source`` to every processor.

    Returns a list ``dist`` with ``dist[p] == dist(source, p)``.  The network
    is connected by construction, so every entry is a finite non-negative
    integer.
    """
    dist = [_UNREACHED] * net.n
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in net.neighbors(u):
            if dist[v] == _UNREACHED:
                dist[v] = du + 1
                queue.append(v)
    return dist


def bfs_tree(net: Network, root: ProcId) -> List[Optional[ProcId]]:
    """A BFS spanning tree rooted at ``root``.

    Returns ``parent`` with ``parent[root] is None`` and, for every other
    processor ``p``, ``parent[p]`` the neighbor of ``p`` on a shortest path
    toward ``root`` (ties broken toward the smallest identity, matching the
    deterministic tie-break used by the self-stabilizing routing protocol).
    This is the tree the paper calls ``T_root``.
    """
    dist = bfs_distances(net, root)
    parent: List[Optional[ProcId]] = [None] * net.n
    for p in net.processors():
        if p == root:
            continue
        # Smallest-id neighbor strictly closer to the root.
        parent[p] = min(q for q in net.neighbors(p) if dist[q] == dist[p] - 1)
    return parent


def all_pairs_distances(net: Network) -> List[List[int]]:
    """Matrix of shortest-path distances; ``result[u][v] == dist(u, v)``."""
    return [bfs_distances(net, s) for s in net.processors()]


def eccentricity(net: Network, p: ProcId) -> int:
    """Greatest distance from ``p`` to any other processor."""
    return max(bfs_distances(net, p))


def diameter(net: Network) -> int:
    """The paper's ``D``: the maximum over all pairs of ``dist(p, q)``."""
    return max(eccentricity(net, p) for p in net.processors())


def max_degree(net: Network) -> int:
    """The paper's ``Δ``: the maximum processor degree."""
    return max(net.degree(p) for p in net.processors())


def is_connected(net: Network) -> bool:
    """Always True for a constructed :class:`Network`; provided for
    completeness and for validating edge lists before construction."""
    return all(d != _UNREACHED for d in bfs_distances(net, 0))


def degree_histogram(net: Network) -> Dict[int, int]:
    """Map degree -> number of processors with that degree."""
    hist: Dict[int, int] = {}
    for p in net.processors():
        d = net.degree(p)
        hist[d] = hist.get(d, 0) + 1
    return hist


def _preserves_edges(net: Network, perm: Tuple[ProcId, ...]) -> bool:
    """True iff ``perm`` maps every edge onto an edge (and hence, being a
    bijection on a fixed edge count, is a graph automorphism)."""
    for u, v in net.edges:
        pu, pv = perm[u], perm[v]
        if not net.are_neighbors(pu, pv):
            return False
    return True


def automorphisms(net: Network) -> List[Tuple[ProcId, ...]]:
    """Graph automorphisms of ``net`` as identity-indexed tuples
    (``perm[p]`` is the image of processor ``p``).

    For ``n <= 8`` the search is exact (brute force over all permutations,
    pruned by the degree sequence).  Beyond that, exact search is
    infeasible and the function returns the *validated subset* of the
    cyclic/dihedral candidate families ``p -> (p + k) % n`` and
    ``p -> (k - p) % n`` — exactly the groups of the symmetric topologies
    the zoo builds by identity arithmetic (rings, complete graphs).  The
    identity permutation is always included, so the result is never empty
    and always forms a group (the symmetry-reduction layer re-validates
    each permutation against the protocol instance anyway; see
    ``repro/verify/reduction.py``).
    """
    n = net.n
    identity = tuple(range(n))
    if n <= 1:
        return [identity]
    found: List[Tuple[ProcId, ...]] = []
    if n <= _MAX_BRUTE_N:
        degrees = [net.degree(p) for p in range(n)]
        for perm in itertools.permutations(range(n)):
            if any(degrees[p] != degrees[perm[p]] for p in range(n)):
                continue
            if _preserves_edges(net, perm):
                found.append(perm)
        return found
    candidates = {identity}
    for k in range(n):
        candidates.add(tuple((p + k) % n for p in range(n)))
        candidates.add(tuple((k - p) % n for p in range(n)))
    for perm in sorted(candidates):
        if _preserves_edges(net, perm):
            found.append(perm)
    return found
