"""Validation helpers for edge lists and cross-checks against networkx.

:func:`validate_edge_list` is the pre-flight check used by callers that
assemble edge lists dynamically (e.g. campaign configuration files) and want
a diagnostic before :class:`~repro.network.Network` construction.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.types import ProcId, normalized_edge


def validate_edge_list(
    n: int, edges: Iterable[Tuple[ProcId, ProcId]]
) -> List[str]:
    """Return a list of human-readable problems with the edge list.

    An empty list means :class:`~repro.network.Network` construction will
    succeed.  Checks: endpoint range, self-loops, duplicates, connectivity.
    """
    problems: List[str] = []
    if n <= 0:
        return [f"n must be positive, got {n}"]
    seen = set()
    adj: List[List[ProcId]] = [[] for _ in range(n)]
    for u, v in edges:
        if not (0 <= u < n) or not (0 <= v < n):
            problems.append(f"edge ({u}, {v}) out of range for n={n}")
            continue
        if u == v:
            problems.append(f"self-loop at {u}")
            continue
        e = normalized_edge(u, v)
        if e in seen:
            problems.append(f"duplicate edge {e}")
            continue
        seen.add(e)
        adj[u].append(v)
        adj[v].append(u)
    if n > 1:
        visited = [False] * n
        stack = [0]
        visited[0] = True
        count = 1
        while stack:
            x = stack.pop()
            for y in adj[x]:
                if not visited[y]:
                    visited[y] = True
                    count += 1
                    stack.append(y)
        if count != n:
            unreached = [p for p in range(n) if not visited[p]]
            problems.append(
                f"graph is disconnected; unreachable from 0: {unreached[:10]}"
            )
    return problems
