"""The :class:`Network` value type.

A network is an immutable, identified, undirected, connected graph.  All
protocols in this reproduction are written against this class: processor
identities are the integers ``0..n-1`` (the paper's identity set ``I``), and
``neighbors(p)`` is the paper's ``N_p``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import TopologyError
from repro.types import Edge, ProcId, normalized_edge


class Network:
    """An immutable identified undirected connected graph.

    Parameters
    ----------
    n:
        Number of processors; identities are ``0..n-1``.
    edges:
        Iterable of undirected edges ``(u, v)``.  Self-loops and duplicate
        edges are rejected; the edge set must make the graph connected
        (the paper assumes a connected network).
    names:
        Optional human-readable labels (used to mirror the paper's figures,
        which label processors ``a, b, c, ...``).

    The constructor validates everything eagerly so that downstream code can
    assume a well-formed network.
    """

    __slots__ = ("_n", "_edges", "_adj", "_names", "_name_to_id")

    def __init__(
        self,
        n: int,
        edges: Iterable[Tuple[ProcId, ProcId]],
        names: Optional[Sequence[str]] = None,
    ) -> None:
        if n <= 0:
            raise TopologyError(f"network must have at least one processor, got n={n}")
        edge_set = set()
        adj: List[List[ProcId]] = [[] for _ in range(n)]
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise TopologyError(f"edge ({u}, {v}) out of range for n={n}")
            if u == v:
                raise TopologyError(f"self-loop at processor {u} is not allowed")
            e = normalized_edge(u, v)
            if e in edge_set:
                raise TopologyError(f"duplicate edge {e}")
            edge_set.add(e)
            adj[u].append(v)
            adj[v].append(u)
        for lst in adj:
            lst.sort()
        self._n = n
        self._edges: Tuple[Edge, ...] = tuple(sorted(edge_set))
        self._adj: Tuple[Tuple[ProcId, ...], ...] = tuple(tuple(lst) for lst in adj)
        if names is not None:
            if len(names) != n:
                raise TopologyError(
                    f"expected {n} names, got {len(names)}"
                )
            if len(set(names)) != n:
                raise TopologyError("processor names must be unique")
            self._names: Tuple[str, ...] = tuple(names)
        else:
            self._names = tuple(str(i) for i in range(n))
        self._name_to_id: Dict[str, ProcId] = {
            name: i for i, name in enumerate(self._names)
        }
        if n > 1 and not self._connected():
            raise TopologyError("network must be connected")

    # -- basic accessors ---------------------------------------------------

    @property
    def n(self) -> int:
        """Number of processors."""
        return self._n

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """Sorted tuple of undirected edges ``(u, v)`` with ``u < v``."""
        return self._edges

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return len(self._edges)

    def processors(self) -> range:
        """Iterate over all processor identities."""
        return range(self._n)

    def neighbors(self, p: ProcId) -> Tuple[ProcId, ...]:
        """The paper's ``N_p``: sorted neighbor identities of ``p``."""
        return self._adj[p]

    def degree(self, p: ProcId) -> int:
        """Number of neighbors of ``p``."""
        return len(self._adj[p])

    def are_neighbors(self, u: ProcId, v: ProcId) -> bool:
        """True iff the undirected edge (u, v) exists."""
        return v in self._adj[u]

    # -- names -------------------------------------------------------------

    def name(self, p: ProcId) -> str:
        """Human-readable label of processor ``p``."""
        return self._names[p]

    def id_of(self, name: str) -> ProcId:
        """Inverse of :meth:`name`; raises ``KeyError`` for unknown labels."""
        return self._name_to_id[name]

    # -- internals ---------------------------------------------------------

    def _connected(self) -> bool:
        seen = [False] * self._n
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == self._n

    # -- dunder ------------------------------------------------------------

    def __deepcopy__(self, memo) -> "Network":
        # Networks are immutable; sharing them keeps state-space
        # exploration (which deep-copies whole systems) cheap.
        return self

    def __copy__(self) -> "Network":
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Network):
            return NotImplemented
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._n, self._edges))

    def __repr__(self) -> str:
        return f"Network(n={self._n}, m={self.m})"
