"""Network substrate: identified undirected connected graphs.

The paper models the system as an undirected connected graph ``G = (V, E)``
of identified processors (§2).  This package provides the :class:`Network`
value type, a zoo of topology constructors used throughout the tests and
benchmarks, and graph-property helpers (degree Δ, diameter D, shortest-path
distances) that the paper's complexity analysis is phrased in.
"""

from repro.network.graph import Network
from repro.network.properties import (
    all_pairs_distances,
    bfs_distances,
    bfs_tree,
    diameter,
    eccentricity,
    is_connected,
    max_degree,
)
from repro.network.topologies import (
    barbell_network,
    binary_tree_network,
    caterpillar_network,
    complete_network,
    grid_network,
    hypercube_network,
    line_network,
    lollipop_network,
    paper_figure1_network,
    paper_figure3_network,
    random_connected_network,
    random_regular_network,
    random_tree_network,
    ring_network,
    star_network,
    torus_network,
    wheel_network,
)

__all__ = [
    "Network",
    "all_pairs_distances",
    "bfs_distances",
    "bfs_tree",
    "diameter",
    "eccentricity",
    "is_connected",
    "max_degree",
    "barbell_network",
    "binary_tree_network",
    "caterpillar_network",
    "complete_network",
    "grid_network",
    "hypercube_network",
    "line_network",
    "lollipop_network",
    "paper_figure1_network",
    "paper_figure3_network",
    "random_connected_network",
    "random_regular_network",
    "random_tree_network",
    "ring_network",
    "star_network",
    "torus_network",
    "wheel_network",
]
