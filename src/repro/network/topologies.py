"""Topology zoo.

Constructors for the network families used by the tests, examples and
benchmarks.  The complexity statements of the paper are parametrized by the
maximal degree Δ and the diameter D, so the zoo deliberately spans the
(Δ, D) plane: lines/rings maximize D at constant Δ, stars maximize Δ at
constant D, grids/tori/hypercubes sit in between, and the random family
provides adversarial irregular instances for property-based testing.

Two constructors rebuild the networks of the paper's figures.  The original
figure artwork is not available in the source we reproduce from, so these
are faithful reconstructions from the prose: Figure 3's network has Δ = 3
and admits the routing cycle between processors ``a`` and ``c`` for
destination ``b`` that the worked example walks through.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.errors import TopologyError
from repro.network.graph import Network
from repro.types import ProcId


def line_network(n: int) -> Network:
    """Path ``0 - 1 - ... - n-1``:  Δ = 2, D = n-1."""
    return Network(n, [(i, i + 1) for i in range(n - 1)])


def ring_network(n: int) -> Network:
    """Cycle on ``n >= 3`` processors:  Δ = 2, D = ⌊n/2⌋."""
    if n < 3:
        raise TopologyError(f"a ring needs at least 3 processors, got {n}")
    return Network(n, [(i, (i + 1) % n) for i in range(n)])


def star_network(n: int) -> Network:
    """Star with center 0 and ``n - 1`` leaves:  Δ = n-1, D = 2."""
    if n < 2:
        raise TopologyError(f"a star needs at least 2 processors, got {n}")
    return Network(n, [(0, i) for i in range(1, n)])


def complete_network(n: int) -> Network:
    """Complete graph K_n:  Δ = n-1, D = 1."""
    if n < 2:
        raise TopologyError(f"a complete network needs at least 2 processors, got {n}")
    return Network(n, [(u, v) for u in range(n) for v in range(u + 1, n)])


def grid_network(rows: int, cols: int) -> Network:
    """``rows × cols`` mesh:  Δ ≤ 4, D = rows + cols - 2."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid dimensions must be positive")
    edges: List[Tuple[ProcId, ProcId]] = []
    for r in range(rows):
        for c in range(cols):
            p = r * cols + c
            if c + 1 < cols:
                edges.append((p, p + 1))
            if r + 1 < rows:
                edges.append((p, p + cols))
    return Network(rows * cols, edges)


def torus_network(rows: int, cols: int) -> Network:
    """``rows × cols`` torus (wrap-around mesh):  Δ ≤ 4.

    Requires at least 3 rows and 3 columns so no wrap edge duplicates a
    mesh edge.
    """
    if rows < 3 or cols < 3:
        raise TopologyError("a torus needs at least 3 rows and 3 columns")
    edges = set()
    for r in range(rows):
        for c in range(cols):
            p = r * cols + c
            right = r * cols + (c + 1) % cols
            down = ((r + 1) % rows) * cols + c
            edges.add(tuple(sorted((p, right))))
            edges.add(tuple(sorted((p, down))))
    return Network(rows * cols, sorted(edges))


def hypercube_network(dim: int) -> Network:
    """Boolean hypercube of dimension ``dim``:  n = 2^dim, Δ = D = dim."""
    if dim < 1:
        raise TopologyError("hypercube dimension must be at least 1")
    n = 1 << dim
    edges = []
    for u in range(n):
        for b in range(dim):
            v = u ^ (1 << b)
            if u < v:
                edges.append((u, v))
    return Network(n, edges)


def lollipop_network(clique: int, tail: int) -> Network:
    """A clique of size ``clique`` with a path of ``tail`` extra processors
    attached to processor 0.  High Δ *and* high D in one instance — a
    stress case for the Δ^D bound of Proposition 5.
    """
    if clique < 2 or tail < 1:
        raise TopologyError("lollipop needs clique >= 2 and tail >= 1")
    n = clique + tail
    edges = [(u, v) for u in range(clique) for v in range(u + 1, clique)]
    prev = 0
    for i in range(clique, n):
        edges.append((prev, i))
        prev = i
    return Network(n, edges)


def binary_tree_network(depth: int) -> Network:
    """Complete binary tree of the given depth:  n = 2^(depth+1) - 1,
    Δ = 3, D = 2·depth."""
    if depth < 0:
        raise TopologyError("depth must be non-negative")
    n = (1 << (depth + 1)) - 1
    edges = [((i - 1) // 2, i) for i in range(1, n)]
    return Network(n, edges)


def caterpillar_network(spine: int, legs_per_node: int) -> Network:
    """A caterpillar tree: a spine path of ``spine`` processors, each with
    ``legs_per_node`` leaf legs.  High-Δ tree for the orientation-cover
    experiments."""
    if spine < 1 or legs_per_node < 0:
        raise TopologyError("need spine >= 1 and legs_per_node >= 0")
    edges: List[Tuple[ProcId, ProcId]] = [(i, i + 1) for i in range(spine - 1)]
    next_id = spine
    for s in range(spine):
        for _ in range(legs_per_node):
            edges.append((s, next_id))
            next_id += 1
    return Network(next_id, edges)


def barbell_network(clique: int, bridge: int) -> Network:
    """Two cliques of size ``clique`` joined by a path of ``bridge`` extra
    processors — the bottleneck stress topology."""
    if clique < 2 or bridge < 0:
        raise TopologyError("need clique >= 2 and bridge >= 0")
    edges = [(u, v) for u in range(clique) for v in range(u + 1, clique)]
    offset = clique + bridge
    edges += [
        (offset + u, offset + v)
        for u in range(clique)
        for v in range(u + 1, clique)
    ]
    chain = [clique - 1] + list(range(clique, clique + bridge)) + [offset]
    edges += list(zip(chain, chain[1:]))
    return Network(offset + clique, edges)


def wheel_network(n: int) -> Network:
    """Wheel: a hub (processor 0) connected to every node of an
    (n-1)-cycle:  Δ = n-1, D = 2."""
    if n < 4:
        raise TopologyError("a wheel needs at least 4 processors")
    rim = list(range(1, n))
    edges = [(0, p) for p in rim]
    edges += [(rim[i], rim[(i + 1) % len(rim)]) for i in range(len(rim))]
    return Network(n, sorted(set(tuple(sorted(e)) for e in edges)))


def random_regular_network(n: int, degree: int, seed: int, tries: int = 200) -> Network:
    """Random connected ``degree``-regular graph via the pairing model
    (retrying until simple and connected).  Deterministic for a seed."""
    if n * degree % 2 != 0:
        raise TopologyError("n * degree must be even")
    if degree < 2 or degree >= n:
        raise TopologyError("need 2 <= degree < n")
    rng = random.Random(seed)
    for _ in range(tries):
        stubs = [p for p in range(n) for _ in range(degree)]
        rng.shuffle(stubs)
        edges = set()
        ok = True
        for u, v in zip(stubs[::2], stubs[1::2]):
            if u == v or (min(u, v), max(u, v)) in edges:
                ok = False
                break
            edges.add((min(u, v), max(u, v)))
        if not ok:
            continue
        try:
            return Network(n, sorted(edges))
        except TopologyError:
            continue  # disconnected; retry
    raise TopologyError(
        f"could not sample a connected {degree}-regular graph on {n} nodes"
    )


def random_tree_network(n: int, seed: int) -> Network:
    """Uniform-ish random tree (random attachment):  always connected,
    m = n-1.  Deterministic for a given ``seed``."""
    if n < 1:
        raise TopologyError("tree needs at least 1 processor")
    rng = random.Random(seed)
    edges = [(rng.randrange(i), i) for i in range(1, n)]
    return Network(n, edges)


def random_connected_network(n: int, extra_edges: int, seed: int) -> Network:
    """Random connected graph: a random tree plus ``extra_edges`` distinct
    random non-tree edges.  Deterministic for a given ``seed``.
    """
    if n < 1:
        raise TopologyError("network needs at least 1 processor")
    rng = random.Random(seed)
    edges = {tuple(sorted((rng.randrange(i), i))) for i in range(1, n)}
    max_extra = n * (n - 1) // 2 - len(edges)
    budget = min(extra_edges, max_extra)
    while budget > 0:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        e = (u, v) if u < v else (v, u)
        if e in edges:
            continue
        edges.add(e)
        budget -= 1
    return Network(n, sorted(edges))


def paper_figure1_network() -> Network:
    """The 5-processor network of the paper's Figure 1 (reconstruction).

    Figure 1 illustrates the classic "destination-based" buffer graph on a
    small network.  We use five processors ``a..e`` forming a house-shaped
    graph (a cycle with a chord) — small enough to print, cyclic enough
    that the buffer-graph acyclicity is non-trivial.
    """
    names = ["a", "b", "c", "d", "e"]
    edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 4)]
    return Network(5, edges, names=names)


def paper_figure3_network() -> Network:
    """The network ``(N)`` of the paper's Figure 3 (reconstruction).

    The prose requires Δ = 3 and a possible routing cycle between the
    buffers of ``a`` and ``c`` for destination ``b``.  We use four
    processors: ``b`` adjacent to ``a``, ``c`` and ``d``, plus the edge
    ``a - c`` that carries the corrupted-routing cycle.
    """
    names = ["a", "b", "c", "d"]
    a, b, c, d = 0, 1, 2, 3
    edges = [(a, b), (b, c), (b, d), (a, c)]
    return Network(4, edges, names=names)


def topology_by_name(name: str, **kwargs) -> Network:
    """Build a topology from a string name (used by the campaign driver).

    Supported names: ``line``, ``ring``, ``star``, ``complete``, ``grid``,
    ``torus``, ``hypercube``, ``lollipop``, ``random_tree``, ``random``,
    ``fig1``, ``fig3``.
    """
    builders = {
        "line": line_network,
        "ring": ring_network,
        "star": star_network,
        "complete": complete_network,
        "grid": grid_network,
        "torus": torus_network,
        "hypercube": hypercube_network,
        "lollipop": lollipop_network,
        "binary_tree": binary_tree_network,
        "caterpillar": caterpillar_network,
        "barbell": barbell_network,
        "wheel": wheel_network,
        "random_regular": random_regular_network,
        "random_tree": random_tree_network,
        "random": random_connected_network,
        "fig1": paper_figure1_network,
        "fig3": paper_figure3_network,
    }
    try:
        builder = builders[name]
    except KeyError:
        raise TopologyError(f"unknown topology {name!r}") from None
    return builder(**kwargs)
