"""Experiment P4 — Proposition 4: at most 2n invalid messages are
delivered to a destination.

The adversarial initial configuration fills *all 2n buffers* of one
destination's component with distinct invalid messages (the proposition's
worst case), corrupts the routing tables, and runs to quiescence.  The
measured number of invalid deliveries at the destination must never exceed
2n; the table reports how close the adversary gets to the bound across
topologies and sizes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.corruption import fill_all_buffers, scramble_queues
from repro.network.topologies import line_network, ring_network, star_network
from repro.sim.reporting import format_table
from repro.sim.runner import build_simulation, fully_quiescent

_BUILDERS = {"line": line_network, "ring": ring_network, "star": star_network}


def run_one(topology: str, n: int, seed: int, dest: int = 0) -> Dict[str, object]:
    """One adversarial run; returns the measured row."""
    net = _BUILDERS[topology](n)
    sim = build_simulation(
        net,
        routing_corruption={"kind": "random", "fraction": 1.0, "seed": seed},
        seed=seed,
    )
    planted = fill_all_buffers(sim.forwarding, d=dest, seed=seed)
    scramble_queues(sim.forwarding, seed=seed + 1)
    sim.run(2_000_000, halt=fully_quiescent)
    delivered = sim.ledger.invalid_deliveries_by_destination().get(dest, 0)
    bound = 2 * net.n
    return {
        "topology": topology,
        "n": n,
        "planted": planted,
        "bound_2n": bound,
        "invalid_delivered": delivered,
        "ratio": delivered / bound,
        "within_bound": delivered <= bound,
    }


def run_prop4(seeds=(1, 2, 3), sizes=(4, 6, 8, 10)) -> List[Dict[str, object]]:
    """Sweep topology x size, keeping the worst (max deliveries) seed."""
    rows: List[Dict[str, object]] = []
    for topology in _BUILDERS:
        for n in sizes:
            worst = None
            for seed in seeds:
                row = run_one(topology, n, seed)
                if worst is None or row["invalid_delivered"] > worst["invalid_delivered"]:
                    worst = row
            rows.append(worst)
    return rows


def main(seeds=(1, 2, 3), sizes=(4, 6, 8, 10)) -> str:
    """Regenerate the Proposition-4 table."""
    rows = run_prop4(seeds, sizes)
    assert all(r["within_bound"] for r in rows), "Proposition 4 violated!"
    return format_table(
        rows,
        columns=[
            "topology", "n", "planted", "bound_2n",
            "invalid_delivered", "ratio", "within_bound",
        ],
        title="P4 / Proposition 4 - invalid deliveries vs the 2n bound "
              "(worst of seeds, all buffers initially full of garbage)",
    )


if __name__ == "__main__":
    print(main())
