"""Experiment P7 — Proposition 7: the amortized complexity is
O(max(R_A, D)) rounds per delivered message.

The Δ^D worst case of Proposition 5 is paid because other messages keep
passing one victim; *in aggregate* the system delivers at least one message
every 3D rounds, so rounds ÷ deliveries grows like D, not Δ^D.  The
experiment saturates networks of growing diameter with hotspot traffic and
reports the amortized measure, contrasting it with the per-message worst
case: amortized cost must scale linearly with D (ratio/D roughly constant)
and sit far below Δ^D.
"""

from __future__ import annotations

from typing import Dict, List

from repro.app.workload import hotspot_workload
from repro.network.properties import diameter, max_degree
from repro.network.topologies import line_network, ring_network
from repro.sim.metrics import amortized_rounds_per_delivery
from repro.sim.reporting import format_table
from repro.sim.runner import build_simulation, delivered_and_drained


def run_one(topology: str, n: int, seed: int, per_source: int = 3, corrupted: bool = False) -> Dict[str, object]:
    """Heavy hotspot run; returns the amortized row."""
    net = line_network(n) if topology == "line" else ring_network(n)
    dest = 0
    sim = build_simulation(
        net,
        workload=hotspot_workload(net.n, dest=dest, per_source=per_source, seed=seed),
        routing_corruption={"kind": "worst", "seed": seed} if corrupted else None,
        seed=seed,
    )
    result = sim.run(5_000_000, halt=delivered_and_drained)
    delivered = sim.ledger.valid_delivered_count
    amortized = amortized_rounds_per_delivery(result.rounds, delivered)
    delta = max_degree(net)
    diam = diameter(net)
    return {
        "topology": topology,
        "n": n,
        "D": diam,
        "delta^D": delta ** diam,
        "tables": "corrupted" if corrupted else "correct",
        "delivered": delivered,
        "total_rounds": result.rounds,
        "amortized_rounds": amortized,
        "amortized/D": amortized / diam if amortized is not None else None,
    }


def run_prop7(seeds=(1, 2), sizes=(6, 10, 14, 18)) -> List[Dict[str, object]]:
    """Sweep D (via n) on lines and rings, worst seed kept."""
    rows: List[Dict[str, object]] = []
    for topology in ("line", "ring"):
        for n in sizes:
            for corrupted in (False, True):
                worst = None
                for seed in seeds:
                    row = run_one(topology, n, seed, corrupted=corrupted)
                    if worst is None or (row["amortized_rounds"] or 0) > (
                        worst["amortized_rounds"] or 0
                    ):
                        worst = row
                rows.append(worst)
    return rows


def main(seeds=(1, 2), sizes=(6, 10, 14, 18)) -> str:
    """Regenerate the Proposition-7 table."""
    rows = run_prop7(seeds, sizes)
    return format_table(
        rows,
        columns=[
            "topology", "n", "D", "delta^D", "tables", "delivered",
            "total_rounds", "amortized_rounds", "amortized/D",
        ],
        title="P7 / Proposition 7 - amortized rounds per delivery scales "
              "with D (not Delta^D), worst of seeds",
    )


if __name__ == "__main__":
    print(main())
