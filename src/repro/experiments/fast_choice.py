"""Experiment X2 — the §4 future work: a faster fair selection scheme.

The paper notes that the Δ^D worst case of Proposition 5 comes entirely
from the number of messages allowed to *pass* a given message at each hop,
and suggests keeping the protocol but changing ``choice_p(d)``.  This
experiment implements that suggestion: the ``"aged"`` policy serves the
requester whose waiting message has traveled farthest (its hop count — a
log(TTL)-bit extension of the flag), so fresh traffic can no longer
repeatedly overtake an old message.

Measured: worst-case probe latency (rounds) across the diameter of a line
under hotspot contention injected *close to the destination* (the fresh
traffic that FIFO lets pass), FIFO vs aged vs aged_fair.  Exactly-once
delivery is re-checked under each policy (strict ledger) — the
modification keeps safety, as the paper anticipates.

Two findings beyond the paper (both from the exhaustive liveness checker,
``tests/test_liveness.py``): the plain aged policy *starves generation
requests* under persistent pressure (a fresh request has the lowest age),
and the constructive fix — ``aged_fair``, which also ages requests by
waiting time — restores exhaustive starvation-freedom at the same
measured speed.
"""

from __future__ import annotations

from typing import Dict, List

from repro.app.workload import Workload
from repro.network.topologies import line_network
from repro.sim.metrics import RoundClock, delivery_latency_rounds
from repro.sim.reporting import format_table
from repro.sim.runner import build_simulation, delivered_and_drained
from repro.statemodel.trace import TraceRecorder


def _contended_probe_workload(n: int, per_source: int) -> Workload:
    """Probe 0 -> n-1 plus `per_source` messages from every intermediate
    processor to the same destination (all competing in one component)."""
    dest = n - 1
    subs = [(0, 0, "probe", dest)]
    for p in range(1, n - 1):
        for i in range(per_source):
            subs.append((0, p, f"bg{p}.{i}", dest))
    return Workload("near-dest contention", subs)


def run_one(policy: str, n: int, per_source: int, seed: int) -> Dict[str, object]:
    """One probe run under the given choice policy."""
    net = line_network(n)
    trace = TraceRecorder(kinds=("round",))  # round markers only; skips action Events
    sim = build_simulation(
        net,
        workload=_contended_probe_workload(n, per_source),
        routing_mode="static",
        trace=trace,
        seed=seed,
        ssmfp_options={"choice_policy": policy},
    )
    sim.run(2_000_000, halt=delivered_and_drained)
    assert sim.ledger.all_valid_delivered()
    clock = RoundClock(trace)
    latencies = delivery_latency_rounds(sim.ledger, clock)
    probe_uid = next(
        uid
        for uid in range(1, sim.ledger.generated_count + 1)
        if sim.ledger.generation_info(uid)
        and sim.ledger.generation_info(uid)[0] == 0
    )
    return {
        "policy": policy,
        "n": n,
        "per_source": per_source,
        "probe_rounds": latencies[probe_uid],
        "max_rounds": max(latencies.values()),
        "mean_rounds": sum(latencies.values()) / len(latencies),
    }


def run_fast_choice(
    sizes=(8, 12), loads=(2, 4), seeds=(1, 2, 3)
) -> List[Dict[str, object]]:
    """FIFO vs aged, worst seed per configuration."""
    rows: List[Dict[str, object]] = []
    for n in sizes:
        for per_source in loads:
            per_policy: Dict[str, Dict[str, object]] = {}
            for policy in ("fifo", "aged", "aged_fair"):
                worst = None
                for seed in seeds:
                    row = run_one(policy, n, per_source, seed)
                    if worst is None or row["probe_rounds"] > worst["probe_rounds"]:
                        worst = row
                per_policy[policy] = worst
                rows.append(worst)
            fifo = per_policy["fifo"]
            for variant in ("aged", "aged_fair"):
                rows.append(
                    {
                        "policy": f"speedup fifo/{variant}",
                        "n": n,
                        "per_source": per_source,
                        "probe_rounds": round(
                            fifo["probe_rounds"]
                            / max(per_policy[variant]["probe_rounds"], 1),
                            2,
                        ),
                    }
                )
    return rows


def main(sizes=(8, 12), loads=(2, 4), seeds=(1, 2, 3)) -> str:
    """Regenerate the X2 table."""
    return format_table(
        run_fast_choice(sizes, loads, seeds),
        columns=[
            "policy", "n", "per_source", "probe_rounds", "max_rounds",
            "mean_rounds",
        ],
        title="X2 - future work: age-priority choice vs the paper's FIFO "
              "(probe latency under near-destination contention, worst of seeds)",
    )


if __name__ == "__main__":
    print(main())
