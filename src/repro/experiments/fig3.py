"""Experiment F3 — Figure 3: the paper's worked execution, replayed.

The figure walks the protocol through thirteen configurations on a Δ = 3
network: routing tables start corrupted with a cycle between ``a`` and
``c`` for destination ``b``, an invalid message ``m'`` sits in ``b``'s
reception buffer, and ``c`` emits first ``m`` and then a valid ``m'``
carrying *the same useful information* as the invalid one.  The narration's
checkpoints — ``m`` recolored to 1 because 0 is taken, the valid ``m'``
recolored to 2, the color flag preventing the merge of the two ``m'``
messages, and all three messages delivered — are asserted configuration by
configuration.

The routing algorithm is the figure's abstract ``A``: tables are repaired
at exactly the step the narration repairs them (see
:mod:`repro.routing.scripted` for why a concrete eager ``A`` cannot replay
this figure under the priority composition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.app.higher_layer import HigherLayer
from repro.core.invariants import InvariantChecker
from repro.core.corruption import plant_invalid_message
from repro.core.ledger import DeliveryLedger
from repro.core.protocol import SSMFP
from repro.network.topologies import paper_figure3_network
from repro.routing.scripted import ScriptedRouting
from repro.statemodel.composition import PriorityStack
from repro.statemodel.daemon import AdversarialScriptDaemon
from repro.statemodel.scheduler import Simulator


@dataclass
class Fig3Report:
    """Everything the replay produced: per-configuration snapshots, the
    delivery log, and the assertions that were checked."""

    configurations: List[Dict[str, object]] = field(default_factory=list)
    deliveries: List[str] = field(default_factory=list)
    checks: List[str] = field(default_factory=list)


def run_fig3() -> Fig3Report:
    """Replay the figure; raises AssertionError if any narrated checkpoint
    fails, SpecificationViolation/InvariantViolation if the protocol
    misbehaves."""
    net = paper_figure3_network()
    a, b, c = net.id_of("a"), net.id_of("b"), net.id_of("c")

    routing = ScriptedRouting(net)
    routing.set_hop(a, b, c)  # the corrupted cycle a <-> c for destination b
    routing.set_hop(c, b, a)

    hl = HigherLayer(net.n)
    ledger = DeliveryLedger(strict=True)
    proto = SSMFP(net, routing, hl, ledger)
    checker = InvariantChecker(proto)

    # Initial configuration (0): the invalid message m' (payload "m2",
    # color 0) in b's reception buffer; c wants to send m then m'.
    invalid = plant_invalid_message(proto, b, b, "R", "m2", last=b, color=0)
    hl.submit(c, "m", b)
    hl.submit(c, "m2", b)

    script = [
        [(c, "R1", b)],                  # (1) c generates m, color 0
        [(c, "R2", b)],                  # (2) m -> bufE_c with color 1
        [(a, "R3", b), (c, "R1", b)],    # (3) m copied to a; c generates m'
        [(c, "R4", b)],                  # m's original erased at c ...
        [(c, "R2", b)],                  # (4) ... and m' -> bufE_c, color 2
        [(a, "R2", b)],                  # (5) tables repaired + m -> bufE_a
        [(b, "R2", b)],                  # (6..) the drain: invalid m' commits
        [(b, "R3", b)],                  #      valid m' copied into b (c is
                                         #      ahead of a in b's FIFO queue)
        [(c, "R4", b), (b, "R6", b)],    #      invalid m' delivered
        [(b, "R2", b)],
        [(b, "R6", b)],                  #      valid m' delivered
        [(b, "R3", b)],                  #      m copied into b
        [(a, "R4", b)],
        [(b, "R2", b)],
        [(b, "R6", b)],                  #      m delivered
    ]
    daemon = AdversarialScriptDaemon(script)
    sim = Simulator(net.n, PriorityStack([proto]), daemon)

    report = Fig3Report()

    def check(condition: bool, text: str) -> None:
        assert condition, f"figure-3 checkpoint failed: {text}"
        report.checks.append(text)

    def record(idx: int) -> None:
        snap = {"config": idx}
        snap.update(
            {
                key.replace(str(a), "a").replace(str(b), "b")
                    .replace(str(c), "c").replace("3", "d"): value
                for key, value in sorted(proto.dump().items())
            }
        )
        report.configurations.append(snap)

    record(0)
    check(proto.bufs.R[b][b].uid == invalid.uid, "invalid m' present at b in (0)")

    for idx in range(len(script)):
        if idx == 5:
            routing.repair_all()  # "routing tables are repaired during the next step"
        sim.step()
        checker.check()
        record(idx + 1)

        if idx == 0:
            check(
                proto.bufs.R[b][c].matches("m", c, 0),
                "(1) m generated in bufR_c(b) with color 0",
            )
        elif idx == 1:
            check(
                proto.bufs.E[b][c].matches("m", c, 1),
                "(2) m recolored to 1 in bufE_c(b) because 0 is forbidden",
            )
        elif idx == 2:
            check(
                proto.bufs.R[b][a].matches("m", c, 1),
                "(3) m copied to bufR_a(b), color kept",
            )
            check(
                proto.bufs.R[b][c].matches("m2", c, 0),
                "(3) valid m' generated at c with the invalid one's payload",
            )
        elif idx == 4:
            check(
                proto.bufs.E[b][c].matches("m2", c, 2),
                "(4) m' recolored to 2 (0 and 1 both forbidden)",
            )
        elif idx == 5:
            check(routing.is_correct(), "(5) routing tables repaired")
            check(
                proto.bufs.E[b][a].matches("m", a, 1),
                "(5) a forwarded m into its emission buffer",
            )
            valid_mp = proto.bufs.E[b][c]
            check(
                valid_mp is not None
                and not valid_mp.same_payload_color(proto.bufs.E[b][a]),
                "(5) colors keep the two same-payload messages distinct",
            )

    for pid, msg, step in hl.delivered:
        tag = "valid" if msg.valid else "invalid"
        report.deliveries.append(
            f"step {step}: {tag} message payload={msg.payload!r} delivered at "
            f"{net.name(pid)}"
        )

    check(ledger.valid_delivered_count == 2, "both valid messages delivered")
    check(ledger.invalid_delivery_count == 1, "the invalid message delivered once")
    check(ledger.all_valid_delivered(), "no valid message lost")
    check(proto.network_is_empty(), "network drained at the end")
    return report


def main() -> str:
    """Regenerate Figure 3 as a configuration-by-configuration transcript."""
    report = run_fig3()
    lines = ["F3 / Figure 3 - worked execution replay (destination b)"]
    for snap in report.configurations:
        idx = snap.pop("config")
        state = ", ".join(f"{k}={v}" for k, v in snap.items()) or "(empty)"
        lines.append(f"  ({idx:>2}) {state}")
    lines.append("")
    lines.extend(report.deliveries)
    lines.append("")
    lines.append(f"checked {len(report.checks)} narrated checkpoints, all hold")
    return "\n".join(lines)


if __name__ == "__main__":
    print(main())
