"""Registry of experiments: id -> (description, entry point).

Every entry point is a zero-argument callable returning the regenerated
table/transcript as a string.  ``run_experiment`` looks up and executes
one; the benchmark harness iterates over :data:`EXPERIMENTS`.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.experiments import (
    ablations,
    comparison,
    congestion,
    exhaustive,
    fast_choice,
    fig1,
    fig2,
    fig3,
    fig4,
    message_passing,
    open_problem,
    overhead,
    routing_study,
    sustained_faults,
    prop4,
    prop5,
    prop6,
    prop7,
)

#: Experiment id -> (one-line description, entry point).
EXPERIMENTS: Dict[str, Tuple[str, Callable[[], str]]] = {
    "F1": ("Figure 1: destination-based buffer graph", fig1.main),
    "F2": ("Figure 2: SSMFP two-buffer graph", fig2.main),
    "F3": ("Figure 3: worked execution replay", fig3.main),
    "F4": ("Figure 4: caterpillar taxonomy", fig4.main),
    "P4": ("Proposition 4: 2n invalid-delivery bound", prop4.main),
    "P5": ("Proposition 5: delivery time O(max(R_A, Delta^D))", prop5.main),
    "P6": ("Proposition 6: delay and waiting time", prop6.main),
    "P7": ("Proposition 7: amortized complexity O(max(R_A, D))", prop7.main),
    "T1": ("Comparison: SSMFP vs classical scheme", comparison.main),
    "T2": ("Overhead of snap-stabilization", overhead.main),
    "A1-A4": ("Ablations of colors, fairness, R5, literal R5", ablations.main),
    "X1": ("Open problem: buffers/processor vs orientation covers", open_problem.main),
    "X2": ("Future work: age-priority choice vs FIFO", fast_choice.main),
    "X3": ("Future work: the message-passing port", message_passing.main),
    "X4": ("Sustained transient faults: safety and cost", sustained_faults.main),
    "X5": ("Exhaustive model checking of small instances", exhaustive.main),
    "X6": ("Substrate study: the routing protocol's R_A", routing_study.main),
    "X7": ("Congestion: burst drain under growing load", congestion.main),
}


def run_experiment(exp_id: str) -> str:
    """Run one experiment by id and return its report."""
    try:
        _, entry = EXPERIMENTS[exp_id]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}") from None
    return entry()


def run_experiment_with_artifact(exp_id: str, jsonl_path: str) -> str:
    """Run one experiment and write its tables as a JSONL artifact.

    The experiments only print ASCII tables; this captures every table the
    run renders (via the reporting sink) and writes the rows — kind
    ``table_row``, stamped with their table's title — to ``jsonl_path``.
    Returns the usual report string.
    """
    from repro.obs.export import capture_tables, tables_to_rows, write_jsonl

    description = EXPERIMENTS[exp_id][0] if exp_id in EXPERIMENTS else ""
    with capture_tables() as captured:
        report = run_experiment(exp_id)
    write_jsonl(
        jsonl_path,
        tables_to_rows(captured),
        kind="table_row",
        name=exp_id,
        meta={"experiment": exp_id, "description": description},
    )
    return report


def main() -> str:
    """Run every experiment back to back (the full evaluation)."""
    parts = []
    for exp_id, (description, entry) in EXPERIMENTS.items():
        parts.append(f"=== {exp_id}: {description} ===")
        parts.append(entry())
        parts.append("")
    return "\n".join(parts)


if __name__ == "__main__":
    print(main())
