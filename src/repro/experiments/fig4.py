"""Experiment F4 — Figure 4: the caterpillar taxonomy.

Reconstructs the figure's four pictured cases (two caterpillars of type 1,
one of type 2, one of type 3) on the example network and classifies them
with :mod:`repro.core.caterpillar`; then tabulates how caterpillar type
counts evolve along a live execution (every stored valid message belongs to
a caterpillar at every configuration — the progress measure of Lemma 1).
"""

from __future__ import annotations

from typing import Dict, List

from repro.app.higher_layer import HigherLayer
from repro.core.caterpillar import all_caterpillars, caterpillars_at, classify_types
from repro.core.ledger import DeliveryLedger
from repro.core.protocol import SSMFP
from repro.network.topologies import line_network
from repro.routing.static import StaticRouting
from repro.sim.reporting import format_table
from repro.statemodel.composition import PriorityStack
from repro.statemodel.daemon import RoundRobinDaemon
from repro.statemodel.scheduler import Simulator


def _fresh(net):
    hl = HigherLayer(net.n)
    return SSMFP(net, StaticRouting(net), hl, DeliveryLedger())


def run_fig4_cases() -> List[Dict[str, object]]:
    """The four pictured caterpillar cases, classified."""
    net = line_network(5)
    rows: List[Dict[str, object]] = []

    # Case 1: type 1, locally generated (q = p).
    proto = _fresh(net)
    msg = proto.factory.generated("m", 1, 4, 0, 0)
    proto.ledger.record_generated(msg)
    proto.bufs.set_r(4, 1, msg)
    cats = caterpillars_at(proto, 1, 4)
    rows.append({"case": "type 1 (q = p)", "classified": cats[0].ctype, "buffers": len(cats[0].buffers)})

    # Case 2: type 1, received and source erased (bufE_q != (m,·,c)).
    proto = _fresh(net)
    msg = proto.factory.generated("m", 1, 4, 1, 0).recolored(1, 1)
    proto.ledger.record_generated(msg)
    proto.bufs.set_r(4, 2, msg.forwarded_copy(1))
    cats = caterpillars_at(proto, 2, 4)
    rows.append({"case": "type 1 (source erased)", "classified": cats[0].ctype, "buffers": len(cats[0].buffers)})

    # Case 3: type 2, emitted but not yet copied downstream.
    proto = _fresh(net)
    msg = proto.factory.generated("m", 2, 4, 1, 0).recolored(2, 1)
    proto.ledger.record_generated(msg)
    proto.bufs.set_e(4, 2, msg)
    cats = caterpillars_at(proto, 2, 4)
    rows.append({"case": "type 2", "classified": cats[0].ctype, "buffers": len(cats[0].buffers)})

    # Case 4: type 3, copied downstream, original not yet erased.
    proto = _fresh(net)
    msg = proto.factory.generated("m", 2, 4, 1, 0).recolored(2, 1)
    proto.ledger.record_generated(msg)
    proto.bufs.set_e(4, 2, msg)
    proto.bufs.set_r(4, 3, msg.forwarded_copy(2))
    cats = [c for c in caterpillars_at(proto, 2, 4) if c.ctype == 3]
    rows.append({"case": "type 3", "classified": cats[0].ctype, "buffers": len(cats[0].buffers)})
    return rows


def run_fig4_evolution(steps: int = 40) -> List[Dict[str, object]]:
    """Caterpillar type counts along a live execution (destination 4)."""
    net = line_network(5)
    proto = _fresh(net)
    for i in range(3):
        proto.hl.submit(0, f"m{i}", 4)
    sim = Simulator(net.n, PriorityStack([proto]), RoundRobinDaemon())
    rows: List[Dict[str, object]] = []
    for step in range(steps):
        t1, t2, t3 = classify_types(proto, 4)
        stored = sum(1 for *_x, m in proto.bufs.iter_messages() if m.valid)
        rows.append(
            {
                "step": step,
                "type1": t1,
                "type2": t2,
                "type3": t3,
                "stored_valid": stored,
                "delivered": proto.ledger.valid_delivered_count,
            }
        )
        if sim.step().terminal:
            break
    return rows


def main() -> str:
    """Regenerate Figure 4's cases and the caterpillar-evolution table."""
    cases = format_table(
        run_fig4_cases(),
        columns=["case", "classified", "buffers"],
        title="F4 / Figure 4 - the four pictured caterpillar cases",
    )
    evolution = format_table(
        [r for r in run_fig4_evolution() if r["step"] % 4 == 0],
        columns=["step", "type1", "type2", "type3", "stored_valid", "delivered"],
        title="caterpillar evolution along a live execution (every 4th step)",
    )
    return cases + "\n\n" + evolution


if __name__ == "__main__":
    print(main())
