"""Experiment X7 — congestion behavior under growing offered load.

The paper's analysis is worst-case per message (P5) and amortized (P7);
this study measures the *system* view: inject B messages at once and watch
the drain.  Reported per load level: rounds to drain, amortized rounds per
delivery, peak buffer occupancy, and throughput (deliveries per round).
The expected shape — and what the pipelining of the two-buffer scheme
delivers — is stable amortized cost and throughput as load grows (drain
time scales linearly with load, occupancy saturates at the buffer supply,
nothing collapses).
"""

from __future__ import annotations

from typing import Dict, List

from repro.app.workload import hotspot_workload, uniform_workload
from repro.network.topologies import grid_network, ring_network
from repro.sim.reporting import format_table
from repro.sim.runner import build_simulation, delivered_and_drained
from repro.sim.stats import jain_index


def run_one(
    topology: str, pattern: str, load: int, seed: int
) -> Dict[str, object]:
    """One burst-drain run at the given offered load."""
    net = ring_network(10) if topology == "ring" else grid_network(3, 4)
    if pattern == "hotspot":
        per_source = max(1, load // (net.n - 1))
        workload = hotspot_workload(net.n, dest=0, per_source=per_source, seed=seed)
    else:
        workload = uniform_workload(net.n, load, seed=seed)
    sim = build_simulation(net, workload=workload, routing_mode="static", seed=seed)
    peak = 0
    for _ in range(5_000_000):
        if delivered_and_drained(sim):
            break
        peak = max(peak, sim.forwarding.bufs.total_occupied())
        report = sim.step()
        if report.terminal and not sim._fast_forward_workload():
            break
    delivered = sim.ledger.valid_delivered_count
    rounds = max(sim.sim.round_count, 1)
    # Fairness across sources: Jain's index over per-source mean latency
    # (1.0 = perfectly even service — the `choice` queues at work).
    per_source: Dict[int, List[int]] = {}
    for uid in range(1, sim.ledger.generated_count + 1):
        info = sim.ledger.generation_info(uid)
        lat = sim.ledger.latency_steps(uid)
        if info is not None and lat is not None:
            per_source.setdefault(info[0], []).append(lat)
    fairness = jain_index(
        [sum(v) / len(v) for v in per_source.values() if v]
    )
    return {
        "topology": topology,
        "pattern": pattern,
        "offered": workload.size,
        "delivered": delivered,
        "drain_rounds": sim.sim.round_count,
        "amortized": round(rounds / max(delivered, 1), 2),
        "throughput": round(delivered / rounds, 2),
        "peak_buffers": peak,
        "fairness_jain": round(fairness, 3) if fairness is not None else None,
    }


def run_congestion(loads=(8, 16, 32, 64), seeds=(1, 2)) -> List[Dict[str, object]]:
    """Sweep load for both patterns on both topologies, worst seed by
    drain time."""
    rows: List[Dict[str, object]] = []
    for topology in ("ring", "grid"):
        for pattern in ("uniform", "hotspot"):
            for load in loads:
                worst = None
                for seed in seeds:
                    row = run_one(topology, pattern, load, seed)
                    if worst is None or row["drain_rounds"] > worst["drain_rounds"]:
                        worst = row
                rows.append(worst)
    return rows


def main(loads=(8, 16, 32, 64), seeds=(1, 2)) -> str:
    """Regenerate the X7 table."""
    return format_table(
        run_congestion(loads, seeds),
        columns=[
            "topology", "pattern", "offered", "delivered", "drain_rounds",
            "amortized", "throughput", "peak_buffers", "fairness_jain",
        ],
        title="X7 - burst drain under growing load: amortized cost and "
              "throughput stay stable (worst of seeds)",
    )


if __name__ == "__main__":
    print(main())
