"""Experiment P6 — Proposition 6: the delay (waiting time before the first
emission) and the waiting time (between consecutive emissions) are
O(max(R_A, Δ^D)) rounds.

A processor wanting to generate competes for its own reception buffer with
up to Δ forwarding neighbors (``choice`` fairness bounds the bypass by Δ,
and each bypass costs one buffer-release, itself bounded by Proposition 5).
The experiment saturates a middle processor with through-traffic while it
tries to emit a stream of its own messages, and measures, in rounds:

* the delay of the *first* generation (request raised -> R1 executed), and
* the maximum waiting time between consecutive generations,

in both the correct-tables and the corrupted-tables regimes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.app.workload import Workload
from repro.network.properties import diameter, max_degree
from repro.network.topologies import grid_network, line_network, ring_network, star_network
from repro.sim.metrics import RoundClock
from repro.sim.reporting import format_table
from repro.sim.runner import build_simulation, delivered_and_drained
from repro.statemodel.trace import TraceRecorder

TOPOLOGIES = {
    "line(7)": (lambda: line_network(7), 3),      # middle of the path
    "ring(8)": (lambda: ring_network(8), 0),
    "star(8)": (lambda: star_network(8), 0),      # the center itself
    "grid(3x3)": (lambda: grid_network(3, 3), 4),  # center of the mesh
}


def run_one(topology: str, corrupted: bool, seed: int, stream: int = 4) -> Dict[str, object]:
    """Saturate the chosen emitter with through-traffic; measure its
    generation delay and waiting times."""
    builder, emitter = TOPOLOGIES[topology]
    net = builder()
    # Through-traffic: every other processor sends 2 messages to the
    # emitter's neighbors (so the flows cross the emitter's buffers), and
    # the emitter itself streams `stream` messages to its farthest... use
    # a fixed remote destination: the highest id != emitter.
    dest = net.n - 1 if emitter != net.n - 1 else net.n - 2
    subs = []
    for i in range(stream):
        subs.append((0, emitter, f"own{i}", dest))
    for p in net.processors():
        if p in (emitter, dest):
            continue
        subs.append((0, p, f"bg{p}.0", dest))
        subs.append((0, p, f"bg{p}.1", dest))
    workload = Workload("saturation", subs)

    trace = TraceRecorder(kinds=("round",))  # round markers only; skips action Events
    sim = build_simulation(
        net,
        workload=workload,
        routing_corruption={"kind": "worst", "seed": seed} if corrupted else None,
        garbage={"fraction": 0.3, "seed": seed} if corrupted else None,
        trace=trace,
        seed=seed,
    )
    # Generation steps of the emitter's own messages, in order.
    gen_steps: List[int] = []
    request_step: Optional[int] = None
    stab_round: Optional[int] = None
    for _ in range(3_000_000):
        if delivered_and_drained(sim):
            break
        if request_step is None and sim.hl.request[emitter]:
            request_step = sim.sim.step_count
        if stab_round is None and sim.routing.is_correct():
            stab_round = sim.sim.round_count
        report = sim.step()
        if report.terminal and not sim._fast_forward_workload():
            break
    assert sim.ledger.all_valid_delivered()

    for uid in range(1, sim.ledger.generated_count + 1):
        info = sim.ledger.generation_info(uid)
        if info is not None and info[0] == emitter:
            gen_steps.append(info[2])
    gen_steps.sort()

    clock = RoundClock(trace)
    first_round = clock.round_of_step(gen_steps[0])
    delay = first_round - clock.round_of_step(request_step or 0)
    waits = [
        clock.round_of_step(b) - clock.round_of_step(a)
        for a, b in zip(gen_steps, gen_steps[1:])
    ]
    delta = max_degree(net)
    diam = diameter(net)
    return {
        "topology": topology,
        "delta": delta,
        "D": diam,
        "delta^D": delta ** diam,
        "tables": "corrupted" if corrupted else "correct",
        "R_A_rounds": stab_round if corrupted else 0,
        "delay_rounds": delay,
        "max_wait_rounds": max(waits) if waits else 0,
        "generated": len(gen_steps),
    }


def run_prop6(seeds=(1, 2, 3)) -> List[Dict[str, object]]:
    """Sweep topology x regime, worst seed kept."""
    rows: List[Dict[str, object]] = []
    for topology in TOPOLOGIES:
        for corrupted in (False, True):
            worst = None
            for seed in seeds:
                row = run_one(topology, corrupted, seed)
                key = row["delay_rounds"] + row["max_wait_rounds"]
                if worst is None or key > worst["delay_rounds"] + worst["max_wait_rounds"]:
                    worst = row
            bound = max(worst["R_A_rounds"] or 0, worst["delta^D"])
            worst["bound"] = bound
            worst["within"] = (
                worst["delay_rounds"] <= 3 * bound + 3 * worst["D"]
                and worst["max_wait_rounds"] <= 3 * bound + 3 * worst["D"]
            )
            rows.append(worst)
    return rows


def main(seeds=(1, 2, 3)) -> str:
    """Regenerate the Proposition-6 table."""
    return format_table(
        run_prop6(seeds),
        columns=[
            "topology", "delta", "D", "delta^D", "tables", "R_A_rounds",
            "delay_rounds", "max_wait_rounds", "generated", "bound", "within",
        ],
        title="P6 / Proposition 6 - generation delay and waiting time "
              "(rounds) under saturation, worst of seeds",
    )


if __name__ == "__main__":
    print(main())
