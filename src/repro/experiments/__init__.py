"""Experiments: one module per paper figure/proposition plus the
comparison, overhead and ablation studies.

Every module exposes ``run_*`` functions returning row dictionaries and a
``main()`` that prints the regenerated table via
:func:`repro.sim.reporting.format_table`.  :mod:`repro.experiments.registry`
maps experiment ids (F1-F4, P4-P7, T1, T2, A1-A4) to their entry points;
``benchmarks/`` wraps each entry point in a pytest-benchmark target.
"""

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "run_experiment"]
