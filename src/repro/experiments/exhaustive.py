"""Experiment X5 — exhaustive verification of small instances.

Model checking as evidence: for each small instance the checker enumerates
*every* configuration reachable under *every* daemon choice (including all
simultaneous selections) and checks the safety invariants in each.  The
table reports the state-space size and the verdict:

* the paper's protocol (corrected R5): zero violations on every instance —
  Lemmas 4-5 hold exhaustively, not just on sampled executions;
* the printed (literal) R5 and the colors-off ablation: the checker
  *finds the counterexample* — a concrete reachable execution losing a
  valid message — which is how the erratum in DESIGN.md was confirmed.

The closing ``line(4)`` instance (crossing flows plus planted garbage,
~54k states / ~434k transitions) is only practical with the snapshot
exploration engine — the legacy deepcopy engine needs several minutes for
it, which is why earlier revisions of this table stopped at 3-processor
lines.  See ``docs/verify.md`` and the X-SNAP benchmark.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.corruption import plant_invalid_message
from repro.network.topologies import line_network, paper_figure3_network
from repro.routing.selfstab_bfs import SelfStabilizingBFSRouting
from repro.sim.reporting import format_table
from repro.verify.modelcheck import ModelChecker

from repro.app.higher_layer import HigherLayer
from repro.core.ledger import DeliveryLedger
from repro.core.protocol import SSMFP
from repro.routing.static import StaticRouting


def _ssmfp(net, routing=None, **options):
    routing = routing if routing is not None else StaticRouting(net)
    return SSMFP(net, routing, HigherLayer(net.n), DeliveryLedger(), **options)


def _instances():
    def clean_pair():
        net = line_network(3)
        proto = _ssmfp(net)
        proto.hl.submit(0, "dup", 2)
        proto.hl.submit(0, "dup", 2)
        return proto

    def with_garbage():
        net = line_network(3)
        proto = _ssmfp(net)
        plant_invalid_message(proto, 2, 1, "E", "g", last=1, color=0)
        plant_invalid_message(proto, 0, 1, "R", "g", last=0, color=1)
        proto.hl.submit(0, "m", 2)
        return proto

    def corrupted_routing():
        net = line_network(3)
        routing = SelfStabilizingBFSRouting(net)
        routing.hop[2][1] = 0
        routing.dist[2][1] = 1
        proto = _ssmfp(net, routing=routing)
        proto.hl.submit(0, "m", 2)
        return proto, [routing]

    def crossing_fig3():
        net = paper_figure3_network()
        proto = _ssmfp(net)
        proto.hl.submit(net.id_of("a"), "x", net.id_of("d"))
        proto.hl.submit(net.id_of("c"), "y", net.id_of("b"))
        return proto

    def literal_r5():
        net = line_network(3)
        proto = _ssmfp(net, r5_literal=True)
        proto.hl.submit(0, "dup", 2)
        proto.hl.submit(0, "dup", 2)
        return proto

    def colors_off():
        net = line_network(3)
        proto = _ssmfp(net, enable_colors=False)
        for _ in range(3):
            proto.hl.submit(0, "dup", 2)
        return proto

    def line4_crossing_garbage():
        net = line_network(4)
        proto = _ssmfp(net)
        plant_invalid_message(proto, 3, 1, "R", "g1", last=0)
        plant_invalid_message(proto, 0, 2, "R", "g2", last=3)
        proto.hl.submit(0, "a", 3)
        proto.hl.submit(3, "b", 0)
        return proto

    return [
        ("line(3), 2 same-payload msgs", clean_pair, True),
        ("line(3), garbage in 2 buffers", with_garbage, True),
        ("line(3), corrupted tables + live A", corrupted_routing, True),
        ("fig3 net, crossing flows", crossing_fig3, True),
        ("line(3), LITERAL R5 (erratum)", literal_r5, False),
        ("line(3), colors OFF (A1)", colors_off, False),
        ("line(4), crossing + garbage", line4_crossing_garbage, True),
    ]


def run_exhaustive() -> List[Dict[str, object]]:
    """Model-check every instance; returns the verdict rows."""
    rows: List[Dict[str, object]] = []
    for name, make, expect_safe in _instances():
        result = ModelChecker(
            make, max_states=500_000, max_selection_width=20_000
        ).run()
        rows.append(
            {
                "instance": name,
                "states": result.states,
                "transitions": result.transitions,
                "terminal": result.terminal_states,
                "violations": len(result.violations),
                "expected": "safe" if expect_safe else "counterexample",
                "verdict": (
                    "SAFE (exhaustive)"
                    if result.ok
                    else f"counterexample: {result.violations[0][:60]}"
                ),
            }
        )
    return rows


def render(rows: List[Dict[str, object]]) -> str:
    """Check the verdicts and format the X5 table from precomputed rows."""
    for row in rows:
        if row["expected"] == "safe":
            assert row["violations"] == 0, row
        else:
            assert row["violations"] > 0, row
    return format_table(
        rows,
        columns=[
            "instance", "states", "transitions", "terminal",
            "violations", "verdict",
        ],
        title="X5 - exhaustive model checking: the protocol is safe in "
              "every reachable configuration; the ablated variants are not",
    )


def main() -> str:
    """Regenerate the X5 table."""
    return render(run_exhaustive())


if __name__ == "__main__":
    print(main())
