"""Experiment X6 — the substrate study: measuring R_A.

Every bound in the paper is phrased against ``R_A``, the stabilization
time of the assumed routing algorithm.  This experiment characterizes our
concrete ``A`` (self-stabilizing BFS distance-vector): rounds to
silence-and-correctness from worst-case corruption, across topology
families, sizes and daemons.  The shape to observe: convergence is
polynomial — near-linear (~2n rounds) under this corruption model, with a
count-to-cap worst case up to O(n^2) when false-low distances are planted
deep (see ``tests/test_routing_selfstab.py``) — and the daemon changes
constants, not the shape.
"""

from __future__ import annotations

from typing import Dict, List

from repro.network.properties import diameter, max_degree
from repro.network.topologies import (
    grid_network,
    line_network,
    random_connected_network,
    ring_network,
    star_network,
)
from repro.routing.corruption import corrupt_worst_case
from repro.routing.selfstab_bfs import SelfStabilizingBFSRouting
from repro.sim.reporting import format_table
from repro.statemodel.daemon import DistributedRandomDaemon, SynchronousDaemon
from repro.statemodel.scheduler import Simulator

_FAMILIES = {
    "line": line_network,
    "ring": ring_network,
    "star": star_network,
    "grid": lambda n: grid_network(max(2, round(n ** 0.5)), max(2, round(n ** 0.5))),
    "random": lambda n: random_connected_network(n, n, seed=5),
}


def run_one(family: str, n: int, daemon_name: str, seed: int) -> Dict[str, object]:
    """Rounds (and steps) to silence from worst-case corruption."""
    net = _FAMILIES[family](n)
    routing = SelfStabilizingBFSRouting(net)
    corrupt_worst_case(routing, seed=seed)
    daemon = (
        SynchronousDaemon()
        if daemon_name == "synchronous"
        else DistributedRandomDaemon(seed=seed)
    )
    sim = Simulator(net.n, routing, daemon)
    result = sim.run(max_steps=5_000_000)
    assert result.terminal and routing.is_correct()
    return {
        "family": family,
        "n": net.n,
        "delta": max_degree(net),
        "D": diameter(net),
        "daemon": daemon_name,
        "R_A_rounds": result.rounds,
        "steps": result.steps,
        "rounds_per_n": round(result.rounds / net.n, 2),
        "rounds_per_n2": round(result.rounds / net.n ** 2, 3),
    }


def run_routing_study(
    sizes=(6, 12, 18), seeds=(1, 2), daemons=("synchronous", "distributed")
) -> List[Dict[str, object]]:
    """Sweep family x size x daemon, worst seed kept."""
    rows: List[Dict[str, object]] = []
    for family in _FAMILIES:
        for n in sizes:
            for daemon_name in daemons:
                worst = None
                for seed in seeds:
                    row = run_one(family, n, daemon_name, seed)
                    if worst is None or row["R_A_rounds"] > worst["R_A_rounds"]:
                        worst = row
                rows.append(worst)
    return rows


def main(sizes=(6, 12, 18), seeds=(1, 2)) -> str:
    """Regenerate the X6 table."""
    return format_table(
        run_routing_study(sizes, seeds),
        columns=[
            "family", "n", "delta", "D", "daemon", "R_A_rounds",
            "steps", "rounds_per_n", "rounds_per_n2",
        ],
        title="X6 - the substrate's R_A: rounds to silence from worst-case "
              "corruption (worst of seeds)",
    )


if __name__ == "__main__":
    print(main())
