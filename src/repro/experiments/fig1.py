"""Experiment F1 — Figure 1: the destination-based buffer graph.

Regenerates the figure's object: the Merlin-Schweitzer buffer graph on the
Figure-1 network with correct tables.  Verifies (and tabulates) the
properties the figure illustrates — n weakly connected components, each
isomorphic to the routing tree T_d, globally acyclic — and contrasts with
the corrupted-tables case where the construction contains a cycle (the
hazard SSMFP tolerates).
"""

from __future__ import annotations

from typing import Dict, List

from repro.buffergraph.destination_based import destination_based_buffer_graph
from repro.network.topologies import paper_figure1_network
from repro.routing.scripted import ScriptedRouting
from repro.routing.static import StaticRouting
from repro.sim.reporting import format_table


def run_fig1() -> List[Dict[str, object]]:
    """One row per destination component, plus a corrupted-tables row."""
    net = paper_figure1_network()
    routing = StaticRouting(net)
    graph = destination_based_buffer_graph(net, routing)
    rows: List[Dict[str, object]] = []
    for d in net.processors():
        sub = graph.subgraph_for_destination(d)
        rows.append(
            {
                "destination": net.name(d),
                "buffers": len(sub.nodes),
                "edges": len(sub.edges),
                "tree_shaped": len(sub.edges) == len(sub.nodes) - 1,
                "acyclic": sub.is_acyclic(),
            }
        )
    # The corrupted contrast: a 2-cycle in the tables for destination a.
    corrupted = ScriptedRouting(net)
    b, e = net.id_of("b"), net.id_of("e")
    corrupted.set_hop(b, net.id_of("a"), e)
    corrupted.set_hop(e, net.id_of("a"), b)
    bad_graph = destination_based_buffer_graph(net, corrupted)
    rows.append(
        {
            "destination": "a (corrupted tables)",
            "buffers": len(bad_graph.subgraph_for_destination(0).nodes),
            "edges": len(bad_graph.subgraph_for_destination(0).edges),
            "tree_shaped": False,
            "acyclic": bad_graph.subgraph_for_destination(0).is_acyclic(),
        }
    )
    return rows


def render_component(dest_name: str = "b") -> str:
    """ASCII rendering of one component (the figure's right-hand side)."""
    net = paper_figure1_network()
    graph = destination_based_buffer_graph(net, StaticRouting(net))
    d = net.id_of(dest_name)
    sub = graph.subgraph_for_destination(d)
    lines = [f"destination-based buffer graph, component of destination {dest_name}:"]
    for u, v in sub.edges:
        lines.append(f"  b_{net.name(u.proc)}({dest_name}) -> b_{net.name(v.proc)}({dest_name})")
    return "\n".join(lines)


def main() -> str:
    """Regenerate Figure 1's table and rendering."""
    rows = run_fig1()
    out = format_table(
        rows,
        columns=["destination", "buffers", "edges", "tree_shaped", "acyclic"],
        title="F1 / Figure 1 - destination-based buffer graph on the 5-processor network",
    )
    return out + "\n\n" + render_component()


if __name__ == "__main__":
    print(main())
