"""Experiment T1 — SSMFP vs the literature baseline under corruption.

The paper's motivation made measurable: the classical destination-based
scheme (Merlin-Schweitzer) is correct in its native network-move model with
correct tables, but

* its naive port to the shared-memory state model ("ms-split") duplicates
  and, under moving tables, loses messages — the (source, 2-value-flag)
  identity cannot sequence the copy/erase handshake; and
* even the atomic-move variant ("ms-atomic") gives no exactly-once
  guarantee argument from arbitrary initial configurations (invalid
  garbage occupies its only buffer per destination and must drain first).

SSMFP delivers every message exactly once in every regime — the ledger
records zero violations — at the cost of the second buffer and the
handshake moves.
"""

from __future__ import annotations

from typing import Dict, List

from repro.app.workload import uniform_workload
from repro.network.topologies import random_connected_network
from repro.sim.reporting import format_table
from repro.sim.runner import (
    build_baseline_simulation,
    build_simulation,
    delivered_and_drained,
)


def run_one(
    protocol: str,
    corrupted: bool,
    seed: int,
    n: int = 8,
    messages: int = 16,
    max_steps: int = 400_000,
) -> Dict[str, object]:
    """One run of one protocol in one regime; returns the measured row."""
    net = random_connected_network(n, n // 2, seed=seed)
    workload = uniform_workload(net.n, messages, seed=seed)
    corruption = {"kind": "random", "fraction": 1.0, "seed": seed} if corrupted else None
    if protocol == "ssmfp":
        sim = build_simulation(
            net, workload=workload, routing_corruption=corruption,
            garbage={"fraction": 0.4, "seed": seed} if corrupted else None,
            ledger_strict=False, seed=seed,
        )
    else:
        sim = build_baseline_simulation(
            net, baseline="ms", atomic_moves=(protocol == "ms-atomic"),
            workload=workload, routing_corruption=corruption, seed=seed,
        )
    result = sim.run(max_steps, halt=delivered_and_drained, raise_on_limit=False)
    delivered = sim.ledger.valid_delivered_count
    outstanding = len(sim.ledger.outstanding_uids())
    duplications = sum("twice" in v for v in sim.ledger.violations)
    return {
        "protocol": protocol,
        "tables": "corrupted" if corrupted else "correct",
        "generated": sim.ledger.generated_count,
        "delivered_once": delivered,
        "duplications": duplications,
        "losses": sim.ledger.lost_count,
        "undelivered": outstanding,
        "violations": len(sim.ledger.violations),
        "finished": result.halted_by_predicate,
    }


def run_comparison(seeds=(1, 2, 3, 4, 5)) -> List[Dict[str, object]]:
    """Aggregate over seeds: totals per (protocol, regime)."""
    rows: List[Dict[str, object]] = []
    for protocol in ("ssmfp", "ms-atomic", "ms-split"):
        for corrupted in (False, True):
            total: Dict[str, object] = {
                "protocol": protocol,
                "tables": "corrupted" if corrupted else "correct",
                "generated": 0, "delivered_once": 0, "duplications": 0,
                "losses": 0, "undelivered": 0, "violations": 0,
                "runs_finished": 0,
            }
            for seed in seeds:
                row = run_one(protocol, corrupted, seed)
                for key in (
                    "generated", "delivered_once", "duplications",
                    "losses", "undelivered", "violations",
                ):
                    total[key] += row[key]
                total["runs_finished"] += int(row["finished"])
            total["runs"] = len(seeds)
            rows.append(total)
    return rows


def main(seeds=(1, 2, 3, 4, 5)) -> str:
    """Regenerate the T1 comparison table."""
    rows = run_comparison(seeds)
    ssmfp_rows = [r for r in rows if r["protocol"] == "ssmfp"]
    assert all(r["violations"] == 0 and r["losses"] == 0 for r in ssmfp_rows), (
        "SSMFP must never violate the specification"
    )
    return format_table(
        rows,
        columns=[
            "protocol", "tables", "generated", "delivered_once",
            "duplications", "losses", "undelivered", "violations",
            "runs_finished", "runs",
        ],
        title="T1 - exactly-once delivery: SSMFP vs the classical scheme "
              "(totals over seeds)",
    )


if __name__ == "__main__":
    print(main())
