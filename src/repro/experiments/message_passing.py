"""Experiment X3 — the §4 future work: SSMFP in the message-passing model.

The port (see :mod:`repro.messagepassing`) translates each state-model hop
into an OFFER/ACCEPT/RELEASE handshake over FIFO channels.  Two tables:

* **clean starts** — exactly-once delivery and handshake cost (wire
  messages per delivered application message ≈ 3 per hop) across
  topologies and adversarial schedules;
* **corrupted channels** — one garbage OFFER per run: the phantom wedges
  a reception buffer (no RELEASE will ever come) and valid traffic
  through it starves, while the same adversary cannot break safety
  (forged ACCEPTs are absorbed).  The liveness column is the measured
  face of the open problem.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.ledger import DeliveryLedger
from repro.messagepassing.forwarding import OFFER, build_mp_network
from repro.network.properties import all_pairs_distances
from repro.network.topologies import grid_network, line_network, ring_network, star_network
from repro.routing.static import StaticRouting
from repro.sim.reporting import format_table

TOPOLOGIES = {
    "line(6)": lambda: line_network(6),
    "ring(6)": lambda: ring_network(6),
    "star(6)": lambda: star_network(6),
    "grid(2x3)": lambda: grid_network(2, 3),
}


def run_clean(topology: str, seed: int, messages_per_proc: int = 2) -> Dict[str, object]:
    """Clean-start run: exactly-once plus handshake cost."""
    net = TOPOLOGIES[topology]()
    sim, nodes, ledger = build_mp_network(net, StaticRouting(net), seed=seed)
    dist = all_pairs_distances(net)
    total_hops = 0
    count = 0
    for p in net.processors():
        for i in range(messages_per_proc):
            dest = (p + 1 + i) % net.n
            if dest == p:
                continue
            nodes[p].submit(f"m{p}.{i}", dest)
            total_hops += dist[p][dest]
            count += 1
    sim.run(
        2_000_000,
        halt=lambda s: ledger.all_valid_delivered()
        and ledger.generated_count == count,
    )
    return {
        "topology": topology,
        "messages": count,
        "delivered_once": ledger.valid_delivered_count,
        "violations": 0,  # strict ledger would have raised
        "wire_msgs": sim.delivered_messages,
        "wire_per_hop": round(sim.delivered_messages / max(total_hops, 1), 2),
    }


def run_corrupted(topology: str, seed: int) -> Dict[str, object]:
    """One garbage OFFER in a channel toward processor 0 (destination 0):
    does valid traffic to 0 still arrive?"""
    net = TOPOLOGIES[topology]()
    ledger = DeliveryLedger(strict=False)
    sim, nodes, ledger = build_mp_network(
        net, StaticRouting(net), seed=seed, ledger=ledger
    )
    neighbor = net.neighbors(0)[0]
    sim.inject(neighbor, 0, (OFFER, 0, "phantom", -1, False))
    src = max(net.processors())
    nodes[src].submit("real", 0)
    sim.run(300_000, raise_on_limit=False)
    return {
        "topology": topology,
        "messages": 1,
        "delivered_once": ledger.valid_delivered_count,
        "starved": int(not ledger.all_valid_delivered()),
        "safety_violations": len(ledger.violations),
    }


def run_message_passing(seeds=(1, 2)) -> Dict[str, List[Dict[str, object]]]:
    """Both regimes across topologies (worst seed for the clean table)."""
    clean: List[Dict[str, object]] = []
    corrupted: List[Dict[str, object]] = []
    for topology in TOPOLOGIES:
        worst = None
        for seed in seeds:
            row = run_clean(topology, seed)
            if worst is None or row["wire_msgs"] > worst["wire_msgs"]:
                worst = row
        clean.append(worst)
        corrupted.append(run_corrupted(topology, seeds[0]))
    return {"clean": clean, "corrupted": corrupted}


def main(seeds=(1, 2)) -> str:
    """Regenerate the X3 tables."""
    result = run_message_passing(seeds)
    clean = format_table(
        result["clean"],
        columns=[
            "topology", "messages", "delivered_once", "violations",
            "wire_msgs", "wire_per_hop",
        ],
        title="X3a - message-passing port, clean starts: exactly-once and "
              "handshake cost (3 wire messages per hop + offers queued)",
    )
    corrupted = format_table(
        result["corrupted"],
        columns=[
            "topology", "messages", "delivered_once", "starved",
            "safety_violations",
        ],
        title="X3b - one garbage OFFER in a channel: liveness starves "
              "(the open problem), safety holds",
    )
    return clean + "\n\n" + corrupted


if __name__ == "__main__":
    print(main())
