"""Experiment P5 — Proposition 5: a message needs O(max(R_A, Δ^D)) rounds
to be delivered once generated.

Two regimes are measured, matching the proof's two cases:

* **correct tables + contention** — a probe message crosses the network's
  diameter while every other processor floods the same destination (the
  ``choice`` fairness lets up to Δ messages "pass" the probe per hop, which
  is where the Δ^D term comes from).  Measured probe delivery rounds must
  stay at least D and within the Δ^D envelope.
* **corrupted tables** — the same probe emitted while the routing protocol
  is still repairing worst-case-corrupted tables; delivery then tracks the
  measured stabilization time R_A (plus the forwarding term).

The table reports, per topology: n, Δ, D, Δ^D, measured R_A, and the probe
latencies (in rounds) in both regimes, with the proposition's bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.app.workload import Workload
from repro.network.graph import Network
from repro.network.properties import all_pairs_distances, diameter, max_degree
from repro.network.topologies import (
    grid_network,
    hypercube_network,
    line_network,
    lollipop_network,
    ring_network,
    star_network,
)
from repro.sim.metrics import RoundClock, delivery_latency_rounds
from repro.sim.reporting import format_table
from repro.sim.runner import build_simulation, delivered_and_drained
from repro.statemodel.trace import TraceRecorder

TOPOLOGIES: Dict[str, callable] = {
    "star(9)": lambda: star_network(9),
    "hypercube(3)": lambda: hypercube_network(3),
    "grid(3x3)": lambda: grid_network(3, 3),
    "ring(10)": lambda: ring_network(10),
    "line(8)": lambda: line_network(8),
    "lollipop(5,4)": lambda: lollipop_network(5, 4),
}


def _farthest_pair(net: Network) -> Tuple[int, int]:
    dist = all_pairs_distances(net)
    best = (0, 0)
    for u in net.processors():
        for v in net.processors():
            if dist[u][v] > dist[best[0]][best[1]]:
                best = (u, v)
    return best


def _probe_workload(net: Network, contention_per_source: int) -> Tuple[Workload, int, int]:
    """A probe across the diameter plus hotspot contention on its
    destination.  Returns (workload, source, dest); the probe is always
    uid 1 (first submission, sources sorted puts it first... we give it
    step 0 and every contender step 0 as well — the probe's uid is found
    via the ledger's generation info instead)."""
    src, dest = _farthest_pair(net)
    subs = [(0, src, "probe", dest)]
    for p in net.processors():
        if p in (src, dest):
            continue
        for i in range(contention_per_source):
            subs.append((0, p, f"bg{p}.{i}", dest))
    return Workload("probe+contention", subs), src, dest


def _probe_uid(sim, src: int, dest: int) -> Optional[int]:
    for uid in range(1, sim.ledger.generated_count + 1):
        info = sim.ledger.generation_info(uid)
        if info is not None and info[0] == src and info[1] == dest:
            return uid
    return None


def run_one(
    topology: str,
    corrupted: bool,
    seed: int,
    contention_per_source: int = 2,
) -> Dict[str, object]:
    """One probe run; returns the measured row."""
    net = TOPOLOGIES[topology]()
    workload, src, dest = _probe_workload(net, contention_per_source)
    trace = TraceRecorder(kinds=("round",))  # round markers only; skips action Events
    sim = build_simulation(
        net,
        workload=workload,
        routing_corruption=(
            {"kind": "worst", "seed": seed} if corrupted else None
        ),
        garbage={"fraction": 0.3, "seed": seed} if corrupted else None,
        trace=trace,
        seed=seed,
    )
    # Track the empirical R_A: the first round after which tables stay
    # correct (monitored every step).
    stabilization_round: Optional[int] = None
    for _ in range(3_000_000):
        if delivered_and_drained(sim):
            break
        if stabilization_round is None and sim.routing.is_correct():
            stabilization_round = sim.sim.round_count
        report = sim.step()
        if report.terminal and not sim._fast_forward_workload():
            break
    assert sim.ledger.all_valid_delivered()

    clock = RoundClock(trace)
    latencies = delivery_latency_rounds(sim.ledger, clock)
    uid = _probe_uid(sim, src, dest)
    delta = max_degree(net)
    diam = diameter(net)
    return {
        "topology": topology,
        "n": net.n,
        "delta": delta,
        "D": diam,
        "delta^D": delta ** diam,
        "tables": "corrupted" if corrupted else "correct",
        "R_A_rounds": stabilization_round if corrupted else 0,
        "probe_rounds": latencies.get(uid),
        "max_rounds": max(latencies.values()) if latencies else None,
    }


def run_prop5(seeds=(1, 2, 3)) -> List[Dict[str, object]]:
    """Sweep topology x {correct, corrupted}, worst seed kept."""
    rows: List[Dict[str, object]] = []
    for topology in TOPOLOGIES:
        for corrupted in (False, True):
            worst = None
            for seed in seeds:
                row = run_one(topology, corrupted, seed)
                if worst is None or (row["probe_rounds"] or 0) > (worst["probe_rounds"] or 0):
                    worst = row
            bound = max(worst["R_A_rounds"] or 0, worst["delta^D"])
            worst["bound_max(R_A,delta^D)"] = bound
            worst["within"] = (worst["probe_rounds"] or 0) <= 3 * bound + 3 * worst["D"]
            rows.append(worst)
    return rows


def main(seeds=(1, 2, 3)) -> str:
    """Regenerate the Proposition-5 table."""
    rows = run_prop5(seeds)
    return format_table(
        rows,
        columns=[
            "topology", "n", "delta", "D", "delta^D", "tables",
            "R_A_rounds", "probe_rounds", "max_rounds",
            "bound_max(R_A,delta^D)", "within",
        ],
        title="P5 / Proposition 5 - probe delivery time (rounds) vs "
              "max(R_A, Delta^D), worst of seeds",
    )


if __name__ == "__main__":
    print(main())
