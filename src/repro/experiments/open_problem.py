"""Experiment X1 — the §4 open problem, quantified.

The paper closes asking for the minimal number of buffers per processor
that still allows snap-stabilizing forwarding, pointing at the
acyclic-orientation-cover scheme (3 buffers on a ring, 2 on a tree —
but NP-hard to size in general).  This experiment measures, per topology:

* the SSMFP scheme's cost (2n buffers per processor — two per
  destination),
* the destination-based scheme's cost (n), and
* the orientation-cover cost our constructions/heuristic achieve
  against the actual shortest-path routing function (exact 2 on trees,
  exact 3 on rings, greedy elsewhere),

making concrete how much head-room the open problem is about.
"""

from __future__ import annotations

from typing import Dict, List

from repro.buffergraph.orientation_cover import (
    greedy_cover,
    orientation_cover_buffer_graph,
    ring_cover,
    tree_cover,
)
from repro.network.topologies import (
    grid_network,
    hypercube_network,
    line_network,
    random_connected_network,
    random_tree_network,
    ring_network,
    star_network,
)
from repro.routing.static import StaticRouting
from repro.sim.reporting import format_table

CASES = {
    "line(8)": lambda: line_network(8),
    "star(8)": lambda: star_network(8),
    "random_tree(9)": lambda: random_tree_network(9, seed=5),
    "ring(8)": lambda: ring_network(8),
    "ring(12)": lambda: ring_network(12),
    "grid(3x3)": lambda: grid_network(3, 3),
    "hypercube(3)": lambda: hypercube_network(3),
    "random(9,5)": lambda: random_connected_network(9, 5, seed=7),
}


def run_one(case: str, seed: int = 0) -> Dict[str, object]:
    """Buffer requirements of the three schemes on one topology."""
    net = CASES[case]()
    routing = StaticRouting(net)
    if net.m == net.n - 1:
        cover = tree_cover(net)
        method = "tree (exact)"
    elif net.m == net.n and all(net.degree(p) == 2 for p in net.processors()):
        cover = ring_cover(net, routing)
        method = "mountain (exact)"
    else:
        cover = greedy_cover(net, seed=seed, routing=routing)
        method = "greedy (heuristic)"
    assert cover.is_valid_for_routing(routing)
    graph = orientation_cover_buffer_graph(cover)
    assert graph.is_acyclic()
    return {
        "topology": case,
        "n": net.n,
        "ssmfp_buffers_per_proc": 2 * net.n,
        "dest_based_per_proc": net.n,
        "orientation_cover_per_proc": cover.size,
        "method": method,
        "savings_vs_ssmfp": f"{2 * net.n / cover.size:.1f}x",
    }


def run_open_problem(seed: int = 0) -> List[Dict[str, object]]:
    """All topologies."""
    return [run_one(case, seed=seed) for case in CASES]


def run_live(case: str, seed: int = 0, messages_per_proc: int = 2) -> Dict[str, object]:
    """Actually *run* the orientation-cover forwarding protocol: deliver a
    workload with only s buffers per processor (exactly-once, strict
    ledger), demonstrating the scheme works fault-free at the counts the
    open problem asks about."""
    from repro.app.higher_layer import HigherLayer
    from repro.baselines.orientation_forwarding import OrientationForwarding
    from repro.buffergraph.orientation_cover import greedy_cover, ring_cover, tree_cover
    from repro.core.ledger import DeliveryLedger
    from repro.statemodel.composition import PriorityStack
    from repro.statemodel.daemon import DistributedRandomDaemon
    from repro.statemodel.scheduler import Simulator

    net = CASES[case]()
    routing = StaticRouting(net)
    if net.m == net.n - 1:
        cover = tree_cover(net)
    elif net.m == net.n and all(net.degree(p) == 2 for p in net.processors()):
        cover = ring_cover(net, routing)
    else:
        cover = greedy_cover(net, seed=seed, routing=routing)
    hl = HigherLayer(net.n)
    proto = OrientationForwarding(net, routing, cover, hl, DeliveryLedger())
    sim = Simulator(net.n, PriorityStack([proto]), DistributedRandomDaemon(seed=seed))
    count = 0
    for p in net.processors():
        for i in range(messages_per_proc):
            dest = (p + 1 + i) % net.n
            if dest != p:
                hl.submit(p, f"m{p}.{i}", dest)
                count += 1
    for _ in range(1_000_000):
        if proto.ledger.valid_delivered_count >= count:
            break
        if sim.step().terminal:
            break
    return {
        "topology": case,
        "buffers_per_proc": cover.size,
        "messages": count,
        "delivered_once": proto.ledger.valid_delivered_count,
        "steps": sim.step_count,
    }


def main(seed: int = 0) -> str:
    """Regenerate the X1 tables."""
    rows = run_open_problem(seed)
    structure = format_table(
        rows,
        columns=[
            "topology", "n", "ssmfp_buffers_per_proc", "dest_based_per_proc",
            "orientation_cover_per_proc", "method", "savings_vs_ssmfp",
        ],
        title="X1a - buffers per processor: SSMFP (snap-stabilizing) vs the "
              "fault-free orientation-cover scheme (the open problem's gap)",
    )
    live = format_table(
        [run_live(case, seed=seed) for case in CASES],
        columns=[
            "topology", "buffers_per_proc", "messages", "delivered_once",
            "steps",
        ],
        title="X1b - the cover scheme running: exactly-once delivery at "
              "s buffers per processor (strict ledger, correct tables)",
    )
    return structure + "\n\n" + live


if __name__ == "__main__":
    print(main())
