"""Experiment T2 — the cost of snap-stabilization.

The paper's conclusion claims snap-stabilization "without significant over
cost in space or in time with respect to the fault-free algorithm".  This
experiment quantifies the over-cost against the fault-free baseline in its
own best case — correct constant tables, atomic network moves:

* space: 2n buffers per processor (SSMFP) vs n (destination-based);
* time: steps, rounds, and forwarding moves per delivered message.

The expected shape: a small constant factor (~2-3x moves — each hop is a
copy + erase + commit instead of one move), not an asymptotic gap.
"""

from __future__ import annotations

from typing import Dict, List

from repro.app.workload import uniform_workload
from repro.network.topologies import (
    grid_network,
    line_network,
    ring_network,
    star_network,
)
from repro.sim.metrics import moves_per_delivery
from repro.sim.reporting import format_table
from repro.sim.runner import (
    build_baseline_simulation,
    build_simulation,
    delivered_and_drained,
)

TOPOLOGIES = {
    "line(8)": lambda: line_network(8),
    "ring(8)": lambda: ring_network(8),
    "star(8)": lambda: star_network(8),
    "grid(3x3)": lambda: grid_network(3, 3),
}


def run_one(topology: str, protocol: str, seed: int, messages: int = 20) -> Dict[str, object]:
    """One correct-tables run; returns the cost row."""
    net = TOPOLOGIES[topology]()
    workload = uniform_workload(net.n, messages, seed=seed)
    if protocol == "ssmfp":
        sim = build_simulation(
            net, workload=workload, routing_mode="static", seed=seed
        )
        buffers = 2 * net.n * net.n
    else:
        sim = build_baseline_simulation(
            net, baseline="ms", workload=workload, routing_mode="static",
            seed=seed,
        )
        buffers = net.n * net.n
    result = sim.run(500_000, halt=delivered_and_drained)
    delivered = sim.ledger.valid_delivered_count
    return {
        "topology": topology,
        "protocol": protocol,
        "delivered": delivered,
        "steps": result.steps,
        "rounds": result.rounds,
        "moves_per_msg": moves_per_delivery(result.rule_counts, delivered),
        "buffers_total": buffers,
    }


def run_overhead(seeds=(1, 2, 3)) -> List[Dict[str, object]]:
    """Mean-of-seeds rows plus the SSMFP/baseline ratios."""
    rows: List[Dict[str, object]] = []
    for topology in TOPOLOGIES:
        per_protocol: Dict[str, Dict[str, float]] = {}
        for protocol in ("ms-atomic", "ssmfp"):
            acc = {"steps": 0.0, "rounds": 0.0, "moves_per_msg": 0.0, "delivered": 0.0}
            buffers = 0
            for seed in seeds:
                row = run_one(topology, "ssmfp" if protocol == "ssmfp" else "ms", seed)
                for key in acc:
                    acc[key] += row[key] or 0
                buffers = row["buffers_total"]
            mean = {k: v / len(seeds) for k, v in acc.items()}
            mean["buffers_total"] = buffers
            per_protocol[protocol] = mean
            rows.append({"topology": topology, "protocol": protocol, **mean})
        ms, sf = per_protocol["ms-atomic"], per_protocol["ssmfp"]
        rows.append(
            {
                "topology": topology,
                "protocol": "ratio ssmfp/ms",
                "steps": sf["steps"] / ms["steps"] if ms["steps"] else None,
                "rounds": sf["rounds"] / ms["rounds"] if ms["rounds"] else None,
                "moves_per_msg": (
                    sf["moves_per_msg"] / ms["moves_per_msg"]
                    if ms["moves_per_msg"]
                    else None
                ),
                "buffers_total": sf["buffers_total"] / ms["buffers_total"],
            }
        )
    return rows


def main(seeds=(1, 2, 3)) -> str:
    """Regenerate the T2 overhead table."""
    return format_table(
        run_overhead(seeds),
        columns=[
            "topology", "protocol", "delivered", "steps", "rounds",
            "moves_per_msg", "buffers_total",
        ],
        title="T2 - over-cost of snap-stabilization vs the fault-free "
              "baseline (correct tables, mean of seeds)",
    )


if __name__ == "__main__":
    print(main())
