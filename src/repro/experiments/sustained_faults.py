"""Experiment X4 — exactly-once under *sustained* transient faults.

The propositions assume one arbitrary initial configuration; operationally
transient faults recur.  This experiment re-corrupts a fraction of the live
routing tables every ``period`` steps while traffic flows, and measures:

* safety — zero losses/duplications regardless of fault pressure (the
  strict ledger checks every run);
* the price — rounds to drain vs the fault-free run, as fault pressure
  (injection frequency x corruption fraction) grows.

Faults stop at ``stop_after``; the drain deadline then exists again.
"""

from __future__ import annotations

from typing import Dict, List

from repro.app.workload import uniform_workload
from repro.network.topologies import grid_network, ring_network
from repro.sim.faults import RoutingFaultInjector
from repro.sim.reporting import format_table
from repro.sim.runner import build_simulation, delivered_and_drained


def run_one(
    topology: str,
    period: int,
    fraction: float,
    seed: int,
    messages: int = 16,
    stop_after: int = 500,
) -> Dict[str, object]:
    """One faulted run plus its fault-free twin; returns the cost row."""
    def assemble():
        net = ring_network(8) if topology == "ring" else grid_network(3, 3)
        return build_simulation(
            net,
            workload=uniform_workload(net.n, messages, seed=seed, spread_steps=60),
            routing_corruption={"kind": "random", "fraction": 1.0, "seed": seed},
            seed=seed,
        )

    # Fault-free twin (same initial corruption, no re-injection).
    baseline = assemble()
    baseline.run(2_000_000, halt=delivered_and_drained)

    faulted = assemble()
    injector = RoutingFaultInjector(
        faulted.routing, period=period, fraction=fraction,
        seed=seed, stop_after=stop_after,
    )
    injector.drive(faulted, max_steps=2_000_000, halt=delivered_and_drained)
    assert faulted.ledger.all_valid_delivered()  # strict ledger anyway

    return {
        "topology": topology,
        "period": period,
        "fraction": fraction,
        "injections": len(injector.injections),
        "delivered": faulted.ledger.valid_delivered_count,
        "violations": 0,
        "rounds_faulted": faulted.sim.round_count,
        "rounds_fault_free": baseline.sim.round_count,
        "slowdown": round(
            faulted.sim.round_count / max(baseline.sim.round_count, 1), 2
        ),
    }


def run_sustained_faults(seeds=(1, 2)) -> List[Dict[str, object]]:
    """Sweep fault pressure on rings and grids (worst seed by slowdown)."""
    rows: List[Dict[str, object]] = []
    for topology in ("ring", "grid"):
        for period, fraction in ((100, 0.3), (40, 0.6), (15, 1.0)):
            worst = None
            for seed in seeds:
                row = run_one(topology, period, fraction, seed)
                if worst is None or row["slowdown"] > worst["slowdown"]:
                    worst = row
            rows.append(worst)
    return rows


def main(seeds=(1, 2)) -> str:
    """Regenerate the X4 table."""
    return format_table(
        run_sustained_faults(seeds),
        columns=[
            "topology", "period", "fraction", "injections", "delivered",
            "violations", "rounds_faulted", "rounds_fault_free", "slowdown",
        ],
        title="X4 - sustained routing faults: safety never breaks, the "
              "price is rounds (worst of seeds)",
    )


if __name__ == "__main__":
    print(main())
