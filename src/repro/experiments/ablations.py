"""Experiments A1-A4 — ablating SSMFP's mechanisms one at a time.

Each ablation removes exactly one design element and exhibits the failure
that element exists to prevent:

* **A1 colors off** (``enable_colors=False``): ``color_p(d)`` returns 0
  always; R4 can confirm an emission against a *different* same-payload
  copy, erasing a message that was never forwarded — losses appear.
* **A2 unfair choice** (``choice_policy="fixed"``): the smallest-identity
  requester is always served first; a higher-identity requester behind a
  long stream waits linearly in the stream length (unbounded bypass),
  where the paper's FIFO queue bounds the bypass by Δ.
* **A3 R5 disabled** (``enable_r5=False``): after a routing change, the
  stale copy at the old next hop is never erased, R4's uniqueness check
  blocks forever, and the message wedges — the execution cannot drain.
* **A4 literal R5** (``r5_literal=True``): the printed rule without the
  ``q != p`` disambiguation erases a freshly generated message whose
  payload and color collide with the local emission buffer (the erratum
  documented in DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, List

from repro.app.higher_layer import HigherLayer
from repro.app.workload import adversarial_same_payload_workload
from repro.core.ledger import DeliveryLedger
from repro.core.protocol import SSMFP
from repro.network.topologies import line_network, ring_network, star_network
from repro.routing.scripted import ScriptedRouting
from repro.sim.reporting import format_table
from repro.sim.runner import build_simulation, delivered_and_drained
from repro.statemodel.composition import PriorityStack
from repro.statemodel.daemon import AdversarialScriptDaemon, RoundRobinDaemon
from repro.statemodel.scheduler import Simulator


def run_a1_colors(seeds=range(12)) -> Dict[str, object]:
    """A1: same-payload streams under corrupted tables, colors disabled
    vs enabled.  Counts specification violations (losses/duplications)."""
    results = {"ablation": "A1 colors off"}
    for colors_on in (True, False):
        losses = 0
        undelivered = 0
        for seed in seeds:
            net = ring_network(6)
            sim = build_simulation(
                net,
                workload=adversarial_same_payload_workload(0, 3, 8),
                routing_corruption={"kind": "random", "fraction": 1.0, "seed": seed},
                garbage={"fraction": 0.5, "seed": seed},
                ledger_strict=False,
                seed=seed,
                ssmfp_options={"enable_colors": colors_on},
            )
            sim.run(300_000, halt=delivered_and_drained, raise_on_limit=False)
            losses += sim.ledger.lost_count
            undelivered += len(sim.ledger.outstanding_uids())
        key = "with_colors" if colors_on else "without_colors"
        results[f"losses_{key}"] = losses
        results[f"undelivered_{key}"] = undelivered
    return results


def run_a2_fairness(stream_lengths=(2, 6, 12, 20)) -> List[Dict[str, object]]:
    """A2: one victim message behind a growing stream from a smaller-id
    competitor, FIFO vs fixed-priority choice.  Reports the victim's
    generation->delivery step latency; fixed should grow with the stream,
    FIFO should not."""
    rows: List[Dict[str, object]] = []
    for policy in ("fifo", "fixed"):
        for k in stream_lengths:
            net = star_network(4)  # center 0, leaves 1, 2, 3
            hl = HigherLayer(net.n)
            ledger = DeliveryLedger()
            from repro.routing.static import StaticRouting

            proto = SSMFP(
                net, StaticRouting(net), hl, ledger, choice_policy=policy
            )
            # Leaf 1 streams k messages to leaf 3; leaf 2's single message
            # to leaf 3 is the victim (identity 2 > 1 loses under "fixed").
            for i in range(k):
                hl.submit(1, f"s{i}", 3)
            hl.submit(2, "victim", 3)
            sim = Simulator(net.n, PriorityStack([proto]), RoundRobinDaemon())
            victim_delivery = None
            for _ in range(100_000):
                if sim.step().terminal:
                    break
                for pid, msg, step in hl.delivered:
                    if msg.payload == "victim":
                        victim_delivery = step
                if victim_delivery is not None:
                    break
            rows.append(
                {
                    "ablation": "A2 choice policy",
                    "policy": policy,
                    "competing_stream": k,
                    "victim_delivered_at_step": victim_delivery,
                }
            )
    return rows


def run_a3_r5() -> List[Dict[str, object]]:
    """A3: a deterministic routing change mid-handshake; with R5 the stale
    copy is cleaned and the message arrives, without R5 the execution
    wedges with the message undelivered."""
    rows: List[Dict[str, object]] = []
    for r5_on in (True, False):
        net = line_network(4)
        # Give processor 1 a second route for destination 3 by adding the
        # edge 1-3: use a custom network.
        from repro.network.graph import Network

        net = Network(4, [(0, 1), (1, 2), (2, 3), (1, 3)])
        routing = ScriptedRouting(net)
        routing.set_hop(1, 3, 2)  # initially via 2 (the long way)
        hl = HigherLayer(net.n)
        ledger = DeliveryLedger()
        proto = SSMFP(net, routing, hl, ledger, enable_r5=r5_on)
        hl.submit(1, "m", 3)
        script = [
            [(1, "R1", 3)],
            [(1, "R2", 3)],
            [(2, "R3", 3)],  # copy sits at the old next hop 2
        ]
        daemon = AdversarialScriptDaemon(script)
        sim = Simulator(net.n, PriorityStack([proto]), daemon)
        for _ in range(len(script)):
            sim.step()
        routing.repair_all()  # next hop of 1 for 3 becomes 3 directly
        wedged = False
        for _ in range(10_000):
            report = sim.step()
            if report.terminal:
                wedged = not ledger.all_valid_delivered()
                break
        rows.append(
            {
                "ablation": "A3 R5 disabled" if not r5_on else "A3 R5 enabled",
                "delivered": ledger.valid_delivered_count,
                "wedged": wedged,
                "stale_copy_remains": proto.bufs.R[3][2] is not None,
            }
        )
    return rows


def run_a4_literal_r5(seeds=range(20)) -> Dict[str, object]:
    """A4: the printed R5 vs the corrected rule on same-payload streams.
    Counts messages lost by the literal rule (the erratum)."""
    results = {"ablation": "A4 literal R5"}
    for literal in (False, True):
        losses = 0
        for seed in seeds:
            net = line_network(5)
            sim = build_simulation(
                net,
                workload=adversarial_same_payload_workload(0, 4, 10),
                ledger_strict=False,
                seed=seed,
                routing_mode="static",
                ssmfp_options={"r5_literal": literal},
            )
            sim.run(300_000, halt=delivered_and_drained, raise_on_limit=False)
            losses += sim.ledger.lost_count
        results["losses_literal" if literal else "losses_corrected"] = losses
    return results


def main() -> str:
    """Regenerate all four ablation tables."""
    parts = [
        format_table([run_a1_colors()], title="A1 - disabling the color flag"),
        format_table(
            run_a2_fairness(),
            columns=[
                "ablation", "policy", "competing_stream",
                "victim_delivered_at_step",
            ],
            title="A2 - unfair choice policy starves the victim",
        ),
        format_table(
            run_a3_r5(),
            columns=["ablation", "delivered", "wedged", "stale_copy_remains"],
            title="A3 - without R5 a routing change wedges the handshake",
        ),
        format_table([run_a4_literal_r5()], title="A4 - the literal-R5 erratum"),
    ]
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(main())
