"""Experiment F2 — Figure 2: SSMFP's two-buffer graph for one destination.

Regenerates the figure's object: the reception/emission buffer graph for
destination ``b`` on the example network, with the structural checks the
adaptation relies on (acyclicity with correct tables, one R->E edge per
processor, one E->R edge per non-destination processor, 2n buffers).
"""

from __future__ import annotations

from typing import Dict, List

from repro.buffergraph.ssmfp_graph import ssmfp_buffer_graph
from repro.network.topologies import paper_figure1_network
from repro.routing.scripted import ScriptedRouting
from repro.routing.static import StaticRouting
from repro.sim.reporting import format_table


def run_fig2(dest_name: str = "b") -> List[Dict[str, object]]:
    """Structural summary of the two-buffer component for one destination,
    with correct and with cyclically corrupted tables."""
    net = paper_figure1_network()
    d = net.id_of(dest_name)
    rows: List[Dict[str, object]] = []

    graph = ssmfp_buffer_graph(net, StaticRouting(net))
    sub = graph.subgraph_for_destination(d)
    rows.append(
        {
            "tables": "correct",
            "buffers": len(sub.nodes),
            "internal_edges": sum(1 for u, v in sub.edges if u.proc == v.proc),
            "forward_edges": sum(1 for u, v in sub.edges if u.proc != v.proc),
            "acyclic": sub.is_acyclic(),
        }
    )

    corrupted = ScriptedRouting(net)
    a, c = net.id_of("a"), net.id_of("e")
    corrupted.set_hop(a, d, c)
    corrupted.set_hop(c, d, a)
    bad = ssmfp_buffer_graph(net, corrupted).subgraph_for_destination(d)
    rows.append(
        {
            "tables": "corrupted (a<->e cycle)",
            "buffers": len(bad.nodes),
            "internal_edges": sum(1 for u, v in bad.edges if u.proc == v.proc),
            "forward_edges": sum(1 for u, v in bad.edges if u.proc != v.proc),
            "acyclic": bad.is_acyclic(),
        }
    )
    return rows


def render_component(dest_name: str = "b") -> str:
    """ASCII rendering of the component (the figure's right-hand side)."""
    net = paper_figure1_network()
    d = net.id_of(dest_name)
    graph = ssmfp_buffer_graph(net, StaticRouting(net))
    sub = graph.subgraph_for_destination(d)
    lines = [f"SSMFP buffer graph, component of destination {dest_name}:"]
    for u, v in sub.edges:
        lines.append(
            f"  buf{u.kind}_{net.name(u.proc)}({dest_name}) -> "
            f"buf{v.kind}_{net.name(v.proc)}({dest_name})"
        )
    return "\n".join(lines)


def main() -> str:
    """Regenerate Figure 2's table and rendering."""
    out = format_table(
        run_fig2(),
        columns=["tables", "buffers", "internal_edges", "forward_edges", "acyclic"],
        title="F2 / Figure 2 - SSMFP two-buffer graph for destination b",
    )
    return out + "\n\n" + render_component()


if __name__ == "__main__":
    print(main())
