"""The paper's adapted two-buffer graph of Figure 2.

For each destination ``d`` every processor contributes a reception buffer
``bufR_p(d)`` and an emission buffer ``bufE_p(d)``.  Allowed moves:

* internal forwarding  ``bufR_p(d) -> bufE_p(d)``  (rule R2), and
* forwarding           ``bufE_p(d) -> bufR_q(d)``  with ``q = nextHop_p(d)``
  (rules R3/R4), for ``p != d``.

With correct tables each destination component is the tree ``T_d`` with
every node split into an R->E pair — still acyclic, but now every hop is a
copy-then-erase handshake, which is what lets SSMFP control duplication and
merging while tables move underneath it.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.buffergraph.graph import BufferGraph, BufferId
from repro.network.graph import Network
from repro.routing.table import RoutingService


def ssmfp_buffer_graph(net: Network, routing: RoutingService) -> BufferGraph:
    """Build the Figure-2 construction from the given routing tables."""
    nodes: List[BufferId] = []
    edges: List[Tuple[BufferId, BufferId]] = []
    for d in net.processors():
        for p in net.processors():
            r = BufferId(p, d, "R")
            e = BufferId(p, d, "E")
            nodes.extend((r, e))
            edges.append((r, e))
        for p in net.processors():
            if p == d:
                continue
            q = routing.next_hop(p, d)
            if q != p:
                edges.append((BufferId(p, d, "E"), BufferId(q, d, "R")))
    return BufferGraph(nodes, edges)
