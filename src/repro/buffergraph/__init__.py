"""Buffer graphs and deadlock-free controllers (Merlin & Schweitzer).

The paper's deadlock-freedom story rests on restricting message moves to the
edges of an acyclic directed graph over the network's buffers.  This package
provides the generic :class:`BufferGraph`, the classic "destination-based"
construction of Figure 1 (one buffer per (processor, destination)), the
paper's adapted two-buffer construction of Figure 2 (reception + emission
buffer per (processor, destination)), acyclicity checking, and the
deadlock-free controller predicate.
"""

from repro.buffergraph.graph import BufferGraph, BufferId
from repro.buffergraph.destination_based import destination_based_buffer_graph
from repro.buffergraph.ssmfp_graph import ssmfp_buffer_graph
from repro.buffergraph.controller import DeadlockFreeController
from repro.buffergraph.orientation_cover import (
    Orientation,
    OrientationCover,
    cover_from_order,
    greedy_cover,
    orientation_cover_buffer_graph,
    ring_cover,
    tree_cover,
)

__all__ = [
    "BufferGraph",
    "BufferId",
    "destination_based_buffer_graph",
    "ssmfp_buffer_graph",
    "DeadlockFreeController",
    "Orientation",
    "OrientationCover",
    "cover_from_order",
    "greedy_cover",
    "orientation_cover_buffer_graph",
    "ring_cover",
    "tree_cover",
]
