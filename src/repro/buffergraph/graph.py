"""Generic directed graphs over buffers.

A buffer is identified by a :class:`BufferId` — ``(processor, destination,
kind)`` where ``kind`` distinguishes reception/emission buffers in the
paper's construction ("single" for one-buffer schemes).  The class offers
the graph-theoretic queries the deadlock-freedom argument needs: acyclicity,
topological order, connected components, and per-destination subgraphs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import TopologyError
from repro.types import DestId, ProcId


@dataclass(frozen=True, order=True)
class BufferId:
    """Identity of one buffer: owner processor, target destination, kind.

    ``kind`` is one of ``"single"``, ``"R"`` (reception) or ``"E"``
    (emission).
    """

    proc: ProcId
    dest: DestId
    kind: str

    def __repr__(self) -> str:
        return f"buf{self.kind}_{self.proc}({self.dest})"


class BufferGraph:
    """A directed graph whose nodes are buffers.

    Edges are the *allowed message moves*: a message stored in buffer ``b``
    may only be copied into a buffer ``b'`` with ``(b, b') ∈ edges``.
    """

    def __init__(
        self,
        nodes: Iterable[BufferId],
        edges: Iterable[Tuple[BufferId, BufferId]],
    ) -> None:
        self._nodes: Tuple[BufferId, ...] = tuple(sorted(set(nodes)))
        node_set = set(self._nodes)
        succ: Dict[BufferId, List[BufferId]] = {b: [] for b in self._nodes}
        pred: Dict[BufferId, List[BufferId]] = {b: [] for b in self._nodes}
        edge_set: Set[Tuple[BufferId, BufferId]] = set()
        for u, v in edges:
            if u not in node_set or v not in node_set:
                raise TopologyError(f"edge ({u!r}, {v!r}) references unknown buffer")
            if u == v:
                raise TopologyError(f"self-loop on buffer {u!r}")
            if (u, v) in edge_set:
                continue
            edge_set.add((u, v))
            succ[u].append(v)
            pred[v].append(u)
        for lst in succ.values():
            lst.sort()
        for lst in pred.values():
            lst.sort()
        self._succ = succ
        self._pred = pred
        self._edges: Tuple[Tuple[BufferId, BufferId], ...] = tuple(sorted(edge_set))

    # -- accessors -----------------------------------------------------------

    @property
    def nodes(self) -> Tuple[BufferId, ...]:
        """All buffers, sorted."""
        return self._nodes

    @property
    def edges(self) -> Tuple[Tuple[BufferId, BufferId], ...]:
        """All allowed moves, sorted."""
        return self._edges

    def successors(self, b: BufferId) -> List[BufferId]:
        """Buffers a message in ``b`` may move to."""
        return self._succ[b]

    def predecessors(self, b: BufferId) -> List[BufferId]:
        """Buffers that may feed ``b``."""
        return self._pred[b]

    # -- structure -------------------------------------------------------------

    def is_acyclic(self) -> bool:
        """True iff the graph has no directed cycle (the Merlin-Schweitzer
        precondition for deadlock freedom)."""
        return self.topological_order() is not None

    def topological_order(self) -> Optional[List[BufferId]]:
        """A topological order of the buffers, or None if cyclic."""
        indeg = {b: len(self._pred[b]) for b in self._nodes}
        queue = deque(sorted(b for b, k in indeg.items() if k == 0))
        order: List[BufferId] = []
        while queue:
            b = queue.popleft()
            order.append(b)
            for s in self._succ[b]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    queue.append(s)
        return order if len(order) == len(self._nodes) else None

    def find_cycle(self) -> Optional[List[BufferId]]:
        """Some directed cycle, or None if acyclic (diagnostics)."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[BufferId, int] = {b: WHITE for b in self._nodes}
        parent: Dict[BufferId, Optional[BufferId]] = {}

        for root in self._nodes:
            if color[root] != WHITE:
                continue
            stack: List[Tuple[BufferId, int]] = [(root, 0)]
            color[root] = GRAY
            parent[root] = None
            while stack:
                node, idx = stack[-1]
                succs = self._succ[node]
                if idx < len(succs):
                    stack[-1] = (node, idx + 1)
                    nxt = succs[idx]
                    if color[nxt] == GRAY:
                        # Reconstruct the cycle from `node` back to `nxt`.
                        cycle = [node]
                        cur = node
                        while cur != nxt:
                            cur = parent[cur]  # type: ignore[assignment]
                            cycle.append(cur)
                        cycle.reverse()
                        return cycle
                    if color[nxt] == WHITE:
                        color[nxt] = GRAY
                        parent[nxt] = node
                        stack.append((nxt, 0))
                else:
                    color[node] = BLACK
                    stack.pop()
        return None

    def weakly_connected_components(self) -> List[FrozenSet[BufferId]]:
        """Connected components ignoring edge direction, sorted by their
        smallest buffer.  The destination-based construction yields exactly
        one component per destination."""
        seen: Set[BufferId] = set()
        comps: List[FrozenSet[BufferId]] = []
        for b in self._nodes:
            if b in seen:
                continue
            comp: Set[BufferId] = set()
            stack = [b]
            seen.add(b)
            while stack:
                x = stack.pop()
                comp.add(x)
                for y in self._succ[x] + self._pred[x]:
                    if y not in seen:
                        seen.add(y)
                        stack.append(y)
            comps.append(frozenset(comp))
        comps.sort(key=lambda c: min(c))
        return comps

    def subgraph_for_destination(self, dest: DestId) -> "BufferGraph":
        """The component of the construction serving destination ``dest``."""
        nodes = [b for b in self._nodes if b.dest == dest]
        node_set = set(nodes)
        edges = [(u, v) for u, v in self._edges if u in node_set and v in node_set]
        return BufferGraph(nodes, edges)

    def __repr__(self) -> str:
        return f"BufferGraph(nodes={len(self._nodes)}, edges={len(self._edges)})"
