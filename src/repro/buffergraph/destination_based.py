"""The "destination-based" buffer graph of Figure 1 (Merlin & Schweitzer).

One buffer ``b_p(d)`` per (processor, destination); for each destination
``d`` the component is isomorphic to the routing tree ``T_d``: an edge
``b_p(d) -> b_q(d)`` whenever ``q`` is the parent of ``p`` in ``T_d``.
Because each component is a tree oriented toward its root, the whole graph
is acyclic, which is what makes the scheme deadlock-free.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.buffergraph.graph import BufferGraph, BufferId
from repro.network.graph import Network
from repro.routing.table import RoutingService


def destination_based_buffer_graph(
    net: Network, routing: RoutingService
) -> BufferGraph:
    """Build the Figure-1 construction from the given routing tables.

    With *correct* tables the result is acyclic (n tree components).  With
    corrupted tables it may contain cycles — exactly the hazard the paper's
    protocol exists to survive; :meth:`BufferGraph.is_acyclic` exposes the
    difference.
    """
    nodes: List[BufferId] = [
        BufferId(p, d, "single") for d in net.processors() for p in net.processors()
    ]
    edges: List[Tuple[BufferId, BufferId]] = []
    for d in net.processors():
        for p in net.processors():
            if p == d:
                continue
            q = routing.next_hop(p, d)
            if q != p:
                edges.append((BufferId(p, d, "single"), BufferId(q, d, "single")))
    return BufferGraph(nodes, edges)
