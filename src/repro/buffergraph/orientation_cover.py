"""Acyclic-orientation buffer covers (§4's open problem, made executable).

The paper's conclusion points at the *other* Merlin-Schweitzer buffer
graph, built from an **acyclic orientation cover**: a sequence
``O_1, ..., O_s`` of acyclic orientations of the network such that every
ordered pair (u, v) admits a u->v walk whose edge directions follow the
orientations in sequence order (classes never decrease along the walk).
Each processor then needs only ``s`` buffers — one per class — instead of
one (or two) per destination: 3 suffice on a ring, 2 on a tree, while
computing the minimal ``s`` for general graphs is NP-hard (Kralovic &
Ruzicka, cited as [19]).

This module provides:

* :class:`Orientation` — a validated acyclic orientation of a network;
* :class:`OrientationCover` — a sequence of orientations with the
  coverage check (layered class-monotone reachability, exactly the
  buffer-graph semantics);
* constructors: :func:`tree_cover` (s = 2), :func:`ring_cover` (s = 3),
  :func:`cover_from_order` (the linear-order scheme: alternating
  up/down orientations, extended until every pair is covered), and
  :func:`greedy_cover` (seeded search over vertex orders — a heuristic,
  since the exact problem is NP-hard);
* :func:`orientation_cover_buffer_graph` — the resulting buffer graph
  (acyclic by construction: within a class the orientation is acyclic,
  across classes the index only grows).

Making *this* scheme snap-stabilizing is the paper's open problem; here it
is provided in its fault-free form so experiment X1 can quantify the
buffer savings the open problem is about.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.buffergraph.graph import BufferGraph, BufferId
from repro.errors import TopologyError
from repro.network.graph import Network
from repro.types import ProcId

DirectedEdge = Tuple[ProcId, ProcId]


class Orientation:
    """An acyclic orientation of a network's edges.

    ``directed`` must orient *every* edge of ``net`` exactly once; the
    induced digraph must be acyclic (checked eagerly).
    """

    def __init__(self, net: Network, directed: Sequence[DirectedEdge]) -> None:
        needed = set(net.edges)
        seen = set()
        succ: List[List[ProcId]] = [[] for _ in range(net.n)]
        for u, v in directed:
            key = (u, v) if u < v else (v, u)
            if key not in needed:
                raise TopologyError(f"({u}, {v}) is not an edge of the network")
            if key in seen:
                raise TopologyError(f"edge {key} oriented twice")
            seen.add(key)
            succ[u].append(v)
        if seen != needed:
            missing = sorted(needed - seen)
            raise TopologyError(f"edges left unoriented: {missing[:5]}")
        self._net = net
        self._succ = tuple(tuple(sorted(s)) for s in succ)
        self._arcs: FrozenSet[DirectedEdge] = frozenset(directed)
        if self._has_cycle():
            raise TopologyError("orientation is not acyclic")

    @property
    def network(self) -> Network:
        """The oriented network."""
        return self._net

    def successors(self, p: ProcId) -> Tuple[ProcId, ...]:
        """Out-neighbors of ``p`` under this orientation."""
        return self._succ[p]

    def allows(self, u: ProcId, v: ProcId) -> bool:
        """True iff the edge {u, v} is oriented u -> v."""
        return (u, v) in self._arcs

    def reversed(self) -> "Orientation":
        """The same edges, all flipped (also acyclic)."""
        return Orientation(self._net, [(v, u) for u, v in self._arcs])

    def _has_cycle(self) -> bool:
        indeg = [0] * self._net.n
        for p in range(self._net.n):
            for q in self._succ[p]:
                indeg[q] += 1
        queue = deque(p for p in range(self._net.n) if indeg[p] == 0)
        seen = 0
        while queue:
            p = queue.popleft()
            seen += 1
            for q in self._succ[p]:
                indeg[q] -= 1
                if indeg[q] == 0:
                    queue.append(q)
        return seen != self._net.n


class OrientationCover:
    """A sequence of acyclic orientations used as buffer classes."""

    def __init__(self, orientations: Sequence[Orientation]) -> None:
        if not orientations:
            raise TopologyError("a cover needs at least one orientation")
        nets = {o.network for o in orientations}
        if len(nets) != 1:
            raise TopologyError("all orientations must orient the same network")
        self._orientations = list(orientations)
        self._net = orientations[0].network

    @property
    def network(self) -> Network:
        """The covered network."""
        return self._net

    @property
    def size(self) -> int:
        """``s`` — buffers per processor under the scheme."""
        return len(self._orientations)

    @property
    def orientations(self) -> List[Orientation]:
        """The class orientations, in sequence order."""
        return list(self._orientations)

    def reachable_classes(self, u: ProcId) -> Dict[ProcId, int]:
        """For every processor v, the smallest class at which a
        class-monotone walk from (u, class 0) reaches v; absent if
        unreachable."""
        s = self.size
        best: Dict[ProcId, int] = {u: 0}
        # BFS over (processor, class) with monotone class moves.
        visited = [[False] * s for _ in range(self._net.n)]
        visited[u][0] = True
        queue = deque([(u, 0)])
        while queue:
            p, c = queue.popleft()
            if p not in best or c < best[p]:
                best[p] = min(best.get(p, c), c)
            # Move along the current class.
            for q in self._orientations[c].successors(p):
                if not visited[q][c]:
                    visited[q][c] = True
                    queue.append((q, c))
            # Climb (possibly without moving).
            if c + 1 < s and not visited[p][c + 1]:
                visited[p][c + 1] = True
                queue.append((p, c + 1))
        return best

    def covers(self, u: ProcId, v: ProcId) -> bool:
        """True iff some class-monotone walk leads from u to v (the weak,
        any-walk notion — enough for reachability, not for a routing
        function's chosen paths; see :meth:`covers_path`)."""
        return v in self.reachable_classes(u)

    def covers_path(self, path: Sequence[ProcId]) -> bool:
        """True iff this *specific* walk is class-monotone coverable.

        Greedy smallest-feasible-class assignment is optimal for a fixed
        path: each edge takes the least class >= the current one whose
        orientation allows it.
        """
        c = 0
        for u, v in zip(path, path[1:]):
            while c < self.size and not self._orientations[c].allows(u, v):
                c += 1
            if c == self.size:
                return False
        return True

    def is_valid(self) -> bool:
        """True iff every ordered pair is covered by *some* walk."""
        for u in self._net.processors():
            reach = self.reachable_classes(u)
            if len(reach) != self._net.n:
                return False
        return True

    def is_valid_for_routing(self, routing) -> bool:
        """True iff every routing path (following ``next_hop`` from every
        source to every destination) is class-monotone coverable — the
        property the forwarding scheme actually needs."""
        return not self.uncovered_routing_pairs(routing)

    def uncovered_routing_pairs(self, routing) -> List[Tuple[ProcId, ProcId]]:
        """Ordered pairs whose routing path the cover cannot carry."""
        missing: List[Tuple[ProcId, ProcId]] = []
        for d in self._net.processors():
            for u in self._net.processors():
                if u == d:
                    continue
                path = routing_path(self._net, routing, u, d)
                if path is None or not self.covers_path(path):
                    missing.append((u, d))
        return missing

    def uncovered_pairs(self) -> List[Tuple[ProcId, ProcId]]:
        """All ordered pairs no class-monotone walk serves (diagnostics)."""
        missing: List[Tuple[ProcId, ProcId]] = []
        for u in self._net.processors():
            reach = self.reachable_classes(u)
            for v in self._net.processors():
                if v not in reach:
                    missing.append((u, v))
        return missing


# -- constructors ------------------------------------------------------------


def routing_path(
    net: Network, routing, u: ProcId, d: ProcId, limit: Optional[int] = None
) -> Optional[List[ProcId]]:
    """The walk u -> d obtained by following ``next_hop``; None if it does
    not reach d within ``limit`` hops (cyclic tables)."""
    limit = limit if limit is not None else net.n
    path = [u]
    p = u
    for _ in range(limit):
        if p == d:
            return path
        p = routing.next_hop(p, d)
        path.append(p)
    return path if p == d else None


def _orient_by_order(net: Network, rank: Sequence[int], up: bool) -> Orientation:
    arcs = []
    for u, v in net.edges:
        if (rank[u] < rank[v]) == up:
            arcs.append((u, v))
        else:
            arcs.append((v, u))
    return Orientation(net, arcs)


def cover_from_order(
    net: Network,
    order: Sequence[ProcId],
    routing=None,
    max_classes: int = 32,
) -> OrientationCover:
    """The linear-order scheme: alternate the up-orientation and the
    down-orientation induced by ``order``, adding classes until valid.

    With ``routing`` given, validity means every routing path is covered
    (what the forwarding scheme needs — a ring then costs 3 classes);
    without, it means plain reachability coverage.  Always succeeds for
    connected graphs within ``max_classes`` classes (a path of length L
    alternates direction at most L times); the resulting size depends
    heavily on the order — :func:`greedy_cover` searches over orders.
    """
    if sorted(order) != list(net.processors()):
        raise TopologyError("order must be a permutation of the processors")
    rank = [0] * net.n
    for i, p in enumerate(order):
        rank[p] = i
    up = _orient_by_order(net, rank, up=True)
    down = _orient_by_order(net, rank, up=False)
    orientations: List[Orientation] = []
    for i in range(max_classes):
        orientations.append(up if i % 2 == 0 else down)
        cover = OrientationCover(orientations)
        valid = (
            cover.is_valid_for_routing(routing)
            if routing is not None
            else cover.is_valid()
        )
        if valid:
            return cover
    raise TopologyError(
        f"no valid cover within {max_classes} classes for this order"
    )


def tree_cover(net: Network, root: ProcId = 0) -> OrientationCover:
    """s = 2 for trees: orient toward the root, then away from it.

    Any tree path climbs toward the root then descends — one up-segment,
    one down-segment.
    """
    if net.m != net.n - 1:
        raise TopologyError("tree_cover needs a tree (m == n - 1)")
    from repro.network.properties import bfs_distances

    depth = bfs_distances(net, root)
    arcs = []
    for u, v in net.edges:
        # Orient toward the root: deeper endpoint -> shallower endpoint.
        if depth[u] > depth[v]:
            arcs.append((u, v))
        else:
            arcs.append((v, u))
    up = Orientation(net, arcs)
    return OrientationCover([up, up.reversed()])


def ring_cover(net: Network, routing=None) -> OrientationCover:
    """The literature's 3-buffer ring construction.

    Ranks form a *mountain* around the cycle — ascending for half the
    ring, descending for the other half — so peak and valley are
    (near-)antipodal and every shortest arc crosses at most one of them,
    i.e. alternates direction at most once.  The cover [up, down, up]
    (size 3) then carries every shortest-path route; 2 classes cannot
    (arcs crossing the valley start downhill, arcs crossing the peak
    start uphill — no 2-class sequence serves both).
    """
    n = net.n
    if net.m != n or any(net.degree(p) != 2 for p in net.processors()):
        raise TopologyError("ring_cover needs a cycle graph")
    if routing is None:
        from repro.routing.static import StaticRouting

        routing = StaticRouting(net)
    # Walk the cycle once to get the circular sequence of processors.
    cycle = [0, net.neighbors(0)[0]]
    while len(cycle) < n:
        prev, cur = cycle[-2], cycle[-1]
        nxt = [q for q in net.neighbors(cur) if q != prev][0]
        cycle.append(nxt)
    half = n // 2
    rank = [0] * n
    for pos, p in enumerate(cycle):
        rank[p] = 2 * pos if pos <= half else 2 * (n - pos) - 1
    order = sorted(net.processors(), key=lambda p: rank[p])
    return cover_from_order(net, order, routing=routing)


def greedy_cover(
    net: Network, seed: int = 0, attempts: int = 16, routing=None
) -> OrientationCover:
    """Heuristic minimal cover: try several seeded vertex orders (identity,
    BFS orders from a few roots, random shuffles) and keep the smallest
    cover found.  The exact minimum is NP-hard [19]; this is the
    best-effort the open problem allows.  Pass ``routing`` to require
    coverage of the routing function's actual paths.
    """
    import random

    from repro.network.properties import bfs_distances

    rng = random.Random(seed)
    candidates: List[List[ProcId]] = [list(net.processors())]
    for root in list(net.processors())[: min(4, net.n)]:
        dist = bfs_distances(net, root)
        candidates.append(sorted(net.processors(), key=lambda p: (dist[p], p)))
    for _ in range(attempts):
        order = list(net.processors())
        rng.shuffle(order)
        candidates.append(order)
    best: Optional[OrientationCover] = None
    for order in candidates:
        try:
            cover = cover_from_order(net, order, routing=routing)
        except TopologyError:
            continue
        if best is None or cover.size < best.size:
            best = cover
    if best is None:
        raise TopologyError("no valid cover found (should not happen on connected graphs)")
    return best


def orientation_cover_buffer_graph(cover: OrientationCover) -> BufferGraph:
    """The buffer graph of the scheme: ``s`` buffers per processor
    (``BufferId(p, class_index, "class")``); moves follow the class
    orientation, climb to the next class (with or without moving), and
    the whole graph is acyclic by construction.
    """
    net = cover.network
    s = cover.size
    nodes = [
        BufferId(p, c, "class") for p in net.processors() for c in range(s)
    ]
    edges: List[Tuple[BufferId, BufferId]] = []
    for c, orientation in enumerate(cover.orientations):
        for p in net.processors():
            for q in orientation.successors(p):
                edges.append((BufferId(p, c, "class"), BufferId(q, c, "class")))
            if c + 1 < s:
                edges.append((BufferId(p, c, "class"), BufferId(p, c + 1, "class")))
    return BufferGraph(nodes, edges)
