"""The deadlock-free controller predicate (Merlin & Schweitzer).

A *controller* decides, per move, whether the network may perform it.  The
buffer-graph controller permits a generation/forwarding move into buffer
``b`` only if the move follows an edge of the buffer graph, which — when the
graph is acyclic — guarantees the network never deadlocks: messages in
buffers that are maximal in the topological order can always advance or be
consumed, and induction down the order frees everyone.

This module exposes the predicate plus a liveness certificate used by tests:
given an acyclic graph and any buffer occupancy, there is always at least
one allowed move or consumable message unless the network is empty.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.buffergraph.graph import BufferGraph, BufferId
from repro.errors import TopologyError


class DeadlockFreeController:
    """Move-permission oracle over a buffer graph.

    Parameters
    ----------
    graph:
        The buffer graph; must be acyclic (checked eagerly — a cyclic graph
        cannot certify deadlock freedom and is rejected).
    """

    def __init__(self, graph: BufferGraph) -> None:
        order = graph.topological_order()
        if order is None:
            cycle = graph.find_cycle()
            raise TopologyError(
                f"buffer graph is cyclic, cannot build a deadlock-free "
                f"controller; example cycle: {cycle}"
            )
        self._graph = graph
        self._rank: Dict[BufferId, int] = {b: i for i, b in enumerate(order)}

    @property
    def graph(self) -> BufferGraph:
        """The underlying buffer graph."""
        return self._graph

    def rank(self, b: BufferId) -> int:
        """Position of ``b`` in the certified topological order."""
        return self._rank[b]

    def permits_move(self, src: BufferId, dst: BufferId) -> bool:
        """True iff forwarding from ``src`` into ``dst`` follows a graph
        edge (and hence strictly increases topological rank)."""
        return dst in self._graph.successors(src)

    def permits_generation(self, into: BufferId) -> bool:
        """Generation is allowed into any buffer of the graph (the scheme
        constrains *forwarding*; generation feeds the sources)."""
        return into in self._rank

    def certify_progress(
        self,
        occupancy: Dict[BufferId, object],
        consumable: Callable[[BufferId], bool],
    ) -> Optional[Tuple[str, BufferId]]:
        """Exhibit one available move given an occupancy map.

        ``occupancy`` maps occupied buffers to their content; ``consumable``
        says whether the message in a buffer is at its destination.  Returns
        ``("consume", b)`` or ``("forward", b)`` for some buffer that can
        act, or None iff the network is empty.  For an acyclic graph this
        never returns None while occupied buffers exist — the deadlock-
        freedom theorem — and the unit tests assert exactly that over random
        occupancies.
        """
        if not occupancy:
            return None
        # Scan occupied buffers from the top of the order downward: the
        # occupied buffer with the greatest rank can always consume or move
        # into some successor (successors have greater rank; the maximal
        # occupied one has only unoccupied successors... choose greedily).
        occupied = sorted(occupancy, key=lambda b: self._rank[b], reverse=True)
        for b in occupied:
            if consumable(b):
                return ("consume", b)
            for s in self._graph.successors(b):
                if s not in occupancy:
                    return ("forward", b)
        # All occupied, none consumable, no empty successor anywhere: only
        # possible if some occupied buffer has no successors and is not
        # consumable — a *routing* fault, not a controller deadlock.
        return None
