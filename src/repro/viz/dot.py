"""Graphviz DOT export for networks and buffer graphs.

Pure string generation (no graphviz dependency): feed the output to
``dot -Tpng`` or any online renderer to get the paper's figures as actual
pictures.
"""

from __future__ import annotations

from typing import Optional

from repro.buffergraph.graph import BufferGraph
from repro.network.graph import Network
from repro.routing.table import RoutingService
from repro.types import DestId


def network_to_dot(net: Network, name: str = "network") -> str:
    """The undirected network as a DOT graph."""
    lines = [f"graph {name} {{", "  node [shape=circle];"]
    for p in net.processors():
        lines.append(f'  n{p} [label="{net.name(p)}"];')
    for u, v in net.edges:
        lines.append(f"  n{u} -- n{v};")
    lines.append("}")
    return "\n".join(lines)


def routing_to_dot(
    net: Network, routing: RoutingService, dest: DestId, name: str = "routing"
) -> str:
    """The next-hop functional graph for one destination (the tree T_d —
    or, with corrupted tables, the cyclic mess Figure 3 starts from)."""
    lines = [f"digraph {name} {{", "  node [shape=circle];"]
    for p in net.processors():
        shape = ' shape=doublecircle' if p == dest else ""
        lines.append(f'  n{p} [label="{net.name(p)}"{shape}];')
    for p in net.processors():
        if p == dest:
            continue
        lines.append(f"  n{p} -> n{routing.next_hop(p, dest)};")
    lines.append("}")
    return "\n".join(lines)


def buffer_graph_to_dot(
    graph: BufferGraph,
    net: Optional[Network] = None,
    name: str = "buffers",
) -> str:
    """A buffer graph (e.g. one destination component of the Figure-1/2
    constructions) as a DOT digraph.  Pass ``net`` to label buffers with
    processor names instead of ids."""

    def label(buf) -> str:
        proc = net.name(buf.proc) if net is not None else str(buf.proc)
        if buf.kind == "single":
            return f"b_{proc}({buf.dest})"
        if buf.kind == "class":
            return f"b{buf.dest}_{proc}"  # dest field holds the class index
        return f"buf{buf.kind}_{proc}({buf.dest})"

    def node_id(buf) -> str:
        return f"b_{buf.proc}_{buf.dest}_{buf.kind}"

    lines = [f"digraph {name} {{", "  node [shape=box];"]
    for buf in graph.nodes:
        lines.append(f'  {node_id(buf)} [label="{label(buf)}"];')
    for u, v in graph.edges:
        lines.append(f"  {node_id(u)} -> {node_id(v)};")
    lines.append("}")
    return "\n".join(lines)
