"""ASCII visualization of networks, buffer graphs and configurations.

Renders the same objects the paper draws: the network, one destination's
buffer-graph component, and the buffer occupancy of a configuration
(Figure 3's diagrams), plus a compact execution timeline.
"""

from repro.viz.ascii_art import (
    render_component_state,
    render_execution_strip,
    render_network,
    render_routing_tables,
)
from repro.viz.dot import buffer_graph_to_dot, network_to_dot, routing_to_dot

__all__ = [
    "render_component_state",
    "render_execution_strip",
    "render_network",
    "render_routing_tables",
    "buffer_graph_to_dot",
    "network_to_dot",
    "routing_to_dot",
]
