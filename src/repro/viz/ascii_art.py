"""ASCII renderers.

All renderers return plain strings; nothing here touches protocol state.
The configuration renderer mirrors the paper's Figure-3 diagrams: one box
per processor showing its reception and emission buffer for one
destination component.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.protocol import SSMFP
from repro.network.graph import Network
from repro.routing.table import RoutingService
from repro.statemodel.message import Message
from repro.types import DestId


def render_network(net: Network) -> str:
    """Adjacency-list rendering of the network with names and degrees."""
    lines = [f"network: n={net.n}, m={net.m}"]
    for p in net.processors():
        neighbors = ", ".join(net.name(q) for q in net.neighbors(p))
        lines.append(f"  {net.name(p)} -- {neighbors}")
    return "\n".join(lines)


def _fmt_msg(msg: Optional[Message]) -> str:
    if msg is None:
        return "......."
    tag = "" if msg.valid else "!"
    text = f"{tag}{msg.payload}/{msg.color}"
    return text[:7].center(7)


def render_component_state(proto: SSMFP, d: DestId) -> str:
    """One destination component as a row of processor boxes.

    Each box shows ``[R: <payload>/<color> | E: <payload>/<color>]``;
    dots mean empty, a leading ``!`` marks an invalid message — the
    textual form of the paper's Figure-3 diagrams.
    """
    net = proto.net
    top: List[str] = []
    row_r: List[str] = []
    row_e: List[str] = []
    for p in net.processors():
        label = net.name(p) + ("*" if p == d else "")
        top.append(label.center(11))
        row_r.append(f"R:{_fmt_msg(proto.bufs.R[d][p])}")
        row_e.append(f"E:{_fmt_msg(proto.bufs.E[d][p])}")
    lines = [
        f"destination {net.name(d)} component:",
        " ".join(top),
        " ".join(f"[{cell}]" for cell in row_r),
        " ".join(f"[{cell}]" for cell in row_e),
    ]
    return "\n".join(lines)


def render_routing_tables(
    net: Network, routing: RoutingService, dest: Optional[DestId] = None
) -> str:
    """``nextHop`` table(s): one line per destination (or just ``dest``)."""
    dests = [dest] if dest is not None else list(net.processors())
    lines = ["next-hop tables:"]
    for d in dests:
        hops = ", ".join(
            f"{net.name(p)}->{net.name(routing.next_hop(p, d))}"
            for p in net.processors()
            if p != d
        )
        lines.append(f"  dest {net.name(d)}: {hops}")
    return "\n".join(lines)


def render_execution_strip(
    snapshots: Sequence[str], per_row: int = 1
) -> str:
    """Join configuration renderings into a numbered strip (the figure's
    (0), (1), ... panels)."""
    parts: List[str] = []
    for i, snap in enumerate(snapshots):
        parts.append(f"({i})")
        parts.append(snap)
        parts.append("")
    return "\n".join(parts)
