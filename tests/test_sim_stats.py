"""Tests for the summary-statistics helpers."""

import statistics

import pytest

from repro.sim.stats import percentile, ratio_of_means, summarize, summarize_prefixed


class TestPercentile:
    def test_single_value(self):
        assert percentile([7], 50) == 7
        assert percentile([7], 99) == 7

    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_extremes(self):
        data = list(range(1, 101))
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 100
        assert percentile(data, 90) == 90

    def test_unsorted_input(self):
        assert percentile([5, 1, 9, 3], 50) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_bad_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 150)

    def test_agrees_with_statistics_median_on_odd_samples(self):
        data = [9, 2, 5, 7, 1]
        assert percentile(data, 50) == statistics.median(data)


class TestSummarize:
    def test_full_summary(self):
        s = summarize([4, 1, 3, 2])
        assert s["n"] == 4
        assert s["min"] == 1 and s["max"] == 4
        assert s["mean"] == 2.5
        assert s["p50"] == 2

    def test_empty_sample_marker(self):
        assert summarize([]) == {"n": 0}

    def test_prefixed_keys(self):
        s = summarize_prefixed([1, 2], "lat")
        assert s["lat_n"] == 2
        assert "lat_p90" in s


class TestJainIndex:
    def test_all_equal_is_one(self):
        from repro.sim.stats import jain_index

        assert jain_index([5, 5, 5]) == pytest.approx(1.0)

    def test_maximally_unfair_is_one_over_n(self):
        from repro.sim.stats import jain_index

        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_empty_and_zero_none(self):
        from repro.sim.stats import jain_index

        assert jain_index([]) is None
        assert jain_index([0, 0]) is None

    def test_bounds(self):
        from repro.sim.stats import jain_index

        v = jain_index([1, 2, 3, 4, 100])
        assert 0 < v <= 1


class TestRatioOfMeans:
    def test_basic(self):
        assert ratio_of_means([4, 6], [1, 3]) == 2.5

    def test_empty_none(self):
        assert ratio_of_means([], [1]) is None

    def test_zero_denominator_none(self):
        assert ratio_of_means([1], [0]) is None
