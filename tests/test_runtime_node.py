"""Tests for the live node's hop protocol (deduplication, handshakes)."""

import asyncio

import pytest

from repro.network.topologies import line_network
from repro.routing.static import StaticRouting
from repro.runtime.node import RuntimeNode, RuntimeParams
from repro.runtime.transport import LocalTransport
from repro.runtime.wire import ACK, RACK, ack_msg, data_msg, rack_msg, rel_msg


def make_node(pid=1, n=2):
    """A node whose wire handlers we drive by hand (no event loop)."""
    net = line_network(n)
    transport = LocalTransport(net)
    node = RuntimeNode(pid, net, StaticRouting(net), transport)
    return node


class TestReceptionDedup:
    def test_expected_seq_accepted_and_acked(self):
        node = make_node()
        out = []
        node._handle(0, data_msg(1, 1, 11, "m", True), out)
        assert node.buf_r[1] is not None and node.buf_r[1].uid == 11
        assert out == [(0, ack_msg(1, 1))]

    def test_duplicate_data_reacked_not_reaccepted(self):
        node = make_node()
        out = []
        node._handle(0, data_msg(1, 1, 11, "m", True), out)
        before = node.buf_r[1]
        node._handle(0, data_msg(1, 1, 11, "m", True), out)
        assert node.buf_r[1] is before  # same record object: no re-accept
        assert node.counters["dup_data_acked"] == 1
        assert out == [(0, ack_msg(1, 1)), (0, ack_msg(1, 1))]

    def test_future_seq_dropped(self):
        node = make_node()
        out = []
        node._handle(0, data_msg(1, 7, 11, "m", True), out)
        assert node.buf_r[1] is None
        assert out == []
        assert node.counters["stale_frames_dropped"] == 1

    def test_busy_buffer_stays_silent(self):
        node = make_node()
        out = []
        node._handle(0, data_msg(1, 1, 11, "a", True), out)
        out.clear()
        # Next lane seq arrives while buf_r is still held: no ACK at all,
        # the sender's retransmit timer is the retry path.
        node._handle(0, data_msg(1, 2, 12, "b", True), out)
        assert out == []
        assert node.buf_r[1].uid == 11

    def test_malformed_frames_dropped(self):
        node = make_node()
        out = []
        node._handle(0, {"k": "DATA"}, out)          # missing fields
        node._handle(0, {"k": "NOPE", "d": 1, "s": 1}, out)  # unknown kind
        node._handle(0, data_msg(99, 1, 1, "m", True), out)  # dest out of range
        assert out == []
        assert node.counters["stale_frames_dropped"] == 3


class TestReleaseHandshake:
    def test_rel_marks_released_and_racks(self):
        node = make_node()
        out = []
        node._handle(0, data_msg(1, 1, 11, "m", True), out)
        out.clear()
        node._handle(0, rel_msg(1, 1), out)
        assert node.buf_r[1].released
        assert out == [(0, rack_msg(1, 1))]

    def test_rel_for_unaccepted_seq_dropped(self):
        node = make_node()
        out = []
        node._handle(0, rel_msg(1, 5), out)  # never accepted seq 5
        assert out == []
        assert node.counters["stale_frames_dropped"] == 1

    def test_duplicate_rel_still_racked(self):
        node = make_node()
        out = []
        node._handle(0, data_msg(1, 1, 11, "m", True), out)
        node._handle(0, rel_msg(1, 1), out)
        out.clear()
        node._handle(0, rel_msg(1, 1), out)  # retransmitted REL
        assert out == [(0, rack_msg(1, 1))]


class TestSenderSide:
    def test_ack_erases_emission_and_emits_rel(self):
        node = make_node(pid=0)
        node.submit("m", 1)
        out = []
        node._advance(out)  # generate + commit + open lane (DATA out)
        assert node.buf_e[1] is not None
        assert node.in_flight() == 1
        (nbr, frame) = out[0]
        assert nbr == 1 and frame["k"] == "DATA"
        out.clear()
        node._handle(1, ack_msg(1, frame["s"]), out)
        assert node.buf_e[1] is None  # R4
        assert out[0][1]["k"] == "REL"
        assert node.in_flight() == 1  # lane now awaits the RACK
        out.clear()
        node._handle(1, rack_msg(1, frame["s"]), out)
        assert node.in_flight() == 0

    def test_stale_ack_ignored(self):
        node = make_node(pid=0)
        node.submit("m", 1)
        out = []
        node._advance(out)
        out.clear()
        node._handle(1, ack_msg(1, 99), out)  # wrong seq
        assert node.buf_e[1] is not None
        assert out == []

    def test_self_addressed_submit_rejected(self):
        node = make_node(pid=0)
        with pytest.raises(ValueError, match="self-addressed"):
            node.submit("m", 0)

    def test_retransmit_after_timeout(self):
        node = make_node(pid=0)
        node.params = RuntimeParams(retry_base=0.0, retry_cap=0.0)
        node.submit("m", 1)
        out = []
        node._advance(out)
        out.clear()
        node._advance(out)  # timeout is 0: retransmits immediately
        assert node.counters["retries"] >= 1
        assert any(m["k"] == "DATA" for _, m in out)


class TestEndToEndOverLocalTransport:
    def test_two_nodes_deliver_and_drain(self):
        async def body():
            net = line_network(2)
            transport = LocalTransport(net)
            routing = StaticRouting(net)
            params = RuntimeParams(tick=0.002)
            nodes = [
                RuntimeNode(p, net, routing, transport, params) for p in range(2)
            ]
            for i in range(5):
                nodes[0].submit(f"m{i}", 1)
            tasks = [asyncio.ensure_future(n.run()) for n in nodes]
            for _ in range(1000):
                if nodes[1].counters["delivered"] == 5 and all(
                    n.is_idle() for n in nodes
                ):
                    break
                await asyncio.sleep(0.005)
            for n in nodes:
                n.stop()
            await asyncio.gather(*tasks)
            assert nodes[1].counters["delivered"] == 5
            assert nodes[0].counters["generated"] == 5
            assert len(nodes[0].hop_latencies) == 5
            kinds = [e.kind for e in nodes[1].events]
            assert kinds == ["delivered"] * 5

        asyncio.run(body())
