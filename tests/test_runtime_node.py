"""Tests for the live node's windowed hop protocol: pipelining, cumulative
+ selective acknowledgement, release watermarks, RTO behavior."""

import asyncio

import pytest

from repro.network.topologies import line_network
from repro.routing.static import StaticRouting
from repro.runtime.node import MAX_WINDOW, RuntimeNode, RuntimeParams
from repro.runtime.transport import LocalTransport
from repro.runtime.wire import (
    ACK,
    DATA,
    RACK,
    REL,
    ack_rec,
    data_rec,
    rack_rec,
    rel_rec,
    sack_bitmap,
)


def make_node(pid=1, n=2, **params):
    """A node whose wire handlers we drive by hand (no event loop)."""
    net = line_network(n)
    transport = LocalTransport(net)
    node = RuntimeNode(
        pid, net, StaticRouting(net), transport, RuntimeParams(**params)
    )
    return node


def handle(node, src, rec, out, now=None):
    import time

    node._handle_batch(src, [rec], time.monotonic() if now is None else now, out)


def sent_data(out):
    return [rec for _, rec in out if rec["k"] == DATA]


def sent_kind(out, kind):
    return [rec for _, rec in out if rec["k"] == kind]


class TestReceiverWindow:
    def test_in_order_accepted_and_acked(self):
        node = make_node()
        out = []
        handle(node, 0, data_rec(1, 1, 11, "a", True, rel=0), out)
        handle(node, 0, data_rec(1, 2, 12, "b", True, rel=0), out)
        lane = node._in_lanes[(0, 1)]
        assert lane.cum == 2
        assert [uid for _, r in lane.pending for uid in [r.uid]] == [11, 12]
        node._emit_acks(out)
        acks = sent_kind(out, ACK)
        assert acks == [ack_rec(1, 2, 0, 0)]  # one coalesced cumulative ACK

    def test_out_of_order_held_and_sacked(self):
        node = make_node()
        out = []
        handle(node, 0, data_rec(1, 2, 12, "b", True), out)
        handle(node, 0, data_rec(1, 4, 14, "d", True), out)
        lane = node._in_lanes[(0, 1)]
        assert lane.cum == 0 and sorted(lane.ooo) == [2, 4]
        node._emit_acks(out)
        (ack,) = sent_kind(out, ACK)
        assert ack["c"] == 0
        assert ack["b"] == sack_bitmap(0, [2, 4])
        # The hole arrives: cum jumps over the buffered records.
        out.clear()
        handle(node, 0, data_rec(1, 1, 11, "a", True), out)
        handle(node, 0, data_rec(1, 3, 13, "c", True), out)
        assert lane.cum == 4 and not lane.ooo

    def test_duplicate_data_reacked_not_reaccepted(self):
        node = make_node()
        out = []
        handle(node, 0, data_rec(1, 1, 11, "m", True), out)
        handle(node, 0, data_rec(1, 1, 11, "m", True), out)
        lane = node._in_lanes[(0, 1)]
        assert lane.cum == 1 and len(lane.pending) == 1
        assert node.counters["dup_data_acked"] == 1
        assert lane.ack_due

    def test_beyond_window_dropped(self):
        node = make_node()
        out = []
        handle(node, 0, data_rec(1, MAX_WINDOW + 1, 11, "m", True), out)
        assert node.counters["stale_records_dropped"] == 1
        assert (0, 1) not in node._in_lanes or not node._in_lanes[(0, 1)].ooo

    def test_backpressure_stays_silent(self):
        node = make_node(recv_queue=2)
        out = []
        handle(node, 0, data_rec(1, 1, 11, "a", True), out)
        handle(node, 0, data_rec(1, 2, 12, "b", True), out)
        lane = node._in_lanes[(0, 1)]
        lane.ack_due = False
        node._ack_dirty.clear()
        # Queue full: the third record is silently dropped (sender retries).
        handle(node, 0, data_rec(1, 3, 13, "c", True), out)
        assert lane.cum == 2
        assert node.counters["recv_backpressure"] == 1
        assert not lane.ack_due

    def test_malformed_records_dropped(self):
        node = make_node()
        out = []
        node._handle_batch(
            0,
            [
                {"k": "DATA"},                      # missing fields
                {"k": "NOPE", "d": 1, "s": 1},      # unknown kind
                data_rec(99, 1, 1, "m", True),      # dest out of range
            ],
            1.0,
            out,
        )
        assert out == []
        assert node.counters["stale_records_dropped"] == 3


class TestReleaseWatermark:
    def test_release_piggybacked_on_data_moves_pending_to_fwd(self):
        node = make_node(pid=1, n=3)  # middle of a 3-line: must forward
        out = []
        handle(node, 0, data_rec(2, 1, 11, "a", True, rel=0), out)
        lane = node._in_lanes[(0, 2)]
        assert len(lane.pending) == 1 and not node.fwd[2]
        # Next DATA piggybacks rel=1: seq 1 is erased upstream, forward it.
        handle(node, 0, data_rec(2, 2, 12, "b", True, rel=1), out)
        assert len(lane.pending) == 1  # seq 2 still unreleased
        assert [r.uid for r in node.fwd[2]] == [11]
        assert 2 in node._active

    def test_release_never_exceeds_cum(self):
        node = make_node()
        out = []
        handle(node, 0, data_rec(1, 2, 12, "b", True, rel=2), out)  # ooo
        lane = node._in_lanes[(0, 1)]
        assert lane.rel_cum == 0  # rel=2 clamps to cum=0: nothing released

    def test_standalone_rel_racked_idempotently(self):
        node = make_node()
        out = []
        handle(node, 0, data_rec(1, 1, 11, "m", True), out)
        out.clear()
        handle(node, 0, rel_rec(1, 1), out)
        assert sent_kind(out, RACK) == [rack_rec(1, 1)]
        out.clear()
        handle(node, 0, rel_rec(1, 1), out)  # retransmitted REL
        assert sent_kind(out, RACK) == [rack_rec(1, 1)]

    def test_rel_for_unaccepted_seqs_dropped_without_rack(self):
        node = make_node()
        out = []
        handle(node, 0, rel_rec(1, 5), out)  # never accepted anything
        assert out == []
        assert node.counters["stale_records_dropped"] == 1


class TestSenderWindow:
    def test_pipelines_up_to_window(self):
        node = make_node(pid=0, window=4)
        for i in range(10):
            node.submit(f"m{i}", 1)
        out = []
        node._advance(out)
        datas = sent_data(out)
        assert len(datas) == 4  # window, not stop-and-wait
        assert [d["s"] for d in datas] == [1, 2, 3, 4]
        assert node.in_flight() == 4
        assert node.counters["generated"] == 4  # generation is window-gated

    def test_cumulative_ack_slides_window(self):
        node = make_node(pid=0, window=4)
        for i in range(6):
            node.submit(f"m{i}", 1)
        out = []
        node._advance(out)
        out.clear()
        handle(node, 1, ack_rec(1, 3), out)  # acks seqs 1-3
        assert node.in_flight() == 1
        node._advance(out)
        assert [d["s"] for d in sent_data(out)] == [5, 6]
        assert node.in_flight() == 3

    def test_sack_pops_but_timer_waits_for_cum(self):
        node = make_node(pid=0, window=4)
        for i in range(4):
            node.submit(f"m{i}", 1)
        out = []
        node._advance(out)
        lane = node._out_lanes[(1, 1)]
        expiry_before = lane.expiry
        out.clear()
        # SACK seqs 2-4, hole at 1: pops them but keeps the head's timer.
        handle(node, 1, ack_rec(1, 0, sack_bitmap(0, [2, 3, 4])), out)
        assert sorted(lane.unacked) == [1]
        assert lane.expiry == expiry_before

    def test_fast_retransmit_after_three_sacks(self):
        node = make_node(pid=0, window=8)
        for i in range(8):
            node.submit(f"m{i}", 1)
        out = []
        node._advance(out)
        out.clear()
        lane = node._out_lanes[(1, 1)]
        lane.srtt = 0.0  # no resend-grace for the test
        for sacked in ([2, 3], [2, 3, 4], [2, 3, 4, 5]):
            handle(node, 1, ack_rec(1, 0, sack_bitmap(0, sacked)), out)
        resent = sent_data(out)
        assert [d["s"] for d in resent] == [1]  # the hole, nothing else
        assert node.counters["retries"] == 1

    def test_rto_retransmits_head_probe_first(self):
        node = make_node(pid=0, window=4, retry_base=0.0, retry_cap=0.0)
        for i in range(4):
            node.submit(f"m{i}", 1)
        out = []
        node._advance(out)  # rto 0: the first expiry fires in the same call
        # Window fill (1-4) plus a head-of-line probe — NOT a full resend.
        assert [d["s"] for d in sent_data(out)] == [1, 2, 3, 4, 1]
        assert node.counters["retries"] == 1
        out.clear()
        node._advance(out)  # second expiry: full age-qualified resend
        assert sorted(d["s"] for d in sent_data(out)) == [1, 2, 3, 4]
        lane = node._out_lanes[(1, 1)]
        assert lane.backoff > 2

    def test_cum_ack_resets_backoff(self):
        node = make_node(pid=0, window=4, retry_base=0.0, retry_cap=0.0)
        node.submit("m", 1)
        out = []
        node._advance(out)
        node._advance(out)
        lane = node._out_lanes[(1, 1)]
        assert lane.backoff > 1
        handle(node, 1, ack_rec(1, 1), out)
        assert lane.backoff == 1 and lane.expiry is None
        assert node.in_flight() == 0

    def test_ack_rtt_sample_skips_retransmitted(self):
        node = make_node(pid=0, retry_base=0.0, retry_cap=0.0)
        node.submit("m", 1)
        out = []
        node._advance(out)
        node._advance(out)  # retransmit: Karn forbids sampling this one
        handle(node, 1, ack_rec(1, 1), out)
        lane = node._out_lanes[(1, 1)]
        assert lane.srtt is None
        assert node.rto_samples == []

    def test_stale_ack_ignored(self):
        node = make_node(pid=0)
        node.submit("m", 1)
        out = []
        node._advance(out)
        out.clear()
        handle(node, 1, ack_rec(1, 99), out)  # beyond anything sent
        assert node.in_flight() == 0 or node.in_flight() == 1
        handle(node, 0, ack_rec(1, 1), out)  # lane never opened toward 0
        assert out == []

    def test_release_watermark_piggybacks_on_next_data(self):
        node = make_node(pid=0, window=2)
        for i in range(4):
            node.submit(f"m{i}", 1)
        out = []
        node._advance(out)
        out.clear()
        handle(node, 1, ack_rec(1, 2), out)
        node._advance(out)
        datas = sent_data(out)
        assert [d["s"] for d in datas] == [3, 4]
        assert all(d["r"] == 2 for d in datas)  # release rides along

    def test_standalone_rel_on_quiet_lane_then_rack_stops_it(self):
        node = make_node(pid=0, retry_base=0.0, retry_cap=0.0)
        node.submit("m", 1)
        out = []
        node._advance(out)
        handle(node, 1, ack_rec(1, 1), out)
        out.clear()
        node._advance(out)  # lane quiet, rel unconfirmed: standalone REL
        assert sent_kind(out, REL) == [rel_rec(1, 1)]
        handle(node, 1, rack_rec(1, 1), out)
        out.clear()
        node._advance(out)
        assert sent_kind(out, REL) == []  # confirmed: no more RELs
        assert node.is_idle()

    def test_self_addressed_submit_rejected(self):
        node = make_node(pid=0)
        with pytest.raises(ValueError, match="self-addressed"):
            node.submit("m", 0)

    def test_max_attempts_stops_retransmission(self):
        node = make_node(pid=0, retry_base=0.0, retry_cap=0.0, max_attempts=2)
        node.submit("m", 1)
        out = []
        node._advance(out)
        for _ in range(5):
            node._advance(out)
        assert node.counters["retries"] == 2


class TestObservabilityHooks:
    def test_batch_and_coalesce_metrics_populate(self):
        async def body():
            net = line_network(2)
            transport = LocalTransport(net)
            routing = StaticRouting(net)
            params = RuntimeParams(tick=0.002)
            nodes = [
                RuntimeNode(p, net, routing, transport, params)
                for p in range(2)
            ]
            for i in range(50):
                nodes[0].submit(f"m{i}", 1)
            tasks = [asyncio.ensure_future(n.run()) for n in nodes]
            for _ in range(1000):
                if nodes[1].counters["delivered"] == 50 and all(
                    n.is_idle() for n in nodes
                ):
                    break
                await asyncio.sleep(0.005)
            for n in nodes:
                n.stop()
            await asyncio.gather(*tasks)
            assert nodes[0].batch_sizes and max(nodes[0].batch_sizes) > 1
            assert nodes[1].ack_coalesce and max(nodes[1].ack_coalesce) > 1
            assert nodes[0].rto_samples
            assert len(nodes[0].hop_latencies) == 50

        asyncio.run(body())

    def test_window_occupancy_reports_per_lane(self):
        node = make_node(pid=0, window=4)
        for i in range(10):
            node.submit(f"m{i}", 1)
        out = []
        node._advance(out)
        assert node.window_occupancy() == [4]


class TestEndToEndOverLocalTransport:
    def test_two_nodes_deliver_and_drain(self):
        async def body():
            net = line_network(2)
            transport = LocalTransport(net)
            routing = StaticRouting(net)
            params = RuntimeParams(tick=0.002)
            nodes = [
                RuntimeNode(p, net, routing, transport, params)
                for p in range(2)
            ]
            for i in range(5):
                nodes[0].submit(f"m{i}", 1)
            tasks = [asyncio.ensure_future(n.run()) for n in nodes]
            for _ in range(1000):
                if nodes[1].counters["delivered"] == 5 and all(
                    n.is_idle() for n in nodes
                ):
                    break
                await asyncio.sleep(0.005)
            for n in nodes:
                n.stop()
            await asyncio.gather(*tasks)
            assert nodes[1].counters["delivered"] == 5
            assert nodes[0].counters["generated"] == 5
            assert len(nodes[0].hop_latencies) == 5
            kinds = [e.kind for e in nodes[1].events]
            assert kinds == ["delivered"] * 5

        asyncio.run(body())
