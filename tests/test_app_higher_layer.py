"""Tests for the higher layer (request handshake, delivery sink)."""

import pytest

from repro.app.higher_layer import HigherLayer
from repro.errors import ConfigurationError
from repro.statemodel.message import MessageFactory


class TestSubmission:
    def test_submit_queues(self):
        hl = HigherLayer(3)
        hl.submit(0, "a", 2)
        assert hl.pending_count(0) == 1
        assert hl.total_pending() == 1

    def test_out_of_range_rejected(self):
        hl = HigherLayer(3)
        with pytest.raises(ConfigurationError):
            hl.submit(0, "a", 5)

    def test_self_addressed_delivered_locally(self):
        hl = HigherLayer(3)
        hl.submit(1, "me", 1)
        assert hl.pending_count(1) == 0
        assert hl.local_deliveries == 1


class TestRequestHandshake:
    def test_request_raised_when_message_waits(self):
        hl = HigherLayer(2)
        hl.submit(0, "a", 1)
        assert not hl.request[0]
        hl.before_step(0)
        assert hl.request[0]
        assert not hl.request[1]

    def test_macros_expose_waiting_message(self):
        hl = HigherLayer(2)
        hl.submit(0, "a", 1)
        assert hl.next_message(0) == "a"
        assert hl.next_destination(0) == 1
        assert hl.next_destination(1) is None

    def test_consume_request_pops_and_lowers(self):
        hl = HigherLayer(2)
        hl.submit(0, "a", 1)
        hl.submit(0, "b", 1)
        hl.before_step(0)
        payload, dest = hl.consume_request(0)
        assert (payload, dest) == ("a", 1)
        assert not hl.request[0]
        assert hl.next_message(0) == "b"

    def test_consume_empty_outbox_rejected(self):
        hl = HigherLayer(2)
        with pytest.raises(ConfigurationError):
            hl.consume_request(0)

    def test_request_reraised_for_next_message(self):
        hl = HigherLayer(2)
        hl.submit(0, "a", 1)
        hl.submit(0, "b", 1)
        hl.before_step(0)
        hl.consume_request(0)
        hl.before_step(1)
        assert hl.request[0]

    def test_request_stays_down_when_outbox_empty(self):
        hl = HigherLayer(2)
        hl.before_step(0)
        assert not hl.request[0]


class TestDelivery:
    def test_delivery_logged_and_callback_invoked(self):
        seen = []
        hl = HigherLayer(2, on_deliver=lambda p, m, s: seen.append((p, m.payload, s)))
        msg = MessageFactory().generated("x", 0, 1, 0, 0)
        hl.deliver(1, msg, step=7)
        assert seen == [(1, "x", 7)]
        assert hl.delivered[0][0] == 1


class TestRequestedDestinationsIndex:
    def test_tracks_raise_and_consume(self):
        hl = HigherLayer(4)
        assert hl.requested_destinations() == set()
        hl.submit(0, "a", 3)
        hl.submit(1, "b", 2)
        hl.before_step(0)
        assert hl.requested_destinations() == {3, 2}
        hl.consume_request(0)
        assert hl.requested_destinations() == {2}
        hl.consume_request(1)
        assert hl.requested_destinations() == set()

    def test_shared_destination_by_two_processors(self):
        hl = HigherLayer(4)
        hl.submit(0, "a", 3)
        hl.submit(1, "b", 3)
        hl.before_step(0)
        assert hl.requested_destinations() == {3}
        hl.consume_request(0)
        assert hl.requested_destinations() == {3}  # processor 1 still asks
        hl.consume_request(1)
        assert hl.requested_destinations() == set()

    def test_out_of_band_lowering_is_filtered(self):
        # A subclass may lower request_p without consume_request (the
        # liveness harness does); the index must not report its destination.
        hl = HigherLayer(3)
        hl.submit(0, "a", 2)
        hl.before_step(0)
        hl.request[0] = False
        assert hl.requested_destinations() == set()
        hl.before_step(1)  # re-raised: same head, index refreshed
        assert hl.requested_destinations() == {2}
