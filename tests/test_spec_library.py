"""The checked-in spec library must stay runnable."""

import json
import pathlib

import pytest

from repro.cli import main
from repro.sim.recording import record_run
from repro.sim.spec import simulation_from_spec

SPEC_DIR = pathlib.Path(__file__).parent.parent / "specs"
SINGLE_SPECS = sorted(
    p for p in SPEC_DIR.glob("*.json") if "sweep" not in p.name
)
SWEEP_SPECS = sorted(p for p in SPEC_DIR.glob("*sweep*.json"))


class TestSpecLibrary:
    def test_library_is_populated(self):
        assert len(SINGLE_SPECS) >= 2
        assert len(SWEEP_SPECS) >= 2

    @pytest.mark.parametrize("path", SINGLE_SPECS, ids=lambda p: p.stem)
    def test_single_spec_runs_exactly_once(self, path):
        spec = json.loads(path.read_text())
        record = record_run(spec, max_steps=500_000)
        assert record.outcome["delivered"] == record.outcome["generated"]

    @pytest.mark.parametrize("path", SWEEP_SPECS, ids=lambda p: p.stem)
    def test_sweep_spec_runs_via_cli(self, path, capsys):
        assert main(["sweep", str(path)]) == 0
        out = capsys.readouterr().out
        assert "delivered" in out

    @pytest.mark.parametrize("path", SINGLE_SPECS, ids=lambda p: p.stem)
    def test_specs_buildable(self, path):
        simulation_from_spec(json.loads(path.read_text()))
