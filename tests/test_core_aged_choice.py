"""Tests for the "aged" choice policy (the §4 future-work variant)."""

import pytest

from repro.app.workload import hotspot_workload, uniform_workload
from repro.core.choice import FairChoiceQueue
from repro.network.topologies import line_network, ring_network
from repro.sim.runner import build_simulation, delivered_and_drained
from repro.statemodel.message import Message, MessageFactory


class TestAgedQueue:
    def test_orders_by_descending_priority(self):
        q = FairChoiceQueue(policy="aged")
        q.sync({1, 2, 3}, priority={1: 0, 2: 5, 3: 2})
        assert q.items() == [2, 3, 1]

    def test_missing_priority_is_lowest(self):
        q = FairChoiceQueue(policy="aged")
        q.sync({1, 2}, priority={2: 3})
        assert q.head() == 2
        # 1 (no entry, e.g. a generation request) sits behind.
        assert q.items() == [2, 1]

    def test_ties_fifo_stable(self):
        q = FairChoiceQueue(policy="aged")
        q.sync({3}, priority={3: 1})
        q.sync({3, 1}, priority={3: 1, 1: 1})
        assert q.items() == [3, 1]  # 3 arrived first

    def test_priority_refresh_reorders(self):
        q = FairChoiceQueue(policy="aged")
        q.sync({1, 2}, priority={1: 5, 2: 0})
        assert q.head() == 1
        q.sync({1, 2}, priority={1: 5, 2: 9})
        assert q.head() == 2


class TestMessageHops:
    def test_recolored_counts_hops(self):
        m = MessageFactory().generated("x", 0, 3, 0, 0)
        assert m.hops == 0
        assert m.recolored(1, 2).hops == 1
        assert m.recolored(1, 2).recolored(2, 0).hops == 2

    def test_forwarded_copy_preserves_hops(self):
        m = MessageFactory().generated("x", 0, 3, 0, 0).recolored(0, 1)
        assert m.forwarded_copy(0).hops == m.hops


class TestAgedPolicyEndToEnd:
    @pytest.mark.parametrize("seed", range(4))
    def test_exactly_once_preserved(self, seed):
        # Safety first: the modified selection keeps the strict ledger
        # happy under corruption.
        net = ring_network(6)
        sim = build_simulation(
            net,
            workload=uniform_workload(net.n, 12, seed=seed),
            routing_corruption={"kind": "random", "fraction": 1.0, "seed": seed},
            garbage={"fraction": 0.4, "seed": seed},
            seed=seed,
            ssmfp_options={"choice_policy": "aged"},
        )
        sim.run(300_000, halt=delivered_and_drained)
        assert sim.ledger.all_valid_delivered()

    def test_hotspot_drains(self):
        net = line_network(6)
        sim = build_simulation(
            net,
            workload=hotspot_workload(net.n, dest=0, per_source=3, seed=2),
            routing_mode="static",
            seed=2,
            ssmfp_options={"choice_policy": "aged"},
        )
        sim.run(300_000, halt=delivered_and_drained)
        assert sim.ledger.all_valid_delivered()

    def test_old_message_not_overtaken(self):
        # The defining behavior: under contention, the traveled message
        # wins the buffer over freshly generated neighbors.
        from repro.experiments.fast_choice import run_one

        fifo = run_one("fifo", n=8, per_source=4, seed=1)
        aged = run_one("aged", n=8, per_source=4, seed=1)
        assert aged["probe_rounds"] <= fifo["probe_rounds"]
