"""Tests for the record/verify/all CLI subcommands."""

import json

import pytest

from repro.cli import main

SPEC = {
    "topology": {"name": "line", "kwargs": {"n": 4}},
    "workload": {"name": "uniform", "kwargs": {"count": 4, "seed": 1}},
    "seed": 5,
}


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC))
    return path


class TestRecordVerify:
    def test_record_writes_default_path(self, spec_file, capsys):
        assert main(["record", str(spec_file)]) == 0
        record_path = spec_file.parent / "spec.record.json"
        assert record_path.exists()
        out = capsys.readouterr().out
        assert "delivered: 4" in out

    def test_verify_accepts_fresh_record(self, spec_file, tmp_path, capsys):
        out_path = tmp_path / "r.json"
        main(["record", str(spec_file), "-o", str(out_path)])
        assert main(["verify", str(out_path)]) == 0
        assert "bit-identically" in capsys.readouterr().out

    def test_verify_rejects_tampered_record(self, spec_file, tmp_path, capsys):
        out_path = tmp_path / "r.json"
        main(["record", str(spec_file), "-o", str(out_path)])
        data = json.loads(out_path.read_text())
        data["outcome"]["steps"] += 1
        out_path.write_text(json.dumps(data))
        assert main(["verify", str(out_path)]) == 1
        assert "MISMATCH" in capsys.readouterr().err


class TestSweep:
    def test_sweep_runs_all_specs(self, tmp_path, capsys):
        specs = [
            dict(SPEC, label="a", seed=1),
            dict(SPEC, label="b", seed=2),
        ]
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(specs))
        assert main(["sweep", str(path)]) == 0
        out = capsys.readouterr().out
        assert "a" in out and "b" in out
        assert "delivered" in out

    def test_sweep_accepts_wrapped_form(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({"specs": [dict(SPEC, label="only")]}))
        assert main(["sweep", str(path)]) == 0
        assert "only" in capsys.readouterr().out
