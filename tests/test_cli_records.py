"""Tests for the record/verify/all CLI subcommands."""

import json

import pytest

from repro.cli import main

SPEC = {
    "topology": {"name": "line", "kwargs": {"n": 4}},
    "workload": {"name": "uniform", "kwargs": {"count": 4, "seed": 1}},
    "seed": 5,
}


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SPEC))
    return path


class TestRecordVerify:
    def test_record_writes_default_path(self, spec_file, capsys):
        assert main(["record", str(spec_file)]) == 0
        record_path = spec_file.parent / "spec.record.json"
        assert record_path.exists()
        out = capsys.readouterr().out
        assert "delivered: 4" in out

    def test_verify_accepts_fresh_record(self, spec_file, tmp_path, capsys):
        out_path = tmp_path / "r.json"
        main(["record", str(spec_file), "-o", str(out_path)])
        assert main(["verify", str(out_path)]) == 0
        assert "bit-identically" in capsys.readouterr().out

    def test_verify_rejects_tampered_record(self, spec_file, tmp_path, capsys):
        out_path = tmp_path / "r.json"
        main(["record", str(spec_file), "-o", str(out_path)])
        data = json.loads(out_path.read_text())
        data["outcome"]["steps"] += 1
        out_path.write_text(json.dumps(data))
        assert main(["verify", str(out_path)]) == 1
        assert "MISMATCH" in capsys.readouterr().err

    def test_tampered_record_diff_names_field_and_both_values(
        self, spec_file, tmp_path, capsys
    ):
        # The rejection must be a readable diff, not a stack trace.
        out_path = tmp_path / "r.json"
        main(["record", str(spec_file), "-o", str(out_path)])
        data = json.loads(out_path.read_text())
        honest = data["outcome"]["delivered"]
        data["outcome"]["delivered"] = honest + 3
        out_path.write_text(json.dumps(data))
        assert main(["verify", str(out_path)]) == 1
        err = capsys.readouterr().err
        assert f"delivered: recorded {honest + 3!r}, reproduced {honest!r}" in err
        assert "Traceback" not in err

    def test_verify_missing_file_is_a_clear_error(self, tmp_path, capsys):
        assert main(["verify", str(tmp_path / "nope.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read record")
        assert "Traceback" not in err

    def test_verify_malformed_json_is_a_clear_error(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{this is not json")
        assert main(["verify", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not a run record" in err

    def test_verify_wrong_shape_is_a_clear_error(self, tmp_path, capsys):
        path = tmp_path / "shape.json"
        path.write_text(json.dumps({"outcome": {}}))  # no spec/max_steps
        assert main(["verify", str(path)]) == 2
        assert "not a run record" in capsys.readouterr().err

    def test_verify_unrunnable_spec_is_a_clear_error(self, tmp_path, capsys):
        path = tmp_path / "badspec.json"
        path.write_text(
            json.dumps(
                {
                    "spec": {"topology": {"name": "mobius", "kwargs": {}}},
                    "max_steps": 10,
                    "outcome": {},
                }
            )
        )
        assert main(["verify", str(path)]) == 2
        err = capsys.readouterr().err
        assert "record's spec no longer runs" in err

    def test_record_missing_spec_is_a_clear_error(self, tmp_path, capsys):
        assert main(["record", str(tmp_path / "ghost.json")]) == 2
        assert "cannot read spec" in capsys.readouterr().err

    def test_record_malformed_spec_is_a_clear_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("]]][[")
        assert main(["record", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_record_verify_round_trip_through_files(self, spec_file, tmp_path):
        # The full CLI loop: record -> file on disk -> verify, twice
        # (verification must not consume or alter the record).
        out_path = tmp_path / "round.json"
        assert main(["record", str(spec_file), "-o", str(out_path)]) == 0
        first = out_path.read_text()
        assert main(["verify", str(out_path)]) == 0
        assert main(["verify", str(out_path)]) == 0
        assert out_path.read_text() == first


class TestSweep:
    def test_sweep_runs_all_specs(self, tmp_path, capsys):
        specs = [
            dict(SPEC, label="a", seed=1),
            dict(SPEC, label="b", seed=2),
        ]
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(specs))
        assert main(["sweep", str(path)]) == 0
        out = capsys.readouterr().out
        assert "a" in out and "b" in out
        assert "delivered" in out

    def test_sweep_accepts_wrapped_form(self, tmp_path, capsys):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({"specs": [dict(SPEC, label="only")]}))
        assert main(["sweep", str(path)]) == 0
        assert "only" in capsys.readouterr().out
