"""Tests for the DOT exporters."""

from repro.buffergraph.destination_based import destination_based_buffer_graph
from repro.buffergraph.ssmfp_graph import ssmfp_buffer_graph
from repro.network.topologies import paper_figure1_network, paper_figure3_network
from repro.routing.scripted import ScriptedRouting
from repro.routing.static import StaticRouting
from repro.viz.dot import buffer_graph_to_dot, network_to_dot, routing_to_dot


class TestNetworkDot:
    def test_undirected_edges(self):
        net = paper_figure3_network()
        dot = network_to_dot(net)
        assert dot.startswith("graph network {")
        assert dot.count(" -- ") == net.m
        assert 'label="b"' in dot

    def test_custom_name(self):
        assert "graph fig3 {" in network_to_dot(paper_figure3_network(), "fig3")


class TestRoutingDot:
    def test_tree_shape(self):
        net = paper_figure1_network()
        dot = routing_to_dot(net, StaticRouting(net), dest=0)
        assert dot.count(" -> ") == net.n - 1
        assert "doublecircle" in dot  # the destination

    def test_corrupted_cycle_visible(self):
        net = paper_figure3_network()
        a, b, c = net.id_of("a"), net.id_of("b"), net.id_of("c")
        routing = ScriptedRouting(net)
        routing.set_hop(a, b, c)
        routing.set_hop(c, b, a)
        dot = routing_to_dot(net, routing, dest=b)
        assert f"n{a} -> n{c};" in dot and f"n{c} -> n{a};" in dot


class TestBufferGraphDot:
    def test_destination_based_labels(self):
        net = paper_figure1_network()
        graph = destination_based_buffer_graph(net, StaticRouting(net))
        sub = graph.subgraph_for_destination(1)
        dot = buffer_graph_to_dot(sub, net)
        assert "b_a(1)" in dot
        assert dot.count(" -> ") == len(sub.edges)

    def test_ssmfp_two_buffer_labels(self):
        net = paper_figure1_network()
        graph = ssmfp_buffer_graph(net, StaticRouting(net))
        sub = graph.subgraph_for_destination(1)
        dot = buffer_graph_to_dot(sub, net)
        assert "bufR_a(1)" in dot and "bufE_a(1)" in dot

    def test_ids_unique(self):
        net = paper_figure1_network()
        graph = ssmfp_buffer_graph(net, StaticRouting(net))
        dot = buffer_graph_to_dot(graph)
        node_lines = [l for l in dot.splitlines() if "[label=" in l]
        ids = [l.split()[0] for l in node_lines]
        assert len(ids) == len(set(ids)) == len(graph.nodes)