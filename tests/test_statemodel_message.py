"""Tests for Message and MessageFactory."""

from repro.statemodel.message import Message, MessageFactory


def make(payload="x", last=0, color=1, dest=2, uid=5, valid=True):
    return Message(payload=payload, last=last, color=color, dest=dest, uid=uid, valid=valid)


class TestComparisons:
    def test_same_payload_color_ignores_last(self):
        a = make(last=0)
        b = make(last=3, uid=9)
        assert a.same_payload_color(b)

    def test_same_payload_color_rejects_color_mismatch(self):
        assert not make(color=1).same_payload_color(make(color=2))

    def test_same_payload_color_rejects_payload_mismatch(self):
        assert not make(payload="x").same_payload_color(make(payload="y"))

    def test_matches_exact_triple(self):
        m = make(payload="m", last=4, color=2)
        assert m.matches("m", 4, 2)
        assert not m.matches("m", 4, 3)
        assert not m.matches("m", 5, 2)
        assert not m.matches("n", 4, 2)

    def test_guards_never_see_uid(self):
        # Two distinct generations with equal (m, q, c) are protocol-equal.
        a = make(uid=1)
        b = make(uid=2)
        assert a.same_payload_color(b)
        assert b.matches(a.payload, a.last, a.color)


class TestDerivedCopies:
    def test_forwarded_copy_updates_last_keeps_uid_color(self):
        m = make(last=0, color=2, uid=7)
        c = m.forwarded_copy(3)
        assert c.last == 3
        assert c.color == 2
        assert c.uid == 7
        assert c.valid == m.valid

    def test_recolored_stamps_processor_and_color(self):
        m = make(last=0, color=2, uid=7)
        r = m.recolored(4, 0)
        assert r.last == 4
        assert r.color == 0
        assert r.uid == 7

    def test_repr_flags_invalid(self):
        assert repr(make(valid=False)).startswith("<!")
        assert not repr(make(valid=True)).startswith("<!")


class TestFactory:
    def test_generated_uids_ascend(self):
        f = MessageFactory()
        a = f.generated("a", 0, 1, 0, step=0)
        b = f.generated("b", 0, 1, 0, step=1)
        assert a.uid == 1 and b.uid == 2
        assert a.valid and b.valid
        assert a.source == 0

    def test_generated_last_is_source(self):
        f = MessageFactory()
        m = f.generated("a", 3, 1, 0, step=5)
        assert m.last == 3
        assert m.born_step == 5

    def test_invalid_uids_negative_descending(self):
        f = MessageFactory()
        a = f.invalid("g", 0, 0, 1)
        b = f.invalid("g", 0, 0, 1)
        assert a.uid == -1 and b.uid == -2
        assert not a.valid
        assert a.source is None
