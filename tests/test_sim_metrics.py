"""Tests for metrics (round clock, latencies, amortized measures)."""

from repro.app.workload import uniform_workload
from repro.core.ledger import DeliveryLedger
from repro.network.topologies import line_network
from repro.sim.metrics import (
    RoundClock,
    amortized_rounds_per_delivery,
    delivery_latency_rounds,
    delivery_latency_steps,
    moves_per_delivery,
)
from repro.sim.runner import build_simulation, delivered_and_drained
from repro.statemodel.message import MessageFactory
from repro.statemodel.trace import Event, TraceRecorder


class TestRoundClock:
    def test_no_markers_everything_round_one(self):
        clock = RoundClock(TraceRecorder())
        assert clock.round_of_step(0) == 1
        assert clock.round_of_step(100) == 1
        assert clock.completed_rounds == 0

    def test_rounds_partition_steps(self):
        tr = TraceRecorder()
        tr.record(Event(step=4, kind="round"))
        tr.record(Event(step=9, kind="round"))
        clock = RoundClock(tr)
        assert clock.round_of_step(0) == 1
        assert clock.round_of_step(4) == 2   # marker at step 4 ends round 1
        assert clock.round_of_step(8) == 2
        assert clock.round_of_step(9) == 3
        assert clock.completed_rounds == 2


class TestLatencies:
    def _ledger_with_delivery(self, born=2, delivered=10):
        led = DeliveryLedger()
        msg = MessageFactory().generated("x", 0, 1, 0, born)
        led.record_generated(msg)
        led.record_delivery(1, msg, step=delivered)
        return led, msg

    def test_latency_steps(self):
        led, msg = self._ledger_with_delivery()
        assert delivery_latency_steps(led) == {msg.uid: 8}

    def test_latency_rounds(self):
        led, msg = self._ledger_with_delivery(born=0, delivered=9)
        tr = TraceRecorder()
        tr.record(Event(step=4, kind="round"))
        clock = RoundClock(tr)
        assert delivery_latency_rounds(led, clock) == {msg.uid: 1}

    def test_undelivered_excluded(self):
        led = DeliveryLedger()
        led.record_generated(MessageFactory().generated("x", 0, 1, 0, 0))
        assert delivery_latency_steps(led) == {}

    def test_end_to_end_latencies_nonnegative(self):
        net = line_network(5)
        trace = TraceRecorder(predicate=lambda e: False)  # rounds only
        sim = build_simulation(
            net, workload=uniform_workload(net.n, 6, seed=1),
            trace=trace, seed=2,
        )
        sim.run(100_000, halt=delivered_and_drained)
        lat_steps = delivery_latency_steps(sim.ledger)
        assert len(lat_steps) == 6
        assert all(v >= 0 for v in lat_steps.values())
        clock = RoundClock(trace)
        lat_rounds = delivery_latency_rounds(sim.ledger, clock)
        assert all(v >= 0 for v in lat_rounds.values())


class TestAggregates:
    def test_moves_per_delivery(self):
        assert moves_per_delivery({"R2": 6, "R3": 4, "R1": 5}, delivered=5) == 2.0

    def test_moves_per_delivery_zero_delivered(self):
        assert moves_per_delivery({"R2": 6}, delivered=0) is None

    def test_amortized(self):
        assert amortized_rounds_per_delivery(30, 10) == 3.0
        assert amortized_rounds_per_delivery(30, 0) is None
