"""Tests for metrics (round clock, latencies, amortized measures)."""

from repro.app.workload import uniform_workload
from repro.core.ledger import DeliveryLedger
from repro.network.topologies import line_network
from repro.sim.metrics import (
    RoundClock,
    amortized_rounds_per_delivery,
    delivery_latency_rounds,
    delivery_latency_steps,
    moves_per_delivery,
)
from repro.sim.runner import build_simulation, delivered_and_drained
from repro.statemodel.daemon import SynchronousDaemon
from repro.statemodel.message import MessageFactory
from repro.statemodel.trace import Event, TraceRecorder


class TestRoundClock:
    def test_no_markers_everything_round_one(self):
        clock = RoundClock(TraceRecorder())
        assert clock.round_of_step(0) == 1
        assert clock.round_of_step(100) == 1
        assert clock.completed_rounds == 0

    def test_rounds_partition_steps(self):
        # A marker at step s means "s is the LAST step of its round": the
        # simulator stamps the step whose execution paid the round's final
        # debt.  (Regression: markers used to be stamped one step late, at
        # the detection step, and round_of_step used bisect_right — the two
        # off-by-ones cancelled on engine traces but made hand-built traces
        # like this one come out wrong.)
        tr = TraceRecorder()
        tr.record(Event(step=4, kind="round"))
        tr.record(Event(step=9, kind="round"))
        clock = RoundClock(tr)
        assert clock.round_of_step(0) == 1
        assert clock.round_of_step(4) == 1   # marker step belongs to round 1
        assert clock.round_of_step(5) == 2   # next step opens round 2
        assert clock.round_of_step(9) == 2
        assert clock.round_of_step(10) == 3
        assert clock.completed_rounds == 2

    def test_marker_step_is_last_step_of_its_round(self):
        # Under the synchronous daemon every enabled processor executes at
        # every step, so each round's debt is paid by exactly one step and
        # round k's marker must carry that executing step — not the step
        # at which completion was detected (one later).
        net = line_network(4)
        trace = TraceRecorder()
        sim = build_simulation(
            net,
            workload=uniform_workload(net.n, 4, seed=0),
            daemon=SynchronousDaemon(),
            trace=trace,
            seed=1,
        )
        sim.run(10_000, halt=delivered_and_drained)
        markers = [e.step for e in trace.events if e.kind == "round"]
        action_steps = sorted({e.step for e in trace.events if e.kind == "action"})
        assert markers, "expected completed rounds"
        # Every marker is stamped with a step that actually executed
        # actions, and (synchronous daemon: one round per step) the markers
        # are exactly the first len(markers) executing steps.
        assert set(markers) <= set(action_steps)
        assert markers == action_steps[: len(markers)]
        clock = RoundClock(trace)
        for k, s in enumerate(markers, start=1):
            assert clock.round_of_step(s) == k
            assert clock.round_of_step(s + 1) == k + 1


class TestLatencies:
    def _ledger_with_delivery(self, born=2, delivered=10):
        led = DeliveryLedger()
        msg = MessageFactory().generated("x", 0, 1, 0, born)
        led.record_generated(msg)
        led.record_delivery(1, msg, step=delivered)
        return led, msg

    def test_latency_steps(self):
        led, msg = self._ledger_with_delivery()
        assert delivery_latency_steps(led) == {msg.uid: 8}

    def test_latency_rounds(self):
        led, msg = self._ledger_with_delivery(born=0, delivered=9)
        tr = TraceRecorder()
        tr.record(Event(step=4, kind="round"))
        clock = RoundClock(tr)
        assert delivery_latency_rounds(led, clock) == {msg.uid: 1}

    def test_undelivered_excluded(self):
        led = DeliveryLedger()
        led.record_generated(MessageFactory().generated("x", 0, 1, 0, 0))
        assert delivery_latency_steps(led) == {}

    def test_noncontiguous_uids_all_measured(self):
        # Regression: latency collection used to scan range(1,
        # generated_count + 1), silently dropping every uid outside that
        # window whenever the ledger's uid space had gaps (e.g. a message
        # factory shared with another simulation).
        led = DeliveryLedger()
        factory = MessageFactory()
        msgs = [factory.generated("x", 0, 1, 0, 2) for _ in range(6)]
        # Only uids 2, 4, 6 of this factory belong to "our" ledger.
        for msg in msgs[1::2]:
            led.record_generated(msg)
            led.record_delivery(1, msg, step=10)
        assert sorted(delivery_latency_steps(led)) == [m.uid for m in msgs[1::2]]
        assert all(v == 8 for v in delivery_latency_steps(led).values())

    def test_end_to_end_latencies_nonnegative(self):
        net = line_network(5)
        trace = TraceRecorder(predicate=lambda e: False)  # rounds only
        sim = build_simulation(
            net, workload=uniform_workload(net.n, 6, seed=1),
            trace=trace, seed=2,
        )
        sim.run(100_000, halt=delivered_and_drained)
        lat_steps = delivery_latency_steps(sim.ledger)
        assert len(lat_steps) == 6
        assert all(v >= 0 for v in lat_steps.values())
        clock = RoundClock(trace)
        lat_rounds = delivery_latency_rounds(sim.ledger, clock)
        assert all(v >= 0 for v in lat_rounds.values())


class TestAggregates:
    def test_moves_per_delivery(self):
        assert moves_per_delivery({"R2": 6, "R3": 4, "R1": 5}, delivered=5) == 2.0

    def test_moves_per_delivery_zero_delivered(self):
        assert moves_per_delivery({"R2": 6}, delivered=0) is None

    def test_amortized(self):
        assert amortized_rounds_per_delivery(30, 10) == 3.0
        assert amortized_rounds_per_delivery(30, 0) is None
