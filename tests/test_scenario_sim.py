"""The simulator scenario compiler: differential baseline + each action."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenario import ScenarioSpec, run_sim_scenario
from repro.sim.recording import record_run

BASE = {
    "name": "sim-t",
    "target": "simulate",
    "protocol": "ssmfp",
    "seed": 9,
    "topology": {"name": "ring", "kwargs": {"n": 6}},
    "workload": {"name": "uniform", "kwargs": {"count": 10}},
    "sim": {
        "routing": {
            "mode": "selfstab",
            "corruption": {"kind": "random", "fraction": 0.5},
        }
    },
    "schedule": [],
}


def spec_data(**overrides):
    data = json.loads(json.dumps(BASE))
    data.update(overrides)
    return data


class TestDifferential:
    @pytest.mark.parametrize("protocol", ["ssmfp", "ssmfp2"])
    def test_empty_schedule_matches_record_run_bit_for_bit(self, protocol):
        """With no chaos the scenario loop must reduce exactly to the
        ``repro record`` execution: same halt, same step-for-step
        schedule, same fingerprint."""
        spec = ScenarioSpec.from_dict(spec_data(protocol=protocol))
        result = run_sim_scenario(spec)
        record = record_run(spec.sim_spec(), max_steps=spec.budgets["max_steps"])
        for key in ("steps", "rounds", "generated", "delivered",
                    "invalid_delivered", "routing_correct"):
            assert result.metrics[key] == record.outcome[key], key
        assert result.ok
        assert result.fault_events == []

    def test_empty_schedule_across_seeds(self):
        for seed in range(3):
            spec = ScenarioSpec.from_dict(spec_data(seed=seed))
            result = run_sim_scenario(spec)
            record = record_run(spec.sim_spec())
            assert result.metrics["steps"] == record.outcome["steps"]
            assert result.metrics["delivered"] == record.outcome["delivered"]


class TestActions:
    def run(self, **overrides):
        spec = ScenarioSpec.from_dict(spec_data(**overrides))
        return run_sim_scenario(spec)

    def test_corrupt_routing_burst(self):
        result = self.run(
            schedule=[{"at": 0.5, "action": "corrupt_routing", "fraction": 0.6}]
        )
        assert result.ok, result.failures
        assert [e["action"] for e in result.fault_events] == ["corrupt_routing"]
        assert result.fault_events[0]["entries_hit"] > 0

    def test_corrupt_routing_windowed_pulses(self):
        result = self.run(
            schedule=[{"at": 0.5, "until": 3.5, "action": "corrupt_routing",
                       "fraction": 0.5, "period": 1.0}]
        )
        assert result.ok, result.failures
        assert len(result.fault_events) == 3

    def test_garbage_planted_mid_run(self):
        result = self.run(schedule=[{"at": 1.0, "action": "garbage",
                                     "fraction": 0.5}])
        assert result.ok, result.failures
        assert result.fault_events[0]["planted"] > 0
        assert result.metrics["invalid_delivered"] == 0

    def test_link_flap_and_partition(self):
        result = self.run(
            schedule=[
                {"at": 0.5, "until": 2.5, "action": "link_flap",
                 "period": 1.0, "down": 0.5, "edges": [[0, 1], [2, 3]]},
                {"at": 3.0, "until": 4.0, "action": "partition",
                 "edges": [[4, 5]]},
            ]
        )
        assert result.ok, result.failures
        actions = {e["action"] for e in result.fault_events}
        assert actions == {"link_flap", "partition"}

    def test_crash_window(self):
        result = self.run(
            schedule=[{"at": 0.5, "until": 2.0, "action": "crash", "node": 2}]
        )
        assert result.ok, result.failures
        assert result.fault_events[0]["node"] == 2

    def test_flood_counts_toward_expected(self):
        result = self.run(
            schedule=[{"at": 1.0, "action": "flood", "source": 0, "dest": 3,
                       "count": 5, "payload": "dup"}]
        )
        assert result.ok, result.failures
        assert result.metrics["expected"] == 10 + 5
        assert result.metrics["delivered"] == 15

    def test_combined_schedule_still_delivers(self):
        result = self.run(
            schedule=[
                {"at": 0.5, "action": "corrupt_routing", "fraction": 0.5},
                {"at": 1.0, "until": 2.0, "action": "crash", "node": 1},
                {"at": 1.5, "action": "garbage", "fraction": 0.3},
                {"at": 2.5, "action": "flood", "source": 2, "dest": 5,
                 "count": 4},
            ]
        )
        assert result.ok, result.failures
        assert result.metrics["delivered"] == result.metrics["expected"]

    def test_chaos_actions_need_selfstab_routing(self):
        spec = ScenarioSpec.from_dict(
            spec_data(
                sim={"routing": {"mode": "static"}},
                schedule=[{"at": 1.0, "action": "corrupt_routing"}],
            )
        )
        with pytest.raises(ConfigurationError, match="selfstab"):
            run_sim_scenario(spec)


class TestObservability:
    def test_fault_events_land_in_obs_rows(self):
        spec = ScenarioSpec.from_dict(
            spec_data(
                schedule=[
                    {"at": 0.5, "action": "corrupt_routing", "fraction": 0.5},
                    {"at": 1.5, "action": "garbage", "fraction": 0.4},
                ]
            )
        )
        result = run_sim_scenario(spec)
        fault_rows = [r for r in result.obs_rows if r.get("kind") == "fault_event"]
        assert [r["action"] for r in fault_rows] == ["corrupt_routing", "garbage"]
        assert all(r["schema"] == "repro.obs/v1" for r in fault_rows)
        assert all("step" in r and "round" in r for r in fault_rows)

    def test_faults_injected_total_counter(self):
        spec = ScenarioSpec.from_dict(
            spec_data(
                schedule=[
                    {"at": 0.5, "action": "corrupt_routing", "fraction": 0.5},
                    {"at": 1.0, "action": "flood", "source": 0, "dest": 2,
                     "count": 2},
                ]
            )
        )
        result = run_sim_scenario(spec)
        counters = {
            (r["metric"], r["labels"].get("action")): r["value"]
            for r in result.obs_rows
            if r.get("kind") == "metric" and r["metric"] == "faults_injected_total"
        }
        assert counters[("faults_injected_total", "corrupt_routing")] == 1
        assert counters[("faults_injected_total", "flood")] == 1

    def test_budget_exhaustion_reported(self):
        data = spec_data(
            budgets={"max_steps": 5},
            schedule=[{"at": 0.1, "action": "corrupt_routing",
                       "fraction": 0.9}],
        )
        result = run_sim_scenario(ScenarioSpec.from_dict(data))
        assert not result.ok
        assert any("budget" in f or "deliver_all" in f for f in result.failures)
