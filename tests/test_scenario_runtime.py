"""The runtime scenario compiler: chaos over the live asyncio cluster."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenario import ScenarioSpec, run_runtime_scenario
from repro.scenario.runtimedriver import build_cluster_spec, lower_runtime_schedule

BASE = {
    "name": "rt-t",
    "target": "runtime",
    "protocol": "ssmfp",
    "seed": 5,
    "topology": {"name": "ring", "kwargs": {"n": 4}},
    "workload": {"name": "uniform", "kwargs": {"count": 8}},
    "clock": {"runtime_s_per_unit": 0.1},
    "budgets": {"wall_s": 30.0},
    "schedule": [],
}


def spec_data(**overrides):
    data = json.loads(json.dumps(BASE))
    data.update(overrides)
    return data


def spec_of(**overrides):
    return ScenarioSpec.from_dict(spec_data(**overrides))


class TestLowering:
    def test_units_become_seconds(self):
        spec = spec_of(
            schedule=[
                {"at": 2.0, "until": 4.0, "action": "crash", "node": 1},
                {"at": 5.0, "action": "flood", "source": 0, "dest": 2,
                 "count": 3},
            ]
        )
        chaos = lower_runtime_schedule(spec)
        assert chaos[0] == {"action": "crash", "t0": 0.2, "t1": 0.4, "node": 1}
        assert chaos[1]["t0"] == 0.5
        assert chaos[1]["count"] == 3

    def test_cluster_spec_carries_chaos_and_deadline(self):
        spec = spec_of(
            schedule=[{"at": 1.0, "until": 2.0, "action": "partition",
                       "edges": [[0, 1]]}],
            runtime={"window": 8},
        )
        cluster = build_cluster_spec(spec)
        assert cluster.chaos and cluster.chaos[0]["action"] == "partition"
        assert cluster.deadline == 30.0
        assert cluster.window == 8
        assert cluster.messages == 8

    def test_chaos_with_multiple_procs_rejected(self):
        from repro.runtime.cluster import run_cluster

        spec = spec_of(
            schedule=[{"at": 0.5, "until": 1.0, "action": "crash", "node": 1}],
            runtime={"procs": 2, "transport": "tcp"},
        )
        with pytest.raises(ConfigurationError, match="procs"):
            run_cluster(build_cluster_spec(spec))


class TestExecution:
    def test_empty_schedule_clean_pass(self):
        result = run_runtime_scenario(spec_of())
        assert result.ok, result.failures
        assert result.metrics["delivered"] == 8
        assert result.fault_events == []

    def test_crash_and_flood_conformant(self):
        result = run_runtime_scenario(
            spec_of(
                schedule=[
                    {"at": 0.5, "until": 1.5, "action": "crash", "node": 2},
                    {"at": 1.0, "action": "flood", "source": 0, "dest": 1,
                     "count": 3, "payload": "dup"},
                ]
            )
        )
        assert result.ok, result.failures
        assert result.metrics["delivered"] == 8 + 3
        actions = [e["action"] for e in result.fault_events]
        assert actions.count("crash") == 1
        assert actions.count("restart") == 1
        assert actions.count("flood") == 1

    def test_partition_heals_and_delivers(self):
        result = run_runtime_scenario(
            spec_of(
                schedule=[{"at": 0.3, "until": 1.0, "action": "partition",
                           "edges": [[0, 1]]}]
            )
        )
        assert result.ok, result.failures
        downs = [e for e in result.fault_events if e["action"] == "link_down"]
        ups = [e for e in result.fault_events if e["action"] == "link_up"]
        assert len(downs) == 1 and len(ups) == 1
        assert downs[0]["mono"] < ups[0]["mono"]

    def test_netem_change_reverts_after_window(self):
        result = run_runtime_scenario(
            spec_of(
                schedule=[{"at": 0.3, "until": 1.0, "action": "netem",
                           "loss": 0.2}]
            )
        )
        assert result.ok, result.failures
        changes = [
            e for e in result.fault_events if e["action"] == "netem_change"
        ]
        assert len(changes) == 2
        assert changes[0]["loss"] == 0.2
        assert changes[1]["loss"] == 0.0

    def test_fault_events_in_obs_rows_with_counter(self):
        result = run_runtime_scenario(
            spec_of(
                schedule=[{"at": 0.3, "until": 0.8, "action": "crash",
                           "node": 1}]
            )
        )
        fault_rows = [
            r for r in result.obs_rows if r.get("kind") == "fault_event"
        ]
        assert {r["action"] for r in fault_rows} == {"crash", "restart"}
        totals = [
            r for r in result.obs_rows
            if r.get("kind") == "metric"
            and r.get("metric") == "faults_injected_total"
        ]
        assert totals and totals[0]["value"] == len(fault_rows)
