"""Tests for the color_p(d) procedure."""

import pytest

from repro.core.colors import free_color
from repro.errors import InvariantViolation
from repro.network.topologies import line_network, star_network
from repro.statemodel.message import Message


def msg(color, p=0, dest=0):
    return Message(payload="m", last=p, color=color, dest=dest, uid=1, valid=True)


class TestFreeColor:
    def test_empty_neighborhood_gives_zero(self):
        net = line_network(3)
        row = [None, None, None]
        assert free_color(net, row, 1, delta=2) == 0

    def test_avoids_neighbor_reception_colors(self):
        net = line_network(3)
        row = [msg(0), None, msg(1)]
        assert free_color(net, row, 1, delta=2) == 2

    def test_ignores_own_buffer(self):
        # Only *neighbors'* reception buffers matter.
        net = line_network(3)
        row = [None, msg(0), None]
        assert free_color(net, row, 1, delta=2) == 0

    def test_smallest_free_color(self):
        net = star_network(4)  # center 0 with leaves 1..3, delta = 3
        row = [None, msg(1), msg(3), None]
        assert free_color(net, row, 0, delta=3) == 0
        row = [None, msg(0), msg(1), msg(2)]
        assert free_color(net, row, 0, delta=3) == 3

    def test_pigeonhole_always_succeeds_at_max_degree(self):
        net = star_network(4)
        # All 3 neighbors occupied with distinct colors: one of 4 remains.
        row = [None, msg(0), msg(1), msg(2)]
        assert free_color(net, row, 0, delta=3) in range(4)

    def test_exhausted_colors_raise(self):
        # Deliberately lie about delta to trigger the defensive error.
        net = star_network(4)
        row = [None, msg(0), msg(1), msg(2)]
        with pytest.raises(InvariantViolation, match="no free color"):
            free_color(net, row, 0, delta=2)

    def test_duplicate_neighbor_colors_leave_more_room(self):
        net = star_network(4)
        row = [None, msg(1), msg(1), msg(1)]
        assert free_color(net, row, 0, delta=3) == 0
