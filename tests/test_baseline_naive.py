"""Tests for the naive uncontrolled store-and-forward baseline, including
the deadlock it exists to demonstrate."""

import pytest

from repro.app.higher_layer import HigherLayer
from repro.app.workload import uniform_workload
from repro.baselines.naive import NaiveForwarding
from repro.network.topologies import line_network, ring_network
from repro.routing.static import StaticRouting
from repro.sim.runner import build_baseline_simulation, delivered_and_drained
from repro.statemodel.composition import PriorityStack
from repro.statemodel.daemon import SynchronousDaemon
from repro.statemodel.scheduler import Simulator


def make_naive(net, buffers=2):
    hl = HigherLayer(net.n)
    return NaiveForwarding(net, StaticRouting(net), hl, buffers)


class TestBasics:
    def test_rejects_zero_buffers(self):
        with pytest.raises(ValueError):
            make_naive(line_network(3), buffers=0)

    def test_light_load_delivers(self):
        net = line_network(4)
        sim = build_baseline_simulation(
            net, baseline="naive", naive_buffers=3,
            workload=uniform_workload(net.n, 5, seed=1),
            routing_mode="static", seed=1,
        )
        sim.run(50_000, halt=delivered_and_drained)
        assert sim.ledger.valid_delivered_count == 5

    def test_generation_uses_free_slot(self):
        net = line_network(3)
        proto = make_naive(net)
        proto.hl.submit(0, "m", 2)
        proto.before_step(0)
        [a for a in proto.enabled_actions(0) if a.rule == "NG"][0].execute()
        assert sum(1 for s in proto.pool[0] if s is not None) == 1

    def test_no_generation_when_pool_full(self):
        net = line_network(3)
        proto = make_naive(net, buffers=1)
        proto.plant_packet(0, 0, "junk", dest=2)
        proto.hl.submit(0, "m", 2)
        proto.before_step(0)
        assert not [a for a in proto.enabled_actions(0) if a.rule == "NG"]

    def test_consumption_delivers(self):
        net = line_network(3)
        proto = make_naive(net)
        proto.plant_packet(2, 0, "junk", dest=2)
        [a for a in proto.enabled_actions(2) if a.rule == "NC"][0].execute()
        assert proto.ledger.invalid_delivery_count == 1
        assert proto.network_is_empty()


class TestDeadlock:
    def _ring_deadlock(self):
        """Every buffer of a 4-ring full, every packet needing to cross the
        full next processor — the classic store-and-forward deadlock."""
        net = ring_network(4)
        proto = make_naive(net, buffers=1)
        # On ring(4) nextHop_p(p+2) is the clockwise neighbor p+1 (smallest
        # id tie-break favors it except when wrapping); fill each pool with
        # a packet two hops away clockwise.
        # nextHop_0(2)=1, nextHop_1(3)=2, nextHop_2(0)=3... check: dist both
        # 2; tie-break min neighbor id: for p=2, dest=0 -> neighbors 1,3
        # equal distance, picks 1!  Build explicit wants instead:
        proto.plant_packet(0, 0, "a", dest=2)   # nextHop_0(2) = 1
        proto.plant_packet(1, 0, "b", dest=3)   # nextHop_1(3) = 2
        proto.plant_packet(2, 0, "c", dest=0)   # nextHop_2(0) = 1 or 3
        proto.plant_packet(3, 0, "d", dest=1)   # nextHop_3(1) = 0 or 2
        return net, proto

    def test_full_cycle_deadlocks(self):
        net, proto = self._ring_deadlock()
        # Whatever the tie-breaks, every packet's next hop pool is full:
        assert proto.is_deadlocked()

    def test_deadlock_means_no_enabled_actions(self):
        net, proto = self._ring_deadlock()
        sim = Simulator(net.n, PriorityStack([proto]), SynchronousDaemon())
        report = sim.step()
        assert report.terminal
        assert not proto.network_is_empty()

    def test_empty_network_not_deadlocked(self):
        proto = make_naive(line_network(3))
        assert not proto.is_deadlocked()

    def test_heavy_load_on_small_pools_can_wedge(self):
        # Statistical variant: with 1 buffer per node and all-to-all traffic
        # on a ring, some seeds wedge before finishing.
        wedged = 0
        for seed in range(6):
            net = ring_network(5)
            sim = build_baseline_simulation(
                net, baseline="naive", naive_buffers=1,
                workload=uniform_workload(net.n, 20, seed=seed),
                routing_mode="static", seed=seed,
            )
            result = sim.run(
                40_000, halt=delivered_and_drained, raise_on_limit=False
            )
            if not (result.halted_by_predicate or sim.ledger.all_valid_delivered()):
                wedged += 1
        assert wedged >= 1
