"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("F1", "P4", "T1", "X1", "X2"):
            assert exp_id in out


class TestExperiment:
    def test_runs_known_experiment(self, capsys):
        assert main(["experiment", "F1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["experiment", "ZZ"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestSimulate:
    def test_clean_run(self, capsys):
        code = main(
            ["simulate", "--topology", "line", "--n", "5",
             "--messages", "5", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "delivered=5" in out
        assert "exactly once" in out

    def test_corrupted_run(self, capsys):
        code = main(
            ["simulate", "--topology", "ring", "--n", "6", "--messages", "6",
             "--corrupt", "worst", "--garbage", "0.5", "--seed", "2"]
        )
        assert code == 0
        assert "invalid_delivered=" in capsys.readouterr().out

    def test_watch_prints_component(self, capsys):
        code = main(
            ["simulate", "--topology", "line", "--n", "4", "--messages", "4",
             "--seed", "3", "--watch", "0", "--daemon", "round-robin"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "component:" in out

    def test_hotspot_workload(self, capsys):
        code = main(
            ["simulate", "--topology", "star", "--n", "5",
             "--workload", "hotspot", "--messages", "8", "--seed", "4"]
        )
        assert code == 0

    @pytest.mark.parametrize("daemon", ["synchronous", "central", "distributed"])
    def test_all_daemons(self, daemon, capsys):
        assert main(
            ["simulate", "--topology", "ring", "--n", "5", "--messages", "4",
             "--daemon", daemon, "--seed", "5"]
        ) == 0

    def test_grid_topology_args(self, capsys):
        assert main(
            ["simulate", "--topology", "grid", "--rows", "2", "--cols", "3",
             "--messages", "5", "--seed", "6"]
        ) == 0


class TestVerifyExhaustive:
    BASE = ["verify", "--topology", "line", "--n", "3", "--messages", "2"]

    def test_clean_instance_verifies(self, capsys):
        assert main(self.BASE) == 0
        out = capsys.readouterr().out
        assert "safety: states=" in out
        assert "verified: the instance is exhaustively safe" in out

    def test_reduction_line_reports_group_and_skips(self, capsys):
        assert main(self.BASE + ["--reduction", "full"]) == 0
        out = capsys.readouterr().out
        assert "reduction: full" in out
        assert "group=" in out

    def test_liveness_flag_reports_sccs(self, capsys):
        assert main(self.BASE + ["--liveness"]) == 0
        out = capsys.readouterr().out
        assert "liveness: states=" in out
        assert "livelocks=0" in out

    def test_truncated_search_exits_2(self, capsys):
        assert main(self.BASE + ["--max-states", "5"]) == 2
        err = capsys.readouterr().err
        assert "truncated" in err

    def test_rejected_configuration_exits_2(self, capsys):
        code = main(self.BASE + ["--engine", "deepcopy", "--reduction", "por"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_log_every_streams_progress(self, capsys):
        assert main(self.BASE + ["--log-every", "20"]) == 0
        err = capsys.readouterr().err
        assert "states=" in err and "rate=" in err

    def test_parallel_engine_jsonl_artifact(self, tmp_path, capsys):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("parallel engine requires fork")
        from repro.obs import read_artifact

        path = tmp_path / "verify.jsonl"
        code = main(
            self.BASE
            + ["--engine", "parallel", "--workers", "2",
               "--jsonl", str(path)]
        )
        assert code == 0
        capsys.readouterr()
        art = read_artifact(path)
        assert art.name == "verify"
        assert art.meta["engine"] == "parallel"
        metrics = {r["metric"] for r in art.rows_of_kind("metric")}
        assert "verify_states_total" in metrics
        assert "verify_dedup_ratio" in metrics


class TestObservability:
    def _simulate_artifact(self, path, capsys):
        code = main(
            ["simulate", "--topology", "ring", "--n", "5", "--messages", "4",
             "--seed", "7", "--jsonl", str(path)]
        )
        assert code == 0
        capsys.readouterr()
        return path

    def test_simulate_jsonl_artifact(self, tmp_path, capsys):
        from repro.obs import read_artifact

        path = self._simulate_artifact(tmp_path / "sim.jsonl", capsys)
        art = read_artifact(path)
        kinds = art.kinds()
        assert kinds["metric"] > 0
        assert kinds["trace_event"] > 0
        assert art.meta["topology"] == "ring"

    def test_simulate_timeline_printed(self, capsys):
        code = main(
            ["simulate", "--topology", "ring", "--n", "5", "--messages", "4",
             "--seed", "7", "--timeline", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "uid 1" in out
        assert "generated" in out and "delivered" in out

    def test_experiment_jsonl_artifact(self, tmp_path, capsys):
        from repro.obs import read_artifact

        path = tmp_path / "p4.jsonl"
        assert main(["experiment", "P4", "--jsonl", str(path)]) == 0
        capsys.readouterr()
        art = read_artifact(path)
        assert art.name == "P4"
        assert art.rows_of_kind("table_row")

    def test_obs_summarize(self, tmp_path, capsys):
        path = self._simulate_artifact(tmp_path / "sim.jsonl", capsys)
        assert main(["obs", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "metric" in out and "trace_event" in out

    def test_obs_diff_identical(self, tmp_path, capsys):
        path = self._simulate_artifact(tmp_path / "sim.jsonl", capsys)
        assert main(["obs", "diff", str(path), str(path)]) == 0
        assert "0 numeric differences" in capsys.readouterr().out

    def test_obs_rejects_invalid_artifact(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"no": "schema"}\n')
        assert main(["obs", "summarize", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_obs_missing_file(self, tmp_path, capsys):
        assert main(["obs", "summarize", str(tmp_path / "nope.jsonl")]) == 2

    def test_sweep_jsonl(self, tmp_path, capsys):
        import json

        from repro.obs import read_artifact

        specs = tmp_path / "specs.json"
        specs.write_text(json.dumps([
            {
                "label": "tiny",
                "topology": {"name": "ring", "kwargs": {"n": 4}},
                "workload": {"name": "uniform", "kwargs": {"count": 3, "seed": 1}},
                "seed": 1,
            },
        ]))
        out_path = tmp_path / "sweep.jsonl"
        assert main(
            ["sweep", str(specs), "--jsonl", str(out_path)]
        ) == 0
        capsys.readouterr()
        art = read_artifact(out_path)
        rows = art.rows_of_kind("sweep_row")
        assert len(rows) == 1
        assert rows[0]["label"] == "tiny"
