"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("F1", "P4", "T1", "X1", "X2"):
            assert exp_id in out


class TestExperiment:
    def test_runs_known_experiment(self, capsys):
        assert main(["experiment", "F1"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["experiment", "ZZ"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestSimulate:
    def test_clean_run(self, capsys):
        code = main(
            ["simulate", "--topology", "line", "--n", "5",
             "--messages", "5", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "delivered=5" in out
        assert "exactly once" in out

    def test_corrupted_run(self, capsys):
        code = main(
            ["simulate", "--topology", "ring", "--n", "6", "--messages", "6",
             "--corrupt", "worst", "--garbage", "0.5", "--seed", "2"]
        )
        assert code == 0
        assert "invalid_delivered=" in capsys.readouterr().out

    def test_watch_prints_component(self, capsys):
        code = main(
            ["simulate", "--topology", "line", "--n", "4", "--messages", "4",
             "--seed", "3", "--watch", "0", "--daemon", "round-robin"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "component:" in out

    def test_hotspot_workload(self, capsys):
        code = main(
            ["simulate", "--topology", "star", "--n", "5",
             "--workload", "hotspot", "--messages", "8", "--seed", "4"]
        )
        assert code == 0

    @pytest.mark.parametrize("daemon", ["synchronous", "central", "distributed"])
    def test_all_daemons(self, daemon, capsys):
        assert main(
            ["simulate", "--topology", "ring", "--n", "5", "--messages", "4",
             "--daemon", daemon, "--seed", "5"]
        ) == 0

    def test_grid_topology_args(self, capsys):
        assert main(
            ["simulate", "--topology", "grid", "--rows", "2", "--cols", "3",
             "--messages", "5", "--seed", "6"]
        ) == 0
