"""Tests for the generic BufferGraph."""

import pytest

from repro.buffergraph.graph import BufferGraph, BufferId
from repro.errors import TopologyError


def b(p, d=0, kind="single"):
    return BufferId(p, d, kind)


class TestConstruction:
    def test_basic(self):
        g = BufferGraph([b(0), b(1)], [(b(0), b(1))])
        assert len(g.nodes) == 2
        assert g.edges == ((b(0), b(1)),)

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(TopologyError, match="unknown buffer"):
            BufferGraph([b(0)], [(b(0), b(1))])

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError, match="self-loop"):
            BufferGraph([b(0)], [(b(0), b(0))])

    def test_duplicate_edges_deduped(self):
        g = BufferGraph([b(0), b(1)], [(b(0), b(1)), (b(0), b(1))])
        assert len(g.edges) == 1

    def test_successors_predecessors(self):
        g = BufferGraph([b(0), b(1), b(2)], [(b(0), b(1)), (b(2), b(1))])
        assert g.successors(b(0)) == [b(1)]
        assert g.predecessors(b(1)) == [b(0), b(2)]
        assert g.successors(b(1)) == []


class TestAcyclicity:
    def test_dag_is_acyclic(self):
        g = BufferGraph([b(0), b(1), b(2)], [(b(0), b(1)), (b(1), b(2))])
        assert g.is_acyclic()
        order = g.topological_order()
        assert order.index(b(0)) < order.index(b(1)) < order.index(b(2))
        assert g.find_cycle() is None

    def test_cycle_detected(self):
        g = BufferGraph(
            [b(0), b(1), b(2)],
            [(b(0), b(1)), (b(1), b(2)), (b(2), b(0))],
        )
        assert not g.is_acyclic()
        assert g.topological_order() is None
        cycle = g.find_cycle()
        assert cycle is not None and len(cycle) == 3

    def test_two_cycle_detected(self):
        g = BufferGraph([b(0), b(1)], [(b(0), b(1)), (b(1), b(0))])
        cycle = g.find_cycle()
        assert set(cycle) == {b(0), b(1)}

    def test_cycle_is_closed_walk(self):
        g = BufferGraph(
            [b(i) for i in range(5)],
            [(b(0), b(1)), (b(1), b(2)), (b(2), b(3)), (b(3), b(1)), (b(0), b(4))],
        )
        cycle = g.find_cycle()
        # Verify consecutive membership: each node's successor in the cycle
        # is a real edge, wrapping around.
        for i, node in enumerate(cycle):
            nxt = cycle[(i + 1) % len(cycle)]
            assert nxt in g.successors(node)

    def test_empty_graph_acyclic(self):
        g = BufferGraph([], [])
        assert g.is_acyclic()


class TestComponents:
    def test_weakly_connected_components(self):
        g = BufferGraph(
            [b(0, 0), b(1, 0), b(0, 1), b(1, 1)],
            [(b(0, 0), b(1, 0)), (b(1, 1), b(0, 1))],
        )
        comps = g.weakly_connected_components()
        assert len(comps) == 2
        assert {b(0, 0), b(1, 0)} in [set(c) for c in comps]

    def test_isolated_nodes_are_components(self):
        g = BufferGraph([b(0), b(1, 1)], [])
        assert len(g.weakly_connected_components()) == 2

    def test_subgraph_for_destination(self):
        g = BufferGraph(
            [b(0, 0), b(1, 0), b(0, 1)],
            [(b(0, 0), b(1, 0))],
        )
        sub = g.subgraph_for_destination(0)
        assert set(sub.nodes) == {b(0, 0), b(1, 0)}
        assert len(sub.edges) == 1

    def test_repr(self):
        g = BufferGraph([b(0), b(1)], [(b(0), b(1))])
        assert "nodes=2" in repr(g)


class TestBufferId:
    def test_ordering_stable(self):
        ids = sorted([b(1, 0, "R"), b(0, 1, "E"), b(0, 0, "E")])
        assert ids[0] == b(0, 0, "E")

    def test_repr(self):
        assert repr(BufferId(2, 5, "R")) == "bufR_2(5)"
